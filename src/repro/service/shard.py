"""One service shard: an index family instance plus its access discipline.

A :class:`Shard` wraps any existing family behind a uniform
get/put/scan surface and enforces the right synchronization for it:

* the OLC B+-tree synchronizes itself (versioned locks, validated
  reads), so its shard carries **no operation lock** — readers run
  truly concurrently and only the router-level ``write_gate`` orders
  writers against online split/merge;
* every other family is single-threaded by construction (adaptive
  lookups may migrate encodings!), so both reads and writes serialize
  on the shard's re-entrant operation lock.

The ``write_gate`` exists on every shard, thread-safe or not: the
router acquires it around each write batch, and split/merge holds it
(plus the operation lock, when present) for the duration of a
build-aside+swap — which is how a rebalance can promise zero lost keys
without stopping reads on OLC shards.

A shard may also carry a :class:`~repro.durability.log.DurableLog`.
Writes then follow write-ahead order: the record is appended (and,
under the ``"batch"`` sync policy, fsynced) *before* the in-memory
index is touched, so an acknowledgment implies the write survives a
crash.  The ``durability.wal.apply`` fault point sits between the
durable append and the in-memory apply — a crash there leaves an
unacknowledged record on disk, which recovery replays (harmless: the
caller never saw an ack, and replay is idempotent).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager, nullcontext
from typing import (
    TYPE_CHECKING,
    Any,
    ContextManager,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.faults.injector import fault_point
from repro.obs.introspect import census_stats
from repro.obs.runtime import active_tracer
from repro.service.partition import Key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.durability.log import DurableLog

Pair = Tuple[Key, int]

#: Smallest conceivable integer key, used to seed full-content scans on
#: families without an ``items()`` iterator (the dual-stage baseline).
_INT_KEY_FLOOR = -(2**63)

#: RA004: span-name literals for the per-shard service layer.
_SHARD_OP_SPAN = "service.shard_op"
_WAL_APPEND_SPAN = "durability.wal.append"


@contextmanager
def span_if_traced(name: str, **attributes: object) -> Iterator[None]:
    """Open a stack span only when this thread sits under a traced request.

    The distributed-trace propagation rule for the service layer: a
    request span is :meth:`~repro.obs.tracing.Tracer.adopt`-ed onto the
    executor thread, so ``tracer.current()`` is non-None exactly when
    this operation belongs to a traced request.  Untraced operations pay
    one global read and one branch; direct (non-request) callers never
    emit service spans.  Measured ``elapsed_s`` is attached on close —
    this is the service/durability layer, outside the RA002 wall-clock
    fence that guards the index hot paths.
    """
    tracer = active_tracer()
    if tracer is None or tracer.current() is None:
        yield
        return
    started = time.perf_counter()
    span = tracer.start(name, **attributes)
    try:
        yield
    finally:
        tracer.end(span, elapsed_s=time.perf_counter() - started)


class Shard:
    """One partition of the key space served by one index instance."""

    #: True on :class:`~repro.replication.replica_set.ReplicatedShard`;
    #: the router uses it to skip budget arbitration (replica budgets
    #: are profile policy) and to refuse split/merge.
    is_replicated = False

    def __init__(
        self,
        shard_id: int,
        index: Any,
        thread_safe: bool = False,
        durable_log: Optional["DurableLog"] = None,
    ) -> None:
        #: The position this shard was built for.  Purely informational:
        #: the router derives routing positions from the table index, so
        #: a shard's constructed id may go stale after splits/merges.
        self.shard_id = shard_id
        self.index = index
        self.thread_safe = thread_safe
        #: When set, every write is appended here *before* it touches
        #: the index — the write-ahead discipline that makes an ack
        #: crash-durable.
        self.durable_log = durable_log
        #: Serializes every operation on non-thread-safe families.
        self.op_lock: Optional[threading.RLock] = (
            None if thread_safe else threading.RLock()
        )
        #: Orders write batches against online split/merge (all families).
        self.write_gate = threading.RLock()
        self.ops = 0
        #: Guards ``ops``: thread-safe shards serve reads with no other
        #: lock held, so unsynchronized increments would lose counts.
        self._ops_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Locking helpers
    # ------------------------------------------------------------------
    def _guard(self) -> ContextManager[Any]:
        return self.op_lock if self.op_lock is not None else nullcontext()

    def _note_ops(self, amount: int) -> None:
        with self._ops_lock:
            self.ops += amount

    # ------------------------------------------------------------------
    # Point and batched reads
    # ------------------------------------------------------------------
    def get(self, key: Key) -> Optional[int]:
        """The value under ``key``, or None."""
        with span_if_traced(_SHARD_OP_SPAN, op="get", shard_id=self.shard_id):
            with self._guard():
                self._note_ops(1)
                return self.index.lookup(key)

    def get_many(self, keys: Sequence[Key]) -> List[Optional[int]]:
        """Values aligned with ``keys`` (None for misses).

        Thread-safe shards answer through per-key OLC-validated lookups
        (safe against concurrent writers); locked shards sort the batch
        once and take the family's ``lookup_many`` fast path.
        """
        if not keys:
            return []
        with span_if_traced(
            _SHARD_OP_SPAN, op="get_many", shard_id=self.shard_id, count=len(keys)
        ):
            if self.thread_safe:
                lookup = self.index.lookup
                self._note_ops(len(keys))
                return [lookup(key) for key in keys]
            with self._guard():
                self._note_ops(len(keys))
                lookup_many = getattr(self.index, "lookup_many", None)
                if lookup_many is None:
                    lookup = self.index.lookup
                    return [lookup(key) for key in keys]
                order = sorted(range(len(keys)), key=lambda position: keys[position])
                sorted_values = lookup_many([keys[position] for position in order])
                values: List[Optional[int]] = [None] * len(keys)
                for rank, position in enumerate(order):
                    values[position] = sorted_values[rank]
                return values

    def scan(self, start_key: Key, count: int) -> List[Pair]:
        """Up to ``count`` ordered pairs starting at ``start_key``."""
        with span_if_traced(
            _SHARD_OP_SPAN, op="scan", shard_id=self.shard_id, count=count
        ):
            with self._guard():
                self._note_ops(1)
                return list(self.index.scan(start_key, count))

    # ------------------------------------------------------------------
    # Writes (caller holds ``write_gate``)
    # ------------------------------------------------------------------
    @property
    def supports_writes(self) -> bool:
        """False for build-once families (the HybridTrie has no insert)."""
        return hasattr(self.index, "insert")

    def put(self, key: Key, value: int) -> None:
        """Upsert one pair (write-ahead logged when the shard is durable)."""
        with span_if_traced(_SHARD_OP_SPAN, op="put", shard_id=self.shard_id):
            with self._guard():
                self._note_ops(1)
                if self.durable_log is not None:
                    with span_if_traced(
                        _WAL_APPEND_SPAN, shard_id=self.shard_id, records=1
                    ):
                        self.durable_log.append_put(key, value)
                    fault_point("durability.wal.apply")
                self.index.insert(key, value)

    def put_many(self, pairs: Sequence[Pair]) -> None:
        """Upsert a batch, through the family's ``insert_many`` if any.

        On a durable shard the whole batch lands in the WAL as one
        group commit (one write, one fsync) before any pair touches the
        index — the ``put_many`` path is exactly where group commit
        amortizes the durability cost.
        """
        if not pairs:
            return
        with span_if_traced(
            _SHARD_OP_SPAN, op="put_many", shard_id=self.shard_id, count=len(pairs)
        ):
            with self._guard():
                self._note_ops(len(pairs))
                if self.durable_log is not None:
                    with span_if_traced(
                        _WAL_APPEND_SPAN, shard_id=self.shard_id, records=len(pairs)
                    ):
                        self.durable_log.append_put_many(pairs)
                    fault_point("durability.wal.apply")
                insert_many = getattr(self.index, "insert_many", None)
                if insert_many is not None:
                    insert_many(list(pairs))
                    return
                insert = self.index.insert
                for key, value in pairs:
                    insert(key, value)

    def delete(self, key: Key) -> bool:
        """Remove ``key``; False when it was absent."""
        with span_if_traced(_SHARD_OP_SPAN, op="delete", shard_id=self.shard_id):
            with self._guard():
                self._note_ops(1)
                if self.durable_log is not None:
                    with span_if_traced(
                        _WAL_APPEND_SPAN, shard_id=self.shard_id, records=1
                    ):
                        self.durable_log.append_delete(key)
                    fault_point("durability.wal.apply")
                return bool(self.index.delete(key))

    # ------------------------------------------------------------------
    # Snapshots and introspection
    # ------------------------------------------------------------------
    def items(self) -> List[Pair]:
        """All pairs currently in the shard, sorted by key.

        Used by split/merge to build replacement shards aside; callers
        must hold ``write_gate`` (and the operation lock is taken here)
        so the snapshot is consistent.
        """
        with self._guard():
            items_iter = getattr(self.index, "items", None)
            if items_iter is not None:
                return sorted(items_iter())
            return sorted(self.index.scan(_INT_KEY_FLOOR, self.num_keys))

    @property
    def num_keys(self) -> int:
        """Number of keys currently in the shard."""
        keys = getattr(self.index, "num_keys", None)
        if keys is not None:
            return int(keys)
        return len(self.index)

    def size_bytes(self) -> int:
        """Modeled bytes of the shard's index."""
        return int(self.index.size_bytes())

    def counter_snapshot(self) -> Dict[str, int]:
        """The index's structural counter events (for the cost model)."""
        return dict(self.index.counters.snapshot())

    def encoding_census(self) -> Dict[str, Any]:
        """The index's node/leaf encoding mix, whatever the family calls it.

        Empty for families without heterogeneous encodings (plain
        hashmap, OLC tree) — the ops console renders that as a single
        implicit encoding.
        """
        for probe in ("leaf_encoding_census", "encoding_census", "node_census"):
            census = getattr(self.index, probe, None)
            if census is not None:
                return dict(census_stats(census()))
        return {}

    def checkpoint_logs(self) -> List[Dict[str, Any]]:
        """Snapshot every log this shard carries and truncate its WAL.

        The caller holds ``write_gate``; the operation lock is taken
        here so the collected pairs are consistent with the WAL's LSN.
        A plain shard carries at most one log; a replicated shard
        overrides this to checkpoint every replica's log.
        """
        log = self.durable_log
        if log is None:
            return []
        with self._guard():
            pairs = self.items()
            lsn = log.checkpoint(pairs)
        return [
            {
                "log_id": log.log_id,
                "lsn": lsn,
                "num_keys": len(pairs),
                "wal_bytes": log.wal_size_bytes(),
            }
        ]

    def close_logs(self) -> None:
        """Release every log handle this shard carries (idempotent)."""
        if self.durable_log is not None:
            self.durable_log.close()

    def wal_lag(self) -> Optional[int]:
        """Records appended since the last snapshot (None when not durable).

        The ops console's per-shard durability lag: how much WAL replay
        a crash right now would cost this shard.
        """
        if self.durable_log is None:
            return None
        snapshot_lsns = self.durable_log.snapshots.list_lsns()
        floor = max(snapshot_lsns) if snapshot_lsns else 0
        return max(0, self.durable_log.wal.last_lsn - floor)

    def stats(self) -> Dict[str, Any]:
        """One JSON-safe summary of this shard."""
        manager = getattr(self.index, "manager", None)
        return {
            "shard_id": self.shard_id,
            "family": getattr(self.index, "stats_family", type(self.index).__name__),
            "thread_safe": self.thread_safe,
            "durable": self.durable_log.stats() if self.durable_log is not None else None,
            "wal_lag": self.wal_lag(),
            "num_keys": self.num_keys,
            "size_bytes": self.size_bytes(),
            "ops": self.ops,
            "encoding_census": self.encoding_census(),
            "adaptation_phases": (
                manager.counters.adaptation_phases if manager is not None else 0
            ),
            "migrations": (
                manager.counters.expansions + manager.counters.compactions
                if manager is not None
                else 0
            ),
        }

    def verify(self) -> None:
        """Run the family's structural self-verification, if it has one."""
        verify = getattr(self.index, "verify", None)
        if verify is not None:
            with self._guard():
                verify()
