"""Key-space partitioners for the sharded index service.

Two carve-ups of the key space are provided:

* :class:`HashPartitioner` — a stable multiplicative/content hash maps
  every key to one of N shards.  Placement is uniform regardless of key
  skew, but shards cover interleaved key ranges, so ordered scans must
  k-way-merge all shards and the shard count is fixed for the router's
  lifetime.
* :class:`RangePartitioner` — N-1 sorted boundary keys carve the key
  space into contiguous ranges (shard ``i`` serves ``[b[i-1], b[i])``).
  Shards are ordered, so cross-shard scans concatenate, and ranges can
  be *split* and *merged* online — the service's rebalancing primitive.

Both hashes are deterministic across processes (no reliance on
``PYTHONHASHSEED``), so a router rebuilt from the same keys routes the
same way — a requirement for the replayable fault campaigns.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, List, Optional, Sequence, Tuple

Key = Any  # int for the B+-tree families, bytes for the tries

_MIX_CONSTANT = 0x9E3779B97F4A7C15  # 2^64 / golden ratio
_MASK_64 = (1 << 64) - 1


class PartitionError(ValueError):
    """An impossible partitioning operation (bad boundary, no split...)."""


def stable_hash(key: Key) -> int:
    """A process-independent 64-bit hash of one key.

    Integers go through a Fibonacci multiplicative mix (cheap, good
    avalanche on the high bits); byte strings through blake2b.  Python's
    builtin ``hash`` is salted per process for str/bytes and is only
    used as a last resort for exotic key types.
    """
    if isinstance(key, int):
        mixed = (key * _MIX_CONSTANT) & _MASK_64
        return mixed ^ (mixed >> 32)
    if isinstance(key, (bytes, bytearray)):
        digest = hashlib.blake2b(bytes(key), digest_size=8).digest()
        return int.from_bytes(digest, "big")
    return hash(key) & _MASK_64


class Partitioner:
    """Maps keys to shard ids; subclasses define the key-space carve-up."""

    kind = "abstract"
    #: True when shard order equals key order (ordered scans concatenate).
    ordered = False

    @property
    def num_shards(self) -> int:
        """Number of shards this partitioner routes to."""
        raise NotImplementedError

    def shard_of(self, key: Key) -> int:
        """The shard id serving ``key``."""
        raise NotImplementedError

    def split(self, shard_id: int, at_key: Key) -> "Partitioner":
        """A new partitioner with ``shard_id`` split at ``at_key``."""
        raise PartitionError(f"{self.kind} partitions do not support split")

    def merge(self, left_id: int) -> "Partitioner":
        """A new partitioner with ``left_id`` and ``left_id + 1`` merged."""
        raise PartitionError(f"{self.kind} partitions do not support merge")

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"{self.kind}({self.num_shards} shards)"

    def _check_shard_id(self, shard_id: int) -> None:
        if not 0 <= shard_id < self.num_shards:
            raise PartitionError(f"shard id {shard_id} outside [0, {self.num_shards})")


class HashPartitioner(Partitioner):
    """Uniform placement by stable hash; fixed shard count."""

    kind = "hash"
    ordered = False

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise PartitionError(f"need at least one shard, got {num_shards}")
        self._num_shards = num_shards

    @property
    def num_shards(self) -> int:
        """Number of shards this partitioner routes to."""
        return self._num_shards

    def shard_of(self, key: Key) -> int:
        """The shard id serving ``key``."""
        return stable_hash(key) % self._num_shards


class RangePartitioner(Partitioner):
    """Contiguous key ranges split by N-1 sorted boundary keys.

    Shard ``i`` serves keys ``k`` with ``boundaries[i-1] <= k <
    boundaries[i]`` (the first shard is unbounded below, the last
    unbounded above).
    """

    kind = "range"
    ordered = True

    def __init__(self, boundaries: Sequence[Key]) -> None:
        boundary_list = list(boundaries)
        for left, right in zip(boundary_list, boundary_list[1:]):
            if left >= right:
                raise PartitionError(
                    f"boundaries must be strictly increasing; {left!r} >= {right!r}"
                )
        self._boundaries: List[Key] = boundary_list

    @classmethod
    def from_keys(cls, keys: Sequence[Key], num_shards: int) -> "RangePartitioner":
        """Equi-depth boundaries from a (sorted or unsorted) key sample."""
        if num_shards < 1:
            raise PartitionError(f"need at least one shard, got {num_shards}")
        if num_shards == 1:
            return cls([])
        unique = sorted(set(keys))
        if len(unique) < num_shards:
            raise PartitionError(
                f"{num_shards} shards need at least {num_shards} distinct "
                f"keys, got {len(unique)}"
            )
        step = len(unique) / num_shards
        boundaries = [unique[int(step * rank)] for rank in range(1, num_shards)]
        return cls(boundaries)

    @property
    def num_shards(self) -> int:
        """Number of shards this partitioner routes to."""
        return len(self._boundaries) + 1

    @property
    def boundaries(self) -> Tuple[Key, ...]:
        """The boundary keys (shard ``i`` starts at ``boundaries[i-1]``)."""
        return tuple(self._boundaries)

    def shard_of(self, key: Key) -> int:
        """The shard id serving ``key``."""
        return bisect.bisect_right(self._boundaries, key)

    def shard_range(self, shard_id: int) -> Tuple[Optional[Key], Optional[Key]]:
        """``(low, high)`` bounds of one shard; None means unbounded."""
        self._check_shard_id(shard_id)
        low = self._boundaries[shard_id - 1] if shard_id > 0 else None
        high = (
            self._boundaries[shard_id]
            if shard_id < len(self._boundaries)
            else None
        )
        return low, high

    def split(self, shard_id: int, at_key: Key) -> "RangePartitioner":
        """A new partitioner with ``shard_id`` split at ``at_key``.

        ``at_key`` becomes the first key of the new right-hand shard and
        must lie strictly inside the split shard's current range.
        """
        low, high = self.shard_range(shard_id)
        if low is not None and at_key <= low:
            raise PartitionError(
                f"split key {at_key!r} at or below shard {shard_id} lower bound {low!r}"
            )
        if high is not None and at_key >= high:
            raise PartitionError(
                f"split key {at_key!r} at or above shard {shard_id} bound {high!r}"
            )
        boundaries = list(self._boundaries)
        boundaries.insert(shard_id, at_key)
        return RangePartitioner(boundaries)

    def merge(self, left_id: int) -> "RangePartitioner":
        """A new partitioner with ``left_id`` and ``left_id + 1`` merged."""
        self._check_shard_id(left_id)
        if left_id + 1 >= self.num_shards:
            raise PartitionError(
                f"shard {left_id} has no right neighbour to merge with"
            )
        boundaries = list(self._boundaries)
        del boundaries[left_id]
        return RangePartitioner(boundaries)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"range({self.num_shards} shards, boundaries={self._boundaries!r})"
