"""The sharded index service front end.

A :class:`ShardRouter` owns N :class:`~repro.service.shard.Shard`\\ s and
a :class:`~repro.service.partition.Partitioner`, and exposes the familiar
index surface in batched form: ``get_many`` / ``put_many`` split each
request into per-shard sub-batches and execute them on a
``ThreadPoolExecutor`` (OLC B+-tree shards run truly concurrently;
locked families serialize per shard), ``scan`` merges ordered results
across shards (concatenation under range partitioning, a k-way heap
merge under hash partitioning).

Online **shard split/merge** reuses the PR-1 build-aside+swap
discipline: the affected shards are write-frozen (reads keep flowing on
OLC shards), their contents are snapshotted and rebuilt into
replacement shards *aside*, and one atomic routing-table swap publishes
the new layout.  Every step crosses a :func:`~repro.faults.injector
.fault_point` (``service.split.*`` / ``service.merge.*``), and a fault
anywhere before the swap leaves the old table serving — zero lost keys
by construction, which the fault campaign in
``benchmarks/bench_service.py`` replays at scale.  Writers that block
on a shard's ``write_gate`` while a split/merge holds it revalidate
their route once the gate is acquired: the table may have been swapped
while they waited, and writing into the now-orphaned shard would lose
the pair, so re-routed pairs are retried against the fresh table.

One global :class:`~repro.core.budget.BudgetArbiter` divides the
service-wide memory budget across the per-shard adaptation managers and
is rebalanced after every split/merge.

With a :class:`~repro.durability.manager.DurabilityManager` attached,
the router is **crash-durable**: every shard carries a per-shard WAL
(appended before acknowledgment — see
:mod:`repro.service.shard`), :meth:`checkpoint` publishes snapshots
and truncates logs, and :meth:`recover` rebuilds the whole service
from disk.  Split/merge then *re-keys* durability too: replacement
shards get fresh logs under the next routing epoch, the CRC-wrapped
manifest is republished as the durable commit point **before** the
in-memory table swap, and an abort at the swap fault point rolls the
manifest back while the write gates are still held — so the durable
and in-memory routing epochs can never diverge across an
acknowledgment.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from bisect import bisect_left
from concurrent.futures import Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.budget import BudgetArbiter, MemoryBudget
from repro.durability.log import DurableLog
from repro.durability.manager import (
    DurabilityManager,
    Manifest,
    build_partitioner,
    partitioner_spec,
)
from repro.faults.injector import fault_point
from repro.obs.runtime import active_registry, active_tracer
from repro.obs.tracing import Span, Tracer
from repro.service.partition import (
    HashPartitioner,
    Key,
    Partitioner,
    PartitionError,
    RangePartitioner,
)
from repro.service.shard import Pair, Shard, span_if_traced

IndexFactory = Callable[[List[Pair]], Any]

_DEFAULT_MAX_WORKERS = 8

#: RA004: span-name literal for the fan-out layer.
_ROUTE_SPAN = "service.route"


def _adopted(
    tracer: Tracer, span: Span, task: Callable[[], None]
) -> Callable[[], None]:
    """Carry ``span`` across the executor hop so shard spans nest under it."""

    def run() -> None:
        with tracer.adopt(span):
            task()

    return run


class ReadOnlyShardError(RuntimeError):
    """A write was routed to a shard whose family has no insert path."""


def _olc_factory(pairs: List[Pair]) -> Any:
    from repro.bptree.olc import OlcBPlusTree

    return OlcBPlusTree.bulk_load(pairs)


def _adaptive_factory(pairs: List[Pair]) -> Any:
    from repro.bptree.hybrid import AdaptiveBPlusTree

    return AdaptiveBPlusTree.bulk_load_adaptive(pairs)


def _dualstage_factory(pairs: List[Pair]) -> Any:
    from repro.dualstage.index import DualStageIndex

    return DualStageIndex.bulk_load(pairs)


def _hybridtrie_factory(pairs: List[Pair]) -> Any:
    from repro.hybridtrie.tree import HybridTrie

    return HybridTrie(pairs)


#: Family name -> bulk-load factory, as used by the harness and benches.
FAMILY_FACTORIES: Dict[str, IndexFactory] = {
    "olc": _olc_factory,
    "adaptive": _adaptive_factory,
    "dualstage": _dualstage_factory,
    "hybridtrie": _hybridtrie_factory,
}

#: Families whose indexes synchronize themselves (no per-shard op lock).
THREAD_SAFE_FAMILIES = frozenset({"olc"})

#: Precomputed ``service.ops.<kind>`` counter names (RA004: telemetry
#: names are literal tables, never formatted on the hot path).
_OPS_COUNTERS = {
    "read": "service.ops.read",
    "write": "service.ops.write",
    "scan": "service.ops.scan",
}


@dataclass(frozen=True)
class _RoutingTable:
    """An immutable (partitioner, shards) snapshot, swapped atomically."""

    partitioner: Partitioner
    shards: Tuple[Shard, ...]


class ShardRouter:
    """Routes batched index traffic across partitioned shards."""

    def __init__(
        self,
        shards: Sequence[Shard],
        partitioner: Partitioner,
        index_factory: IndexFactory,
        max_workers: int = _DEFAULT_MAX_WORKERS,
        budget: Optional[MemoryBudget] = None,
        durability: Optional[DurabilityManager] = None,
        epoch: int = 0,
    ) -> None:
        if partitioner.num_shards != len(shards):
            raise PartitionError(
                f"partitioner routes to {partitioner.num_shards} shards "
                f"but {len(shards)} were provided"
            )
        if durability is not None:
            for shard in shards:
                if shard.durable_log is None:
                    raise ValueError(
                        "a durable router requires every shard to carry a DurableLog"
                    )
        self._table = _RoutingTable(partitioner, tuple(shards))
        self._index_factory = index_factory
        self._max_workers = max_workers
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._admin_lock = threading.Lock()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self.splits = 0
        self.merges = 0
        self.checkpoints = 0
        #: Durable backing, when attached; ``_epoch`` tracks the routing
        #: epoch the manifest currently names (bumped by split/merge).
        self._durability = durability
        self._epoch = epoch
        #: Summary of the last :meth:`recover` that produced this router.
        self.last_recovery: Optional[Dict[str, Any]] = None
        self.arbiter = BudgetArbiter(budget or MemoryBudget.unbounded())
        self._register_shards()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        pairs: Sequence[Pair],
        family: str = "olc",
        num_shards: int = 4,
        partitioning: str = "hash",
        max_workers: int = _DEFAULT_MAX_WORKERS,
        budget: Optional[MemoryBudget] = None,
        index_factory: Optional[IndexFactory] = None,
        durability: Optional[DurabilityManager] = None,
        replication_factor: int = 1,
        replica_profiles: Optional[Sequence[str]] = None,
        replica_routing: str = "cost",
    ) -> "ShardRouter":
        """Bulk-load a router from sorted unique pairs.

        ``family`` picks a factory from :data:`FAMILY_FACTORIES` unless
        an explicit ``index_factory`` is given; ``partitioning`` is
        ``"hash"`` or ``"range"`` (range boundaries are chosen
        equi-depth from the loaded keys).  With ``durability``, every
        shard gets a fresh epoch-0 log (base snapshot of its loaded
        pairs) and the routing manifest is published before the router
        is handed out — a crash mid-bootstrap leaves either no manifest
        (re-bootstrap from the same pairs) or a complete one.

        With ``replication_factor > 1`` (or explicit
        ``replica_profiles``) every shard becomes a
        :class:`~repro.replication.replica_set.ReplicatedShard`: N
        copies built under divergent adaptation profiles, reads routed
        by modeled cost (``replica_routing="cost"``, or
        ``"round_robin"`` for the identical-replica baseline), writes
        fanned out to per-replica WALs.  Replication requires the
        ``"adaptive"`` family — the profiles exist to tune its manager.
        """
        if index_factory is None:
            if family not in FAMILY_FACTORIES:
                raise ValueError(
                    f"unknown family {family!r}; expected one of "
                    f"{sorted(FAMILY_FACTORIES)}"
                )
            index_factory = FAMILY_FACTORIES[family]
        pairs = list(pairs)
        keys = [key for key, _ in pairs]
        partitioner: Partitioner
        if partitioning == "hash":
            partitioner = HashPartitioner(num_shards)
        elif partitioning == "range":
            partitioner = RangePartitioner.from_keys(keys, num_shards)
        else:
            raise ValueError(
                f"unknown partitioning {partitioning!r}; expected 'hash' or 'range'"
            )
        groups: List[List[Pair]] = [[] for _ in range(num_shards)]
        for pair in pairs:
            groups[partitioner.shard_of(pair[0])].append(pair)
        factor = replication_factor
        if factor == 1 and replica_profiles is not None:
            factor = len(replica_profiles)
        if factor > 1 or replica_profiles is not None:
            if family != "adaptive":
                raise ValueError(
                    "replication requires the 'adaptive' family — divergence "
                    f"profiles tune its adaptation manager (got {family!r})"
                )
            from repro.replication.profiles import resolve_profiles
            from repro.replication.replica_set import build_replicated_shard
            from repro.replication.routing import ReplicaRouter

            profiles = resolve_profiles(factor, replica_profiles)
            shards: List[Shard] = [
                build_replicated_shard(
                    shard_id,
                    group,
                    profiles,
                    durability=durability,
                    epoch=0,
                    router=ReplicaRouter(policy=replica_routing),
                )
                for shard_id, group in enumerate(groups)
            ]
            if durability is not None:
                durability.publish_manifest(
                    Manifest(
                        epoch=0,
                        partitioner=partitioner_spec(partitioner),
                        shards=[
                            DurabilityManager.replica_log_id(0, i, 0)
                            for i in range(num_shards)
                        ],
                        replicas={
                            "factor": factor,
                            "profiles": [profile.name for profile in profiles],
                            "logs": [
                                [
                                    DurabilityManager.replica_log_id(0, i, r)
                                    for r in range(factor)
                                ]
                                for i in range(num_shards)
                            ],
                        },
                    )
                )
            return cls(
                shards,
                partitioner,
                index_factory,
                max_workers=max_workers,
                budget=budget,
                durability=durability,
                epoch=0,
            )
        thread_safe = family in THREAD_SAFE_FAMILIES
        shards = []
        for shard_id, group in enumerate(groups):
            log: Optional[DurableLog] = None
            if durability is not None:
                log = durability.create_log(
                    DurabilityManager.log_id(0, shard_id), group
                )
            shards.append(
                Shard(
                    shard_id,
                    index_factory(group),
                    thread_safe=thread_safe,
                    durable_log=log,
                )
            )
        if durability is not None:
            durability.publish_manifest(
                Manifest(
                    epoch=0,
                    partitioner=partitioner_spec(partitioner),
                    shards=[DurabilityManager.log_id(0, i) for i in range(num_shards)],
                )
            )
        return cls(
            shards,
            partitioner,
            index_factory,
            max_workers=max_workers,
            budget=budget,
            durability=durability,
            epoch=0,
        )

    @classmethod
    def recover(
        cls,
        durability: DurabilityManager,
        family: str = "olc",
        max_workers: int = _DEFAULT_MAX_WORKERS,
        budget: Optional[MemoryBudget] = None,
        index_factory: Optional[IndexFactory] = None,
    ) -> "ShardRouter":
        """Rebuild a durable router from its on-disk state after a crash.

        Reads the routing manifest (the durable commit point), sweeps
        files no epoch reaches, recovers every named log — newest valid
        snapshot plus WAL-tail replay, torn final record tolerated —
        and bulk-loads each shard's family from the recovered pair set.
        ``last_recovery`` on the returned router summarizes what was
        replayed, skipped, and swept.
        """
        if index_factory is None:
            if family not in FAMILY_FACTORIES:
                raise ValueError(
                    f"unknown family {family!r}; expected one of "
                    f"{sorted(FAMILY_FACTORIES)}"
                )
            index_factory = FAMILY_FACTORIES[family]
        manifest = durability.read_manifest()
        orphans_removed = durability.cleanup_orphans(manifest)
        partitioner = build_partitioner(manifest.partitioner)
        if manifest.replicas is not None:
            return cls._recover_replicated(
                durability,
                manifest,
                partitioner,
                orphans_removed,
                max_workers=max_workers,
                budget=budget,
            )
        thread_safe = family in THREAD_SAFE_FAMILIES
        shards = []
        frames_replayed = 0
        snapshots_skipped = 0
        torn_bytes = 0
        for position, log_id in enumerate(manifest.shards):
            log, result = durability.recover_log(log_id)
            pairs = sorted(result.state.items())
            shards.append(
                Shard(
                    position,
                    index_factory(pairs),
                    thread_safe=thread_safe,
                    durable_log=log,
                )
            )
            frames_replayed += result.frames_replayed
            snapshots_skipped += result.snapshots_skipped
            torn_bytes += result.torn_bytes
        router = cls(
            shards,
            partitioner,
            index_factory,
            max_workers=max_workers,
            budget=budget,
            durability=durability,
            epoch=manifest.epoch,
        )
        router.last_recovery = {
            "epoch": manifest.epoch,
            "num_shards": len(shards),
            "frames_replayed": frames_replayed,
            "snapshots_skipped": snapshots_skipped,
            "torn_bytes": torn_bytes,
            "orphans_removed": orphans_removed,
        }
        return router

    @classmethod
    def _recover_replicated(
        cls,
        durability: DurabilityManager,
        manifest: Manifest,
        partitioner: Partitioner,
        orphans_removed: int,
        max_workers: int = _DEFAULT_MAX_WORKERS,
        budget: Optional[MemoryBudget] = None,
    ) -> "ShardRouter":
        """Rebuild a replicated router: every replica from its own log.

        Each replica recovers from its *own* newest snapshot plus WAL
        tail, then bulk-loads under its *own* divergence profile (the
        profile names come from the manifest).  Per shard, the replica
        with the highest WAL LSN is authoritative — fan-out appends in
        replica order, so a higher LSN implies a superset of acked
        writes — and any straggler (a replica that was down or fenced
        when the crash hit) is rebuilt from the authoritative content
        and healed with a fresh snapshot.
        """
        from repro.replication.profiles import REPLICA_PROFILES
        from repro.replication.replica_set import Replica, ReplicatedShard
        from repro.replication.routing import ReplicaRouter

        block = manifest.replicas
        assert block is not None  # caller checked
        unknown = [
            name for name in block["profiles"] if name not in REPLICA_PROFILES
        ]
        if unknown:
            raise ValueError(
                f"manifest names unknown replica profiles {unknown}; "
                f"expected names from {sorted(REPLICA_PROFILES)}"
            )
        profiles = [REPLICA_PROFILES[name] for name in block["profiles"]]
        shards: List[Shard] = []
        frames_replayed = 0
        snapshots_skipped = 0
        torn_bytes = 0
        replicas_rebuilt = 0
        for position, log_ids in enumerate(block["logs"]):
            recovered = [durability.recover_log(log_id) for log_id in log_ids]
            for _, result in recovered:
                frames_replayed += result.frames_replayed
                snapshots_skipped += result.snapshots_skipped
                torn_bytes += result.torn_bytes
            last_lsns = [log.last_lsn for log, _ in recovered]
            authoritative = max(last_lsns)
            auth_index = last_lsns.index(authoritative)
            auth_pairs = sorted(recovered[auth_index][1].state.items())
            replicas = []
            for offset, (log, result) in enumerate(recovered):
                if last_lsns[offset] < authoritative:
                    # Straggler: its own log is consistent but behind
                    # the acked history; rebuild from the authoritative
                    # copy and checkpoint so its log is whole again.
                    pairs = auth_pairs
                    log.checkpoint(pairs)
                    replicas_rebuilt += 1
                else:
                    pairs = sorted(result.state.items())
                inner = Shard(
                    position,
                    profiles[offset].build_index(pairs),
                    thread_safe=False,
                    durable_log=log,
                )
                replicas.append(Replica(offset, profiles[offset], inner))
            shards.append(
                ReplicatedShard(position, replicas, router=ReplicaRouter())
            )
        router = cls(
            shards,
            partitioner,
            FAMILY_FACTORIES["adaptive"],
            max_workers=max_workers,
            budget=budget,
            durability=durability,
            epoch=manifest.epoch,
        )
        router.last_recovery = {
            "epoch": manifest.epoch,
            "num_shards": len(shards),
            "frames_replayed": frames_replayed,
            "snapshots_skipped": snapshots_skipped,
            "torn_bytes": torn_bytes,
            "orphans_removed": orphans_removed,
            "replication_factor": int(block["factor"]),
            "replicas_rebuilt": replicas_rebuilt,
        }
        return router

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the executor and release log handles (idempotent)."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        table = self._table
        for shard in table.shards:
            shard.close_logs()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Routing primitives
    # ------------------------------------------------------------------
    @property
    def table(self) -> _RoutingTable:
        """The current routing snapshot (atomic attribute read)."""
        return self._table

    @property
    def num_shards(self) -> int:
        """Number of shards currently serving."""
        return len(self._table.shards)

    @property
    def queue_depth(self) -> int:
        """Per-shard sub-batches currently in flight on the executor."""
        return self._inflight

    def shard_for(self, key: Key) -> Shard:
        """The shard currently serving ``key``."""
        table = self._table
        return table.shards[table.partitioner.shard_of(key)]

    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-service",
                )
            return self._executor

    def _run_per_shard(self, tasks: Sequence[Callable[[], None]]) -> None:
        """Execute per-shard thunks, on the pool when it pays off."""
        if self._max_workers <= 0 or len(tasks) <= 1:
            for task in tasks:
                task()
            return
        # A traced request's span lives on *this* thread's stack; re-adopt
        # it on each pool thread so shard spans keep their parent.
        tracer = active_tracer()
        if tracer is not None:
            parent = tracer.current()
            if parent is not None:
                tasks = [_adopted(tracer, parent, task) for task in tasks]
        with self._inflight_lock:
            self._inflight += len(tasks)
        registry = active_registry()
        if registry is not None:
            registry.gauge("service.queue_depth").set(self._inflight)
        try:
            futures: List[Future[None]] = [
                self._pool().submit(task) for task in tasks
            ]
            wait(futures)
            for future in futures:
                exception = future.exception()
                if exception is not None:
                    raise exception
        finally:
            with self._inflight_lock:
                self._inflight -= len(tasks)

    @staticmethod
    def _group_positions(
        table: _RoutingTable, keys: Sequence[Key]
    ) -> Dict[int, List[int]]:
        """Input positions grouped by the shard position serving each key.

        Grouping always runs against an explicit ``table`` snapshot so
        that the caller indexes ``table.shards`` with positions computed
        by the *same* partitioner — re-reading ``self._table`` here
        would tear the snapshot under a concurrent split/merge.
        """
        shard_of = table.partitioner.shard_of
        groups: Dict[int, List[int]] = {}
        for position, key in enumerate(keys):
            groups.setdefault(shard_of(key), []).append(position)
        return groups

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: Key) -> Optional[int]:
        """The value under ``key``, or None."""
        with span_if_traced(_ROUTE_SPAN, op="get", fanout=1):
            return self.shard_for(key).get(key)

    def get_many(self, keys: Sequence[Key]) -> List[Optional[int]]:
        """Values aligned with ``keys``; sub-batches run per shard."""
        keys = list(keys)
        if not keys:
            return []
        table = self._table
        groups = self._group_positions(table, keys)
        results: List[Optional[int]] = [None] * len(keys)

        def reader(shard: Shard, positions: List[int]) -> Callable[[], None]:
            def run() -> None:
                values = shard.get_many([keys[position] for position in positions])
                for position, value in zip(positions, values):
                    results[position] = value

            return run

        with span_if_traced(
            _ROUTE_SPAN, op="get_many", count=len(keys), fanout=len(groups)
        ):
            self._run_per_shard(
                [
                    reader(table.shards[shard_id], positions)
                    for shard_id, positions in groups.items()
                ]
            )
        self._count_ops("read", len(keys))
        return results

    def scan(self, start_key: Key, count: int) -> List[Pair]:
        """Up to ``count`` pairs in key order starting at ``start_key``.

        Range partitions concatenate shard results in shard order; hash
        partitions scan every shard in parallel and k-way merge.
        """
        if count <= 0:
            return []
        table = self._table
        if table.partitioner.ordered:
            result: List[Pair] = []
            first = table.partitioner.shard_of(start_key)
            with span_if_traced(
                _ROUTE_SPAN, op="scan", count=count, fanout=len(table.shards) - first
            ):
                for shard in table.shards[first:]:
                    need = count - len(result)
                    if need <= 0:
                        break
                    result.extend(shard.scan(start_key, need))
            self._count_ops("scan", 1)
            return result[:count]
        per_shard: List[List[Pair]] = [[] for _ in table.shards]

        def scanner(position: int, shard: Shard) -> Callable[[], None]:
            def run() -> None:
                per_shard[position] = shard.scan(start_key, count)

            return run

        with span_if_traced(
            _ROUTE_SPAN, op="scan", count=count, fanout=len(table.shards)
        ):
            self._run_per_shard(
                [
                    scanner(position, shard)
                    for position, shard in enumerate(table.shards)
                ]
            )
        self._count_ops("scan", 1)
        merged = heapq.merge(*per_shard, key=lambda pair: pair[0])
        return list(itertools.islice(merged, count))

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, key: Key, value: int) -> None:
        """Upsert one pair."""
        with span_if_traced(_ROUTE_SPAN, op="put", fanout=1):
            self._write_group(self.shard_for(key), [(key, value)])
        self._count_ops("write", 1)

    def put_many(self, pairs: Sequence[Pair]) -> None:
        """Upsert a batch; sub-batches run per shard in input order."""
        pairs = list(pairs)
        if not pairs:
            return
        table = self._table
        groups = self._group_positions(table, [key for key, _ in pairs])

        def writer(shard: Shard, positions: List[int]) -> Callable[[], None]:
            def run() -> None:
                self._write_group(
                    shard, [pairs[position] for position in positions]
                )

            return run

        with span_if_traced(
            _ROUTE_SPAN, op="put_many", count=len(pairs), fanout=len(groups)
        ):
            self._run_per_shard(
                [
                    writer(table.shards[shard_id], positions)
                    for shard_id, positions in groups.items()
                ]
            )
        self._count_ops("write", len(pairs))

    def _write_group(self, shard: Shard, group: List[Pair]) -> None:
        """Write ``group`` through ``shard``'s write gate, revalidating
        the route once the gate is held.

        ``shard`` is where a routing snapshot sent these pairs, but a
        concurrent split/merge holds the gate for its whole
        build-aside+swap — a writer that blocked on the gate may wake up
        *after* the table swap, when ``shard`` is an orphaned index no
        table routes to any more.  Writing there would silently lose the
        pairs.  So after acquiring the gate the current table is
        re-read: pairs it still routes to ``shard`` land here, and the
        rest are regrouped against the fresh table and retried.
        """
        worklist: List[Tuple[Shard, List[Pair]]] = [(shard, group)]
        while worklist:
            shard, group = worklist.pop()
            self._check_writable(shard)
            moved: List[Pair] = []
            with shard.write_gate:
                current = self._table
                shard_of = current.partitioner.shard_of
                still: List[Pair] = []
                for pair in group:
                    if current.shards[shard_of(pair[0])] is shard:
                        still.append(pair)
                    else:
                        moved.append(pair)
                if still:
                    shard.put_many(still)
            if moved:
                # The swap may have scattered the group across several
                # new shards; retries are rare and small, so re-fan-out
                # serially on this thread.
                table = self._table
                regrouped = self._group_positions(
                    table, [key for key, _ in moved]
                )
                for position, indexes in regrouped.items():
                    worklist.append(
                        (table.shards[position], [moved[i] for i in indexes])
                    )

    def delete(self, key: Key) -> bool:
        """Remove ``key``; False when it was absent."""
        with span_if_traced(_ROUTE_SPAN, op="delete", fanout=1):
            while True:
                shard = self.shard_for(key)
                self._check_writable(shard)
                with shard.write_gate:
                    # Same revalidation as _write_group: a split/merge may
                    # have swapped the table while we waited on the gate.
                    current = self._table
                    if current.shards[current.partitioner.shard_of(key)] is shard:
                        removed = shard.delete(key)
                        break
        self._count_ops("write", 1)
        return removed

    @staticmethod
    def _check_writable(shard: Shard) -> None:
        if not shard.supports_writes:
            raise ReadOnlyShardError(
                f"shard wraps a read-only family "
                f"({type(shard.index).__name__})"
            )

    # ------------------------------------------------------------------
    # Online split / merge (build-aside + swap)
    # ------------------------------------------------------------------
    def split_shard(self, shard_id: int, at_key: Optional[Key] = None) -> Key:
        """Split one range shard in two at ``at_key`` (default: median).

        Writes to the shard are frozen for the duration; reads keep
        flowing (OLC shards lock-free, locked families briefly
        serialized).  A failure at any ``service.split.*`` fault point
        aborts with the old routing table still serving — no key is
        ever lost.  Returns the split key actually used.
        """
        with self._admin_lock:
            table = self._table
            self._check_shard_id(table, shard_id)
            shard = table.shards[shard_id]
            if shard.is_replicated:
                raise PartitionError(
                    "online split is not supported on replicated shards; "
                    "re-provision through build()/recover() instead"
                )
            with shard.write_gate, shard._guard():
                fault_point("service.split.collect")
                pairs = shard.items()
                split_key = at_key if at_key is not None else self._median_key(pairs)
                # Validates the key against the shard's range (raises
                # PartitionError on hash partitions or a bad boundary).
                new_partitioner = table.partitioner.split(shard_id, split_key)
                fault_point("service.split.build")
                cut = bisect_left(pairs, (split_key,))
                new_logs = self._build_logs(shard_id, [pairs[:cut], pairs[cut:]])
                left = Shard(
                    shard_id,
                    self._index_factory(pairs[:cut]),
                    thread_safe=shard.thread_safe,
                    durable_log=new_logs[0] if new_logs else None,
                )
                right = Shard(
                    shard_id + 1,
                    self._index_factory(pairs[cut:]),
                    thread_safe=shard.thread_safe,
                    durable_log=new_logs[1] if new_logs else None,
                )
                shards = (
                    table.shards[:shard_id]
                    + (left, right)
                    + table.shards[shard_id + 1 :]
                )
                # Durable commit point: the new manifest (new epoch, new
                # log ids) is published before the in-memory swap, while
                # the gate still blocks every acknowledgment.  A real
                # crash after this line recovers into the new epoch; an
                # in-process abort at the swap fault point below rolls
                # the manifest back before any writer can proceed.  If
                # the publish itself fails the old manifest still rules,
                # so only the freshly built logs need destroying.
                try:
                    undo = self._publish_epoch(table, new_partitioner, shards)
                except BaseException:
                    self._delete_logs(new_logs)
                    raise
                try:
                    fault_point("service.split.swap")
                    self._install(new_partitioner, shards)
                except BaseException:
                    self._unpublish_epoch(undo, new_logs)
                    raise
                self._retire_logs([shard])
            self.splits += 1
            self._publish_admin_metrics("service.splits")
            return split_key

    def merge_shards(self, left_id: int) -> None:
        """Merge range shards ``left_id`` and ``left_id + 1`` into one.

        Same discipline as :meth:`split_shard`: both shards are
        write-frozen, the merged replacement is built aside, and one
        table swap publishes it; a fault before the swap changes
        nothing.
        """
        with self._admin_lock:
            table = self._table
            self._check_shard_id(table, left_id)
            # Validates adjacency and raises on hash partitions.
            new_partitioner = table.partitioner.merge(left_id)
            left, right = table.shards[left_id], table.shards[left_id + 1]
            if left.is_replicated or right.is_replicated:
                raise PartitionError(
                    "online merge is not supported on replicated shards; "
                    "re-provision through build()/recover() instead"
                )
            # Gates before op locks on both shards: write_gate ranks above
            # op_lock in the lock hierarchy, and writers acquire gate then
            # op lock per shard, so interleaving gate/op across shards here
            # inverts the order (RA001).
            with left.write_gate, right.write_gate, left._guard(), right._guard():
                fault_point("service.merge.collect")
                pairs = left.items() + right.items()
                fault_point("service.merge.build")
                new_logs = self._build_logs(left_id, [pairs])
                merged = Shard(
                    left_id,
                    self._index_factory(pairs),
                    thread_safe=left.thread_safe,
                    durable_log=new_logs[0] if new_logs else None,
                )
                shards = (
                    table.shards[:left_id]
                    + (merged,)
                    + table.shards[left_id + 2 :]
                )
                # Same durable commit protocol as split_shard: manifest
                # first (gates held), swap second, manifest rollback on
                # an in-process abort at the swap point, new-log cleanup
                # when the publish itself fails.
                try:
                    undo = self._publish_epoch(table, new_partitioner, shards)
                except BaseException:
                    self._delete_logs(new_logs)
                    raise
                try:
                    fault_point("service.merge.swap")
                    self._install(new_partitioner, shards)
                except BaseException:
                    self._unpublish_epoch(undo, new_logs)
                    raise
                self._retire_logs([left, right])
            self.merges += 1
            self._publish_admin_metrics("service.merges")

    # ------------------------------------------------------------------
    # Durability admin (checkpointing + epoch re-keying)
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[str, Any]:
        """Snapshot every durable shard and truncate its WAL.

        Runs under ``_admin_lock`` (serialized with split/merge); each
        shard is frozen just long enough to collect its pairs at a
        known LSN — shards are checkpointed one at a time, so writers
        on other shards keep flowing.  Returns a per-shard summary.
        """
        if self._durability is None:
            raise RuntimeError("checkpoint() requires a durable router")
        summaries: List[Dict[str, Any]] = []
        with self._admin_lock:
            table = self._table
            for position, shard in enumerate(table.shards):
                if shard.durable_log is None:
                    continue
                with shard.write_gate:
                    entries = shard.checkpoint_logs()
                for entry in entries:
                    summaries.append({"position": position, **entry})
            self.checkpoints += 1
            self._publish_admin_metrics("service.checkpoints")
        return {"epoch": self._epoch, "shards": summaries}

    def _build_logs(
        self, position: int, groups: Sequence[List[Pair]]
    ) -> Optional[List[DurableLog]]:
        """Fresh next-epoch logs for replacement shards at ``position``.

        Each log is born with a base snapshot of its group, so the new
        epoch is self-contained the instant its manifest publishes.
        Returns None on a non-durable router.
        """
        if self._durability is None:
            return None
        epoch = self._epoch + 1
        return [
            self._durability.create_log(
                DurabilityManager.log_id(epoch, position + offset), group
            )
            for offset, group in enumerate(groups)
        ]

    @staticmethod
    def _log_ids(shards: Sequence[Shard]) -> List[str]:
        ids: List[str] = []
        for shard in shards:
            log = shard.durable_log
            if log is None:
                raise ValueError("durable router has a shard without a log")
            ids.append(log.log_id)
        return ids

    def _publish_epoch(
        self,
        table: _RoutingTable,
        new_partitioner: Partitioner,
        new_shards: Sequence[Shard],
    ) -> Optional[Manifest]:
        """Durably commit the next routing epoch; returns the undo manifest.

        Callers hold the affected write gates, so no acknowledgment can
        land between this publish and either the in-memory swap or the
        rollback in :meth:`_unpublish_epoch`.
        """
        if self._durability is None:
            return None
        undo = Manifest(
            epoch=self._epoch,
            partitioner=partitioner_spec(table.partitioner),
            shards=self._log_ids(table.shards),
        )
        self._durability.publish_manifest(
            Manifest(
                epoch=self._epoch + 1,
                partitioner=partitioner_spec(new_partitioner),
                shards=self._log_ids(new_shards),
            )
        )
        self._epoch += 1
        return undo

    def _unpublish_epoch(
        self, undo: Optional[Manifest], new_logs: Optional[List[DurableLog]]
    ) -> None:
        """Roll the durable epoch back after an aborted swap.

        The undo republish runs with fault injection disabled: the
        abort path must not itself be killable by the injector, or the
        manifest and the (still-old) in-memory table would diverge.
        """
        if self._durability is None or undo is None:
            return
        self._durability.publish_manifest(undo, allow_fault=False)
        self._epoch = undo.epoch
        self._delete_logs(new_logs)

    @staticmethod
    def _delete_logs(logs: Optional[List[DurableLog]]) -> None:
        """Destroy next-epoch logs that no published manifest reaches."""
        if logs:
            for log in logs:
                log.delete_files()

    def _retire_logs(self, shards: Sequence[Shard]) -> None:
        """Seal and destroy the logs of shards a committed swap replaced."""
        for shard in shards:
            log = shard.durable_log
            if log is not None:
                log.seal()
                log.delete_files()

    def _install(self, partitioner: Partitioner, shards: Tuple[Shard, ...]) -> None:
        # Never mutate shard objects here: they are shared with the
        # still-published old table, so renumbering them in place would
        # let concurrent stats()/arbiter readers observe torn ids.
        # Routing positions are derived from the table index instead.
        self._table = _RoutingTable(partitioner, shards)
        self._register_shards()

    @staticmethod
    def _check_shard_id(table: _RoutingTable, shard_id: int) -> None:
        if not 0 <= shard_id < len(table.shards):
            raise PartitionError(
                f"shard id {shard_id} outside [0, {len(table.shards)})"
            )

    @staticmethod
    def _median_key(pairs: List[Pair]) -> Key:
        """The first key of the upper half — a valid right-shard start."""
        if len(pairs) < 2:
            raise PartitionError("cannot split a shard with fewer than two keys")
        candidate = pairs[len(pairs) // 2][0]
        if candidate == pairs[0][0]:  # pragma: no cover - duplicate guard
            raise PartitionError("no interior split key exists")
        return candidate

    # ------------------------------------------------------------------
    # Budget arbitration
    # ------------------------------------------------------------------
    def _register_shards(self) -> None:
        self.arbiter.clear()
        for position, shard in enumerate(self._table.shards):
            if shard.is_replicated:
                # Replica budgets are divergence policy (each profile
                # carries its own); a global rebalance would overwrite
                # them and erase the very asymmetry replication exploits.
                continue
            self.arbiter.register(f"shard-{position}", shard.index)
        self.arbiter.rebalance()

    # ------------------------------------------------------------------
    # Introspection and metrics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(shard.num_keys for shard in self._table.shards)

    def imbalance(self) -> float:
        """Largest shard's key count over the mean (1.0 = balanced)."""
        counts = [shard.num_keys for shard in self._table.shards]
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 0.0
        return max(counts) / mean

    def counter_snapshots(self) -> Dict[int, Dict[str, int]]:
        """Per-shard structural counter events (for the cost model),
        keyed by the shard's position in the current routing table."""
        return {
            position: shard.counter_snapshot()
            for position, shard in enumerate(self._table.shards)
        }

    def stats(self) -> Dict[str, Any]:
        """One JSON-safe summary of the whole service."""
        table = self._table
        return {
            "partitioner": table.partitioner.describe(),
            "num_shards": len(table.shards),
            "num_keys": len(self),
            "size_bytes": sum(shard.size_bytes() for shard in table.shards),
            "imbalance": round(self.imbalance(), 4),
            "splits": self.splits,
            "merges": self.merges,
            "durable": self._durability is not None,
            "epoch": self._epoch,
            "checkpoints": self.checkpoints,
            "queue_depth": self.queue_depth,
            "budget": self.arbiter.describe(),
            "shards": [
                {**shard.stats(), "shard_id": position}
                for position, shard in enumerate(table.shards)
            ],
        }

    def verify(self) -> None:
        """Verify every shard and the routing discipline itself.

        Each shard's structural self-verification runs, and every key is
        checked to live on the shard the partitioner routes it to.
        """
        table = self._table
        for position, shard in enumerate(table.shards):
            shard.verify()
            for key, _ in shard.items():
                routed = table.partitioner.shard_of(key)
                if routed != position:
                    from repro.core.invariants import InvariantViolation

                    raise InvariantViolation(
                        f"key {key!r} lives on shard {position} but "
                        f"routes to shard {routed}"
                    )

    def _count_ops(self, kind: str, amount: int) -> None:
        registry = active_registry()
        if registry is None:
            return
        registry.counter(_OPS_COUNTERS[kind]).inc(amount)
        registry.gauge("service.shards").set(self.num_shards)
        registry.gauge("service.imbalance").set(self.imbalance())

    def _publish_admin_metrics(self, counter_name: str) -> None:
        registry = active_registry()
        if registry is None:
            return
        registry.counter(counter_name).inc()
        registry.gauge("service.shards").set(self.num_shards)
        registry.gauge("service.imbalance").set(self.imbalance())
