"""repro.service — a sharded front end over the index families.

The adaptation manager of the paper (Section 3) runs *per structure*
with bounded memory, which composes naturally across partitions: each
shard of a :class:`~repro.service.router.ShardRouter` wraps one index
family instance (AdaptiveBPlusTree, OlcBPlusTree, DualStageIndex,
HybridTrie, ...) with its own manager, while one
:class:`~repro.core.budget.BudgetArbiter` divides a single global
memory budget across all shards.

Components:

* :mod:`repro.service.partition` — hash and range key-space
  partitioners (range partitions support online split/merge);
* :mod:`repro.service.shard` — one partition: an index instance plus
  its access discipline (per-shard lock for non-thread-safe families,
  lock-free reads for the OLC B+-tree);
* :mod:`repro.service.router` — the batched front end
  (``get_many`` / ``put_many`` / ``scan``) executing per-shard
  sub-batches on a thread pool, merging ordered scans across shards,
  and performing online shard split/merge with the PR-1
  build-aside+swap discipline (fault-injectable, zero lost keys).
"""

from repro.service.partition import (
    HashPartitioner,
    Partitioner,
    PartitionError,
    RangePartitioner,
)
from repro.service.router import ShardRouter
from repro.service.shard import Shard

__all__ = [
    "HashPartitioner",
    "Partitioner",
    "PartitionError",
    "RangePartitioner",
    "Shard",
    "ShardRouter",
]
