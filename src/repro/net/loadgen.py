"""Open-loop load generator: Zipf tenants, Zipf keys, honest queueing.

``python -m repro.net.loadgen`` drives a :class:`~repro.net.server
.NetServer` the way a population of millions of independent users
would: arrivals follow a Poisson process at a configured *offered*
rate, each operation is stamped with its scheduled arrival time, and
**the generator never waits for a response before sending the next
request** (open loop).  Latency is measured from the scheduled arrival
to the response — so when the server falls behind, queueing delay
shows up in the tail instead of silently throttling the generator,
the classic closed-loop lie.  Requests still unanswered when the
drain window closes are *censored at the drain deadline* and included
in the latency distribution: an overloaded server cannot look fast by
just not answering.

Tenants are drawn Zipf(``tenant_alpha``) over the tenant list and keys
Zipf(``key_alpha``) over each tenant's key space (hot tenants and hot
keys, as in YCSB and the paper's Figure 11), using
:mod:`repro.workloads.distributions`.  Results aggregate into
:class:`~repro.obs.metrics.Histogram` instances with latency-scaled
buckets; p50/p99/p999 come from ``Histogram.quantile``.
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.net.client import NetClient
from repro.net.protocol import (
    OP_GET,
    OP_PUT,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_THROTTLED,
)
from repro.obs.metrics import LATENCY_BUCKETS, Histogram
from repro.obs.runtime import Telemetry
from repro.obs.slo import evaluate_checks, parse_check
from repro.workloads.distributions import zipf_indices

_STATUS_PENDING = 0
_STATUS_OK = 1
_STATUS_THROTTLED = 2
_STATUS_OVERLOADED = 3
_STATUS_ERROR = 4
_STATUS_UNANSWERED = 5


@dataclass(frozen=True)
class LoadgenConfig:
    """One open-loop run."""

    rate: float                       # offered ops/sec, aggregate
    duration: float                   # seconds of offered arrivals
    tenants: Sequence[str]
    key_space: int                    # loaded keys per tenant namespace
    tenant_alpha: float = 1.0
    key_alpha: float = 1.0
    get_fraction: float = 0.9
    connections: int = 4
    seed: int = 7
    poisson: bool = True              # exponential vs uniform inter-arrivals
    drain_timeout: float = 10.0       # wait for stragglers after last send
    trace_sample_every: int = 0       # distributed-trace sampling per client

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.duration <= 0:
            raise ValueError("rate and duration must be positive")
        if not self.tenants:
            raise ValueError("at least one tenant required")
        if self.key_space <= 0:
            raise ValueError("key_space must be positive")
        if not 0.0 <= self.get_fraction <= 1.0:
            raise ValueError("get_fraction must be in [0, 1]")
        if self.connections <= 0:
            raise ValueError("connections must be positive")
        if self.trace_sample_every < 0:
            raise ValueError("trace_sample_every must be >= 0")


@dataclass
class LoadgenResult:
    """Everything one run observed."""

    offered: int = 0
    ok: int = 0
    shed_throttled: int = 0
    shed_overloaded: int = 0
    errors: int = 0
    unanswered: int = 0
    send_seconds: float = 0.0
    #: Latency of accepted work: OK responses plus censored unanswered
    #: requests (sheds answer fast and are excluded — they are counted,
    #: not timed).
    latency: Histogram = field(
        default_factory=lambda: Histogram("net.loadgen.latency_seconds", LATENCY_BUCKETS)
    )
    #: Round-trip latency of shed (backpressure) responses.
    shed_latency: Histogram = field(
        default_factory=lambda: Histogram("net.loadgen.shed_seconds", LATENCY_BUCKETS)
    )

    @property
    def completed(self) -> int:
        """Requests that got any response at all."""
        return self.ok + self.shed_throttled + self.shed_overloaded + self.errors

    @property
    def shed(self) -> int:
        """Requests answered with backpressure."""
        return self.shed_throttled + self.shed_overloaded

    @property
    def shed_fraction(self) -> float:
        """Shed share of the offered load."""
        return self.shed / self.offered if self.offered else 0.0

    def summary(self) -> Dict[str, Any]:
        """One JSON-safe report (quantiles via Histogram.quantile)."""
        achieved = self.offered / self.send_seconds if self.send_seconds > 0 else 0.0
        return {
            "offered": self.offered,
            "achieved_send_rate": round(achieved, 1),
            "ok": self.ok,
            "shed_throttled": self.shed_throttled,
            "shed_overloaded": self.shed_overloaded,
            "shed_fraction": round(self.shed_fraction, 4),
            "errors": self.errors,
            "unanswered": self.unanswered,
            "latency": self.latency.summary(),
            "shed_latency": self.shed_latency.summary(),
        }

    def slo_values(self) -> Dict[str, float]:
        """The flat metric map ``--slo`` expressions evaluate against.

        Latency metrics are the accepted-work distribution, in seconds.
        """
        latency = self.latency.summary()
        offered = float(self.offered) if self.offered else 1.0
        return {
            "mean": latency["mean"],
            "p50": latency["p50"],
            "p90": latency["p90"],
            "p99": latency["p99"],
            "p999": latency["p999"],
            "shed_fraction": self.shed_fraction,
            "error_fraction": self.errors / offered,
            "unanswered_fraction": self.unanswered / offered,
            "ok_fraction": self.ok / offered,
        }


async def run_loadgen(
    host: str, port: int, config: LoadgenConfig
) -> LoadgenResult:
    """Drive one open-loop run against a running server."""
    n_ops = max(1, int(config.rate * config.duration))
    rng = np.random.default_rng(config.seed)
    arrivals = (
        np.cumsum(rng.exponential(1.0 / config.rate, n_ops))
        if config.poisson
        else (np.arange(n_ops, dtype=np.float64) + 1.0) / config.rate
    )
    tenant_ranks = zipf_indices(
        len(config.tenants), n_ops, alpha=config.tenant_alpha, rng=rng
    )
    key_ranks = zipf_indices(config.key_space, n_ops, alpha=config.key_alpha, rng=rng)
    is_get = rng.random(n_ops) < config.get_fraction
    tenants = list(config.tenants)

    clients = [
        await NetClient.connect(
            host, port, trace_sample_every=config.trace_sample_every
        )
        for _ in range(config.connections)
    ]
    result = LoadgenResult(offered=n_ops)
    statuses = np.full(n_ops, _STATUS_PENDING, dtype=np.int8)
    latencies = np.zeros(n_ops, dtype=np.float64)
    loop = asyncio.get_running_loop()

    async def fire(position: int, client: NetClient, target: float) -> None:
        tenant = tenants[int(tenant_ranks[position])]
        # Loaded keys are even (rank * 2); writes refresh the same space.
        key = int(key_ranks[position]) * 2
        try:
            if is_get[position]:
                response = await client.request(OP_GET, tenant, key=key)
            else:
                response = await client.request(
                    OP_PUT, tenant, key=key, value=position
                )
        except asyncio.CancelledError:
            raise
        except Exception:
            statuses[position] = _STATUS_ERROR
            return
        latencies[position] = loop.time() - target
        if response.status == STATUS_OK:
            statuses[position] = _STATUS_OK
        elif response.status == STATUS_THROTTLED:
            statuses[position] = _STATUS_THROTTLED
        elif response.status == STATUS_OVERLOADED:
            statuses[position] = _STATUS_OVERLOADED
        else:
            statuses[position] = _STATUS_ERROR

    tasks: List["asyncio.Task[None]"] = []
    start = loop.time()
    try:
        for position in range(n_ops):
            target = start + float(arrivals[position])
            delay = target - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            client = clients[position % len(clients)]
            tasks.append(asyncio.create_task(fire(position, client, target)))
        result.send_seconds = loop.time() - start
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=config.drain_timeout)
            deadline = loop.time()
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            # Censor: a request never answered inside the drain window is
            # at least (deadline - its scheduled arrival) slow.
            for position in range(n_ops):
                if statuses[position] in (_STATUS_PENDING,):
                    statuses[position] = _STATUS_UNANSWERED
                    latencies[position] = max(
                        0.0, deadline - (start + float(arrivals[position]))
                    )
    finally:
        for client in clients:
            await client.close()

    for position in range(n_ops):
        status = int(statuses[position])
        if status == _STATUS_OK:
            result.ok += 1
            result.latency.record(float(latencies[position]))
        elif status == _STATUS_UNANSWERED:
            result.unanswered += 1
            result.latency.record(float(latencies[position]))
        elif status == _STATUS_THROTTLED:
            result.shed_throttled += 1
            result.shed_latency.record(float(latencies[position]))
        elif status == _STATUS_OVERLOADED:
            result.shed_overloaded += 1
            result.shed_latency.record(float(latencies[position]))
        else:
            result.errors += 1
    return result


async def measure_capacity(
    host: str,
    port: int,
    tenants: Sequence[str],
    key_space: int,
    concurrency: int = 64,
    duration: float = 0.5,
    seed: int = 11,
) -> float:
    """Closed-loop GET throughput estimate (requests/sec).

    ``concurrency`` workers issue back-to-back requests for
    ``duration`` seconds; the aggregate completion rate approximates
    the serving capacity of the current server configuration.  The
    bench uses this to place its open-loop offered load relative to
    what the machine under test can actually do.
    """
    rng = np.random.default_rng(seed)
    loop = asyncio.get_running_loop()
    client = await NetClient.connect(host, port)
    completed = 0
    deadline = loop.time() + duration

    async def worker(worker_id: int) -> None:
        nonlocal completed
        keys = zipf_indices(key_space, 2048, alpha=1.0, rng=rng)
        tenant = tenants[worker_id % len(tenants)]
        position = 0
        while loop.time() < deadline:
            key = int(keys[position % len(keys)]) * 2
            position += 1
            try:
                await client.request(OP_GET, tenant, key=key)
            except Exception:
                return
            completed += 1

    started = loop.time()
    try:
        await asyncio.gather(*(worker(i) for i in range(concurrency)))
    finally:
        elapsed = max(1e-6, loop.time() - started)
        await client.close()
    return completed / elapsed


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.loadgen",
        description="Open-loop Zipf load generator for the repro.net server.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--rate", type=float, default=2000.0, help="offered ops/sec")
    parser.add_argument("--duration", type=float, default=5.0, help="seconds of arrivals")
    parser.add_argument("--tenants", type=int, default=4, help="number of tenants (t0..tN-1)")
    parser.add_argument("--keys", type=int, default=10_000, help="key space per tenant")
    parser.add_argument("--tenant-alpha", type=float, default=1.0)
    parser.add_argument("--key-alpha", type=float, default=1.0)
    parser.add_argument("--get-fraction", type=float, default=0.9)
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--self-serve",
        action="store_true",
        help="start an in-process demo server (ignores --port 0 = pick free)",
    )
    parser.add_argument("--shards", type=int, default=2, help="shards per tenant group")
    parser.add_argument(
        "--family",
        default="olc",
        help="index family for --self-serve tenant groups (olc, adaptive, ...)",
    )
    parser.add_argument(
        "--durable",
        default=None,
        metavar="DIR",
        help="per-tenant WAL root for --self-serve (writes become durable "
        "and traced requests include durability.wal.append spans)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSONL trace here (self-serve: client+server spans "
        "share the file, so stitch sees complete chains)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="originate a distributed trace on every N-th request "
        "(0 = never; only effective with --trace)",
    )
    parser.add_argument(
        "--trace-ops",
        type=int,
        default=0,
        metavar="N",
        help="index-level op span sampling under --trace (0 = off)",
    )
    parser.add_argument(
        "--slo",
        action="append",
        default=[],
        metavar="EXPR",
        help="fail the run (exit 1) on violation, e.g. 'p99<0.01' or "
        "'shed_fraction<=0.05' (repeatable; see repro.obs.slo)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=128, help="coalescing batch ceiling"
    )
    parser.add_argument(
        "--max-delay", type=float, default=0.001, help="coalescing window seconds"
    )
    parser.add_argument(
        "--quota-ops",
        type=float,
        default=None,
        help="per-tenant ops/sec admission quota (default: unlimited)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="per-tenant inflight bound (default: unlimited)",
    )
    parser.add_argument("--json", action="store_true", help="print the summary as JSON")
    return parser


async def _amain(args: argparse.Namespace) -> LoadgenResult:
    tenants = [f"t{i}" for i in range(args.tenants)]
    config = LoadgenConfig(
        rate=args.rate,
        duration=args.duration,
        tenants=tenants,
        key_space=args.keys,
        tenant_alpha=args.tenant_alpha,
        key_alpha=args.key_alpha,
        get_fraction=args.get_fraction,
        connections=args.connections,
        seed=args.seed,
        trace_sample_every=args.trace_sample if args.trace else 0,
    )
    if args.self_serve:
        from repro.core.budget import TenantQuota
        from repro.net.server import NetServer
        from repro.net.tenancy import demo_directory

        quota: Optional[TenantQuota] = None
        if args.quota_ops is not None or args.max_inflight is not None:
            quota = TenantQuota(
                ops_per_sec=args.quota_ops, max_inflight=args.max_inflight
            )
        # Build the preloaded directory off-loop: with --self-serve the
        # loadgen's own coroutines share this loop, and an inline index
        # build (plus WAL creation under --durable) would stall them
        # before the run starts (RA005).
        directory = await asyncio.get_running_loop().run_in_executor(
            None,
            functools.partial(
                demo_directory,
                tenants,
                keys_per_tenant=args.keys,
                num_shards=args.shards,
                family=args.family,
                quota=quota,
                durability_root=args.durable,
            ),
        )
        try:
            async with NetServer(
                directory,
                host=args.host,
                port=args.port,
                max_batch=args.max_batch,
                max_delay=args.max_delay,
            ) as server:
                result = await run_loadgen(args.host, server.port, config)
        finally:
            directory.close()
    else:
        if args.port <= 0:
            raise SystemExit("--port is required without --self-serve")
        result = await run_loadgen(args.host, args.port, config)
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    checks = [parse_check(expression) for expression in args.slo]
    telemetry: Optional[Telemetry] = None
    if args.trace is not None:
        telemetry = Telemetry.with_jsonl_trace(
            args.trace, op_sample_every=args.trace_ops
        ).install()
    try:
        result = asyncio.run(_amain(args))
    finally:
        if telemetry is not None:
            telemetry.uninstall()
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        latency = summary["latency"]
        print(
            f"offered {summary['offered']} @ send rate "
            f"{summary['achieved_send_rate']}/s: {summary['ok']} ok, "
            f"{summary['shed_throttled']} throttled, "
            f"{summary['shed_overloaded']} overloaded, "
            f"{summary['errors']} errors, {summary['unanswered']} unanswered"
        )
        print(
            "accepted latency  "
            f"p50 {latency['p50'] * 1000:.2f}ms  "
            f"p99 {latency['p99'] * 1000:.2f}ms  "
            f"p999 {latency['p999'] * 1000:.2f}ms"
        )
    if checks:
        violations = evaluate_checks(result.slo_values(), checks)
        for violation in violations:
            print(violation, file=sys.stderr)
        if violations:
            return 1
        print(f"slo ok: {len(checks)} check(s) passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
