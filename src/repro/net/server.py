"""The asyncio TCP front end: framing, admission, coalescing, backpressure.

One :class:`NetServer` owns a :class:`~repro.net.tenancy.TenantDirectory`
(tenant -> shard group), a :class:`~repro.net.coalescer.Coalescer`, and
the directory's :class:`~repro.core.budget.ResourceArbiter`.  Per
connection, a read loop decodes frames and spawns one task per request,
so many requests from one connection are in flight concurrently —
that pipelining is what gives the coalescer batches to merge.

The request path, in order:

1. **decode** — a framing or body error (:class:`ProtocolError`)
   closes the connection; a protocol peer that ships garbage cannot
   wedge the reader, because every read is exact-length and
   CRC-checked before any field is trusted.
2. **admission** — the arbiter answers ``ok`` / ``throttled`` /
   ``overloaded`` from the tenant's token bucket and bounded inflight
   count.  Sheds become *responses* (:data:`STATUS_THROTTLED` /
   :data:`STATUS_OVERLOADED`) written immediately: bounded queues with
   backpressure, never unbounded buffering.
3. **dispatch** — GET/PUT flow through the coalescer into the shard
   group's batch paths; SCAN/DELETE/STATS run as single executor
   calls; PING answers inline.
4. **respond** — per-connection writes serialize on a lock; request
   latency (loop time, admission through response write) lands in the
   ``net.request_seconds`` histogram with latency-scaled buckets.

Every counter/gauge name is a literal in a module table (RA004).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Any, Optional

from repro.core.budget import ADMIT_OK, SHED_THROTTLED
from repro.net.coalescer import Coalescer
from repro.net.protocol import (
    OP_DELETE,
    OP_GET,
    OP_NAMES,
    OP_PING,
    OP_PUT,
    OP_SCAN,
    OP_STATS,
    STATUS_BAD_REQUEST,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_SERVER_ERROR,
    STATUS_THROTTLED,
    STATUS_UNKNOWN_TENANT,
    ProtocolError,
    Request,
    Response,
    decode_request,
    encode_frame,
    encode_response,
    read_frame,
)
from repro.net.tenancy import TenantDirectory
from repro.obs.jsonable import to_jsonable
from repro.obs.metrics import LATENCY_BUCKETS
from repro.obs.runtime import active_registry, active_tracer
from repro.obs.slo import SloMonitor
from repro.obs.tracing import Span, Tracer

#: RA004: literal instrument names for the serving path.
_COUNTERS = {
    "connections": "net.connections.opened",
    "disconnects": "net.connections.closed",
    "protocol_errors": "net.protocol_errors",
    "requests": "net.requests",
    "responses": "net.responses",
    "shed_throttled": "net.shed.throttled",
    "shed_overloaded": "net.shed.overloaded",
    "unknown_tenant": "net.unknown_tenant",
    "server_errors": "net.server_errors",
}
_GAUGES = {
    "inflight": "net.inflight",
}
_LATENCY_HISTOGRAM = "net.request_seconds"
_SERVICE_HISTOGRAM = "net.service_seconds"
#: RA004: span-name literals for the traced request path.
_SERVER_SPAN = "net.server.request"
_ADMISSION_EVENT = "net.admission"

#: Ops charged against the tenant token bucket per request kind; a scan
#: is priced by the rows it may return, amortized to its batch shape.
_SCAN_OP_WEIGHT = 0.05


class NetServer:
    """A TCP index server over one tenant directory."""

    def __init__(
        self,
        directory: TenantDirectory,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 128,
        max_delay: float = 0.001,
        admission: bool = True,
        slo: Optional[SloMonitor] = None,
        slo_interval: float = 1.0,
    ) -> None:
        if slo_interval <= 0:
            raise ValueError(f"slo_interval must be positive, got {slo_interval}")
        self.directory = directory
        self.host = host
        self.port = port
        self.admission = admission
        self.coalescer = Coalescer(max_batch=max_batch, max_delay=max_delay)
        self.slo = slo
        self.slo_interval = slo_interval
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: "set[asyncio.Task[None]]" = set()
        self._slo_task: "Optional[asyncio.Task[None]]" = None
        self.connections = 0
        self.requests = 0
        self.responses = 0
        self.sheds = 0
        self.protocol_errors = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and begin accepting connections; ``self.port`` is real."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        if self.slo is not None:
            self._slo_task = asyncio.create_task(self._slo_loop())

    async def stop(self) -> None:
        """Stop accepting, cancel per-connection tasks, release pools."""
        if self._slo_task is not None:
            self._slo_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._slo_task
            self._slo_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        self.coalescer.close()

    async def _slo_loop(self) -> None:
        """Tick the SLO monitor on loop time while the server runs."""
        assert self.slo is not None
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.slo_interval)
            registry = active_registry()
            if registry is not None:
                self.slo.observe(registry, now=loop.time())

    async def __aenter__(self) -> "NetServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._conn_tasks.add(conn_task)
        registry = active_registry()
        if registry is not None:
            registry.counter(_COUNTERS["connections"]).inc()
        write_lock = asyncio.Lock()
        request_tasks: "set[asyncio.Task[None]]" = set()
        try:
            while True:
                try:
                    body = await read_frame(reader)
                except ProtocolError:
                    self.protocol_errors += 1
                    if registry is not None:
                        registry.counter(_COUNTERS["protocol_errors"]).inc()
                    break
                if body is None:
                    break
                try:
                    request = decode_request(body)
                except ProtocolError:
                    self.protocol_errors += 1
                    if registry is not None:
                        registry.counter(_COUNTERS["protocol_errors"]).inc()
                    break
                task = asyncio.create_task(
                    self._serve_request(request, writer, write_lock)
                )
                request_tasks.add(task)
                task.add_done_callback(request_tasks.discard)
        except asyncio.CancelledError:
            # Server shutdown: this is a top-level connection task, so
            # absorbing the cancellation here just closes the socket
            # quietly instead of spraying tracebacks from the streams
            # machinery.
            pass
        finally:
            for task in list(request_tasks):
                task.cancel()
            if request_tasks:
                await asyncio.gather(*request_tasks, return_exceptions=True)
            writer.close()
            with contextlib.suppress(asyncio.CancelledError, ConnectionError, OSError):
                await writer.wait_closed()
            if conn_task is not None:
                self._conn_tasks.discard(conn_task)
            if registry is not None:
                registry.counter(_COUNTERS["disconnects"]).inc()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    async def _serve_request(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        loop = asyncio.get_running_loop()
        started = loop.time()
        self.requests += 1
        registry = active_registry()
        if registry is not None:
            registry.counter(_COUNTERS["requests"]).inc()
        # Continue the client's trace: a sampled context opens a detached
        # server span (the per-thread stack is useless here — many request
        # tasks interleave on this one loop thread).
        tracer = active_tracer()
        span: Optional[Span] = None
        if (
            tracer is not None
            and request.trace is not None
            and request.trace.sampled
        ):
            span = tracer.start_remote(
                _SERVER_SPAN,
                trace_id=request.trace.trace_id,
                remote_parent_id=request.trace.parent_span_id,
                op=OP_NAMES.get(request.op, f"0x{request.op:02x}"),
                tenant=request.tenant,
            )

        def finish(status: int) -> None:
            if span is not None and tracer is not None:
                tracer.finish(span, status=status, elapsed_s=loop.time() - started)

        if request.op == OP_PING:
            await self._write(
                writer, write_lock, Response(request.req_id, STATUS_OK), OP_PING
            )
            finish(STATUS_OK)
            self._observe(registry, loop.time() - started)
            return
        if request.op == OP_STATS:
            # Tenant-less introspection: bypasses admission on purpose so
            # an operator can still see the arbiter while tenants shed.
            try:
                stats = await self.coalescer.run_single(self._stats_snapshot, span)
                payload = json.dumps(stats, sort_keys=True).encode("utf-8")
                response = Response(request.req_id, STATUS_OK, payload=payload)
            except Exception as error:  # noqa: BLE001 - one response per failure
                if registry is not None:
                    registry.counter(_COUNTERS["server_errors"]).inc()
                response = Response(
                    request.req_id,
                    STATUS_SERVER_ERROR,
                    message=f"{type(error).__name__}: {error}",
                )
            await self._write(writer, write_lock, response, OP_STATS)
            finish(response.status)
            self._observe(registry, loop.time() - started)
            return
        if request.tenant not in self.directory:
            if registry is not None:
                registry.counter(_COUNTERS["unknown_tenant"]).inc()
            await self._write(
                writer,
                write_lock,
                Response(
                    request.req_id,
                    STATUS_UNKNOWN_TENANT,
                    message=f"unknown tenant {request.tenant!r}",
                ),
                request.op,
            )
            finish(STATUS_UNKNOWN_TENANT)
            return
        arbiter = self.directory.arbiter
        admitted = False
        if self.admission:
            cost = 1.0
            if request.op == OP_SCAN:
                cost = max(1.0, request.count * _SCAN_OP_WEIGHT)
            decision = arbiter.admit(request.tenant, ops=cost, now=loop.time())
            if span is not None and tracer is not None:
                tracer.child_event(
                    _ADMISSION_EVENT, span, decision=decision, cost=cost
                )
            if decision != ADMIT_OK:
                self.sheds += 1
                if registry is not None:
                    if decision == SHED_THROTTLED:
                        registry.counter(_COUNTERS["shed_throttled"]).inc()
                    else:
                        registry.counter(_COUNTERS["shed_overloaded"]).inc()
                status = (
                    STATUS_THROTTLED
                    if decision == SHED_THROTTLED
                    else STATUS_OVERLOADED
                )
                await self._write(
                    writer,
                    write_lock,
                    Response(request.req_id, status, message=decision),
                    request.op,
                )
                finish(status)
                return
            admitted = True
        try:
            response = await self._dispatch(request, span)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - one response per failure
            if registry is not None:
                registry.counter(_COUNTERS["server_errors"]).inc()
            response = Response(
                request.req_id,
                STATUS_SERVER_ERROR,
                message=f"{type(error).__name__}: {error}",
            )
        finally:
            if admitted:
                arbiter.release(request.tenant)
                if registry is not None:
                    registry.gauge(_GAUGES["inflight"]).set(
                        sum(arbiter.inflight(t) for t in arbiter.tenants())
                    )
        service_elapsed = loop.time() - started
        await self._write(writer, write_lock, response, request.op)
        finish(response.status)
        self._observe(registry, loop.time() - started, service_elapsed)

    async def _dispatch(
        self, request: Request, span: Optional[Span] = None
    ) -> Response:
        """Execute one admitted request against its tenant's shard group."""
        router = self.directory.router_for(request.tenant)
        if request.op == OP_GET:
            assert request.key is not None
            value = await self.coalescer.get(router, request.key, span)
            return Response(
                request.req_id, STATUS_OK, found=value is not None, value=value
            )
        if request.op == OP_PUT:
            assert request.key is not None and request.value is not None
            await self.coalescer.put(router, (request.key, request.value), span)
            return Response(request.req_id, STATUS_OK)
        if request.op == OP_DELETE:
            key = request.key
            assert key is not None

            def delete_call() -> bool:
                return router.delete(key)

            removed = await self.coalescer.run_single(delete_call, span)
            return Response(request.req_id, STATUS_OK, removed=bool(removed))
        if request.op == OP_SCAN:
            start_key = request.key
            count = request.count
            assert start_key is not None

            def scan_call() -> Any:
                return router.scan(start_key, count)

            pairs = await self.coalescer.run_single(scan_call, span)
            return Response(request.req_id, STATUS_OK, pairs=list(pairs))
        return Response(
            request.req_id, STATUS_BAD_REQUEST, message=f"unhandled opcode {request.op}"
        )

    # ------------------------------------------------------------------
    # STATS snapshot (the ops-console payload)
    # ------------------------------------------------------------------
    def _stats_snapshot(self) -> "dict[str, Any]":
        """The structured console snapshot behind the STATS opcode.

        Keeps the original top-level ``tenants`` / ``arbiter`` keys (the
        pre-console payload) and layers the ops-console sections on top:
        server/coalescer counters, per-shard encoding mix + migrations +
        WAL lag, latency histogram summaries, and the SLO states.  Runs
        on the coalescer executor — never on the event loop.
        """
        snapshot = self.directory.stats()
        snapshot["server"] = {
            "admission": self.admission,
            "connections": self.connections,
            "requests": self.requests,
            "responses": self.responses,
            "sheds": self.sheds,
            "protocol_errors": self.protocol_errors,
        }
        snapshot["coalescer"] = {
            "enabled": self.coalescer.enabled,
            "max_batch": self.coalescer.max_batch,
            "max_delay": self.coalescer.max_delay,
            "batches_flushed": self.coalescer.batches_flushed,
            "requests_coalesced": self.coalescer.requests_coalesced,
        }
        snapshot["shards"] = {
            tenant: self.directory.router_for(tenant).stats().get("shards", [])
            for tenant in self.directory.tenants()
        }
        registry = active_registry()
        if registry is not None:
            snapshot["latency"] = registry.histogram_summaries("net.")
            counters = registry.snapshot()["counters"]
            snapshot["net_counters"] = {
                name: value
                for name, value in counters.items()
                if name.startswith("net.")
            }
        if self.slo is not None:
            snapshot["slo"] = self.slo.snapshot()
        return dict(to_jsonable(snapshot))

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: Response,
        op: int,
    ) -> None:
        frame = encode_frame(encode_response(response, op))
        try:
            async with write_lock:
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError):
            return

    def _observe(
        self,
        registry: Any,
        elapsed: float,
        service_elapsed: Optional[float] = None,
    ) -> None:
        self.responses += 1
        if registry is None:
            return
        registry.counter(_COUNTERS["responses"]).inc()
        registry.histogram(_LATENCY_HISTOGRAM, LATENCY_BUCKETS).record(elapsed)
        if service_elapsed is not None:
            registry.histogram(_SERVICE_HISTOGRAM, LATENCY_BUCKETS).record(
                service_elapsed
            )
