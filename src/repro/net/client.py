"""Asyncio client for the repro.net protocol.

One :class:`NetClient` multiplexes any number of concurrent requests
over a single TCP connection: requests carry a client-assigned
``req_id``, a background reader task resolves the matching future as
each response frame arrives, so callers just ``await`` — and many
callers awaiting at once is exactly the concurrency the server-side
coalescer feeds on.

Two calling styles:

* :meth:`request` — returns the raw :class:`~repro.net.protocol
  .Response` whatever its status (the load generator uses this to
  count backpressure sheds without exception overhead);
* :meth:`get` / :meth:`put` / :meth:`delete` / :meth:`scan` /
  :meth:`ping` / :meth:`stats` — typed conveniences that raise
  :class:`BackpressureError` on a shed and :class:`RequestError` on
  any other non-OK status.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from itertools import count
from typing import Any, Dict, List, Optional, Tuple

from repro.durability.codec import Key
from repro.net.protocol import (
    OP_DELETE,
    OP_GET,
    OP_NAMES,
    OP_PING,
    OP_PUT,
    OP_SCAN,
    OP_STATS,
    ProtocolError,
    Request,
    Response,
    decode_response,
    encode_frame,
    encode_request,
    read_frame,
)
from repro.obs.distributed import TraceContext, new_trace_id
from repro.obs.runtime import active_tracer

#: RA004: span-name literal for the client-side request root.
_CLIENT_SPAN = "net.client.request"


class NetError(RuntimeError):
    """Base class for client-visible request failures."""


class RequestError(NetError):
    """The server answered with a non-OK, non-backpressure status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"status 0x{status:02x}: {message}")
        self.status = status


class BackpressureError(NetError):
    """The server shed this request (throttled or overloaded)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"shed ({message})")
        self.status = status


class ConnectionClosedError(NetError):
    """The connection died with requests still in flight."""


class NetClient:
    """One multiplexed protocol connection.

    ``trace_sample_every`` controls head-based distributed-trace
    sampling: 0 never originates a context (the default; requests are
    byte-identical to the pre-trace protocol), 1 traces every request,
    ``n`` every n-th.  Sampling only engages while a tracer is installed
    (see :mod:`repro.obs.runtime`), so an untraced process pays one
    global read per request.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        trace_sample_every: int = 0,
    ) -> None:
        if trace_sample_every < 0:
            raise ValueError(f"trace_sample_every must be >= 0, got {trace_sample_every}")
        self._reader = reader
        self._writer = writer
        self._req_ids = count(1)
        self._pending: Dict[int, Tuple[int, "asyncio.Future[Response]"]] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self.trace_sample_every = trace_sample_every
        self._trace_countdown = 0
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int, trace_sample_every: int = 0
    ) -> "NetClient":
        """Open a connection to a :class:`~repro.net.server.NetServer`."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, trace_sample_every=trace_sample_every)

    async def close(self) -> None:
        """Close the connection; in-flight requests fail cleanly."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        with contextlib.suppress(asyncio.CancelledError, Exception):
            await self._reader_task
        self._writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await self._writer.wait_closed()
        self._fail_pending(ConnectionClosedError("client closed"))

    async def __aenter__(self) -> "NetClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Multiplexing
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                body = await read_frame(self._reader)
                if body is None:
                    break
                # The req_id prefix is enough to find the waiter; the
                # payload shape needs the original opcode.
                req_id = int.from_bytes(body[:8], "little") if len(body) >= 8 else -1
                waiter = self._pending.pop(req_id, None)
                if waiter is None:
                    continue
                op, future = waiter
                try:
                    response = decode_response(body, op=op)
                except ProtocolError as error:
                    if not future.done():
                        future.set_exception(error)
                    break
                if not future.done():
                    future.set_result(response)
        except (ProtocolError, ConnectionError, OSError) as error:
            self._fail_pending(ConnectionClosedError(str(error)))
        except asyncio.CancelledError:
            raise
        finally:
            self._fail_pending(ConnectionClosedError("connection closed"))

    def _fail_pending(self, error: Exception) -> None:
        pending, self._pending = self._pending, {}
        for _, future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def request(
        self,
        op: int,
        tenant: str,
        key: Optional[Key] = None,
        value: Optional[int] = None,
        num: int = 0,
    ) -> Response:
        """Send one request and await its response (any status)."""
        if self._closed:
            raise ConnectionClosedError("client closed")
        req_id = next(self._req_ids)
        loop = asyncio.get_running_loop()
        span = None
        trace: Optional[TraceContext] = None
        tracer = active_tracer()
        if tracer is not None and self.trace_sample_every > 0:
            if self._trace_countdown > 0:
                self._trace_countdown -= 1
            else:
                self._trace_countdown = self.trace_sample_every - 1
                span = tracer.start_remote(
                    _CLIENT_SPAN,
                    trace_id=new_trace_id(),
                    op=OP_NAMES.get(op, f"0x{op:02x}"),
                    tenant=tenant,
                )
                trace = TraceContext(
                    trace_id=span.trace_id or 0,
                    parent_span_id=span.span_id,
                    sampled=True,
                )
        started = loop.time()
        frame = encode_frame(
            encode_request(
                Request(
                    req_id=req_id,
                    op=op,
                    tenant=tenant,
                    key=key,
                    value=value,
                    count=num,
                    trace=trace,
                )
            )
        )
        future: "asyncio.Future[Response]" = loop.create_future()
        self._pending[req_id] = (op, future)
        try:
            async with self._write_lock:
                self._writer.write(frame)
                await self._writer.drain()
            response = await future
        except BaseException as error:
            self._pending.pop(req_id, None)
            if span is not None and tracer is not None:
                tracer.finish(
                    span,
                    elapsed_s=loop.time() - started,
                    error=type(error).__name__,
                )
            if isinstance(error, (ConnectionError, OSError)):
                raise ConnectionClosedError(str(error)) from error
            raise
        if span is not None and tracer is not None:
            tracer.finish(
                span, elapsed_s=loop.time() - started, status=response.status
            )
        return response

    # ------------------------------------------------------------------
    # Typed conveniences
    # ------------------------------------------------------------------
    @staticmethod
    def _check(response: Response) -> Response:
        if response.ok:
            return response
        if response.shed:
            raise BackpressureError(response.status, response.message)
        raise RequestError(response.status, response.message)

    async def get(self, tenant: str, key: Key) -> Optional[int]:
        """The value under ``key`` in ``tenant``'s namespace, or None."""
        response = self._check(await self.request(OP_GET, tenant, key=key))
        return response.value if response.found else None

    async def put(self, tenant: str, key: Key, value: int) -> None:
        """Upsert one pair (ack implies the write reached the group)."""
        self._check(await self.request(OP_PUT, tenant, key=key, value=value))

    async def delete(self, tenant: str, key: Key) -> bool:
        """Remove ``key``; False when it was absent."""
        response = self._check(await self.request(OP_DELETE, tenant, key=key))
        return response.removed

    async def scan(self, tenant: str, start_key: Key, num: int) -> List[Tuple[Key, int]]:
        """Up to ``num`` ordered pairs from ``start_key``."""
        response = self._check(
            await self.request(OP_SCAN, tenant, key=start_key, num=num)
        )
        return response.pairs or []

    async def ping(self) -> None:
        """Round-trip a no-op frame."""
        self._check(await self.request(OP_PING, ""))

    async def stats(self) -> Dict[str, Any]:
        """The server's directory/arbiter stats snapshot."""
        response = self._check(await self.request(OP_STATS, ""))
        return dict(json.loads(response.payload.decode("utf-8")))
