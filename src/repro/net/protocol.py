"""The wire protocol: length-prefixed, CRC-framed request/response bodies.

Framing follows the WAL discipline from :mod:`repro.durability.wal` —
fixed ``struct.Struct`` headers, ``zlib.crc32`` over the body, every
declared length bounds-checked before anything is unpacked:

.. code-block:: text

    frame    := body_len u32 || crc32(body) u32 || body     -- 8-byte header
    request  := req_id u64 || opcode u8 || tlen u8 || tenant utf-8
                || [trace_ctx] || payload
    response := req_id u64 || status u8 || payload

The opcode byte's low 7 bits name the operation; the high bit
(:data:`OP_TRACE_FLAG`, the protocol's one version bump so far) declares
that a 17-byte trace context — ``trace_id u64 || parent_span_id u64 ||
flags u8`` (flags bit 0 = sampled) — follows the tenant name.  Frames
without the bit decode exactly as before, so old clients keep working
against new servers and vice versa; servers that predate the bit reject
flagged frames as unknown opcodes rather than misreading the payload.

Request payloads reuse the tagged key/value codec from
:mod:`repro.durability.codec` (int or bytes keys, int values):

========  =======================================
GET       key
PUT       key || value
DELETE    key
SCAN      key || count u32
PING      (empty)
STATS     (empty)
========  =======================================

Response payloads by status: an OK GET carries ``found u8 [|| value]``,
an OK DELETE ``removed u8``, an OK SCAN ``count u32 || (key||value)*``,
an OK STATS a ``u32``-prefixed UTF-8 JSON blob, and every error status
a ``u16``-prefixed UTF-8 message.

Anything inconsistent — a frame longer than :data:`MAX_FRAME_BYTES`, a
CRC mismatch, a truncated body, an unknown opcode/status/tag — raises
:class:`ProtocolError`.  The server closes the connection on it rather
than guessing at resynchronization; the fuzz tests in
``tests/net/test_protocol.py`` hold that bar bit-flip by bit-flip.
"""

from __future__ import annotations

import asyncio
import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.durability.codec import (
    Key,
    decode_key,
    decode_value,
    encode_key,
    encode_value,
)
from repro.fst.serialize import CorruptSerializationError
from repro.obs.distributed import TraceContext

#: One frame body longer than this is garbage framing, not data (4 MiB).
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Hard ceiling on one SCAN response (keeps a reply inside one frame).
MAX_SCAN_COUNT = 65_536

_FRAME_HEADER = struct.Struct("<II")
_REQ_PREFIX = struct.Struct("<QBB")   # req_id, opcode, tenant length
_RESP_PREFIX = struct.Struct("<QB")   # req_id, status
_TRACE_CTX = struct.Struct("<QQB")    # trace_id, parent_span_id, flags
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

# -- opcodes -------------------------------------------------------------
OP_GET = 0x01
OP_PUT = 0x02
OP_DELETE = 0x03
OP_SCAN = 0x04
OP_PING = 0x05
OP_STATS = 0x06

#: High bit of the opcode byte: a trace context follows the tenant name.
OP_TRACE_FLAG = 0x80

#: Trace-context flags byte: bit 0 = sampled; the rest must be zero.
_TRACE_SAMPLED = 0x01

OPCODES = frozenset({OP_GET, OP_PUT, OP_DELETE, OP_SCAN, OP_PING, OP_STATS})

#: Human-readable opcode names (span/console attributes).
OP_NAMES = {
    OP_GET: "get",
    OP_PUT: "put",
    OP_DELETE: "delete",
    OP_SCAN: "scan",
    OP_PING: "ping",
    OP_STATS: "stats",
}

# -- response statuses ---------------------------------------------------
STATUS_OK = 0x00
STATUS_THROTTLED = 0x10       # ops/sec quota exhausted (backpressure)
STATUS_OVERLOADED = 0x11      # bounded inflight queue full (backpressure)
STATUS_UNKNOWN_TENANT = 0x12
STATUS_BAD_REQUEST = 0x13
STATUS_SERVER_ERROR = 0x14

STATUSES = frozenset(
    {
        STATUS_OK,
        STATUS_THROTTLED,
        STATUS_OVERLOADED,
        STATUS_UNKNOWN_TENANT,
        STATUS_BAD_REQUEST,
        STATUS_SERVER_ERROR,
    }
)

#: Statuses that mean "shed by admission control, retry later".
BACKPRESSURE_STATUSES = frozenset({STATUS_THROTTLED, STATUS_OVERLOADED})


class ProtocolError(CorruptSerializationError):
    """A frame or body that violates the wire contract."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


@dataclass(frozen=True)
class Request:
    """One decoded client request."""

    req_id: int
    op: int
    tenant: str
    key: Optional[Key] = None
    value: Optional[int] = None
    count: int = 0
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
class Response:
    """One decoded server response."""

    req_id: int
    status: int
    value: Optional[int] = None
    found: bool = False
    removed: bool = False
    pairs: Optional[List[Tuple[Key, int]]] = None
    message: str = ""
    payload: bytes = b""

    @property
    def ok(self) -> bool:
        """True when the request was served (not shed or failed)."""
        return self.status == STATUS_OK

    @property
    def shed(self) -> bool:
        """True when admission control answered with backpressure."""
        return self.status in BACKPRESSURE_STATUSES


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(body: bytes) -> bytes:
    """Wrap ``body`` in the length + CRC frame header."""
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame body of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body


def decode_frame(buffer: bytes) -> Optional[Tuple[bytes, int]]:
    """Decode one frame from the head of ``buffer``.

    Returns ``(body, bytes_consumed)``, or None when the buffer holds a
    plausible but incomplete frame (stream callers read more bytes; at
    EOF an incomplete frame is a protocol error — see
    :func:`read_frame`).  Raises :class:`ProtocolError` on an oversized
    declared length or a CRC mismatch.
    """
    if len(buffer) < _FRAME_HEADER.size:
        return None
    length, crc = _FRAME_HEADER.unpack_from(buffer)
    _require(length <= MAX_FRAME_BYTES, f"declared frame of {length} bytes exceeds ceiling")
    end = _FRAME_HEADER.size + length
    if len(buffer) < end:
        return None
    body = bytes(buffer[_FRAME_HEADER.size : end])
    _require(zlib.crc32(body) == crc, "frame CRC mismatch")
    return body, end


async def read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one complete frame body from an asyncio stream.

    Returns None on a clean EOF at a frame boundary.  A connection cut
    mid-frame, an oversized declared length, or a CRC mismatch raises
    :class:`ProtocolError` — the reader never blocks forever on garbage
    because every read is for an exact, pre-validated byte count.
    """
    try:
        header = await reader.readexactly(_FRAME_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-frame-header ({len(error.partial)} bytes)"
        ) from error
    length, crc = _FRAME_HEADER.unpack(header)
    _require(length <= MAX_FRAME_BYTES, f"declared frame of {length} bytes exceeds ceiling")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"connection closed mid-frame ({len(error.partial)}/{length} bytes)"
        ) from error
    _require(zlib.crc32(body) == crc, "frame CRC mismatch")
    return body


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
def encode_request(request: Request) -> bytes:
    """Encode one request body (unframed)."""
    _require(request.op in OPCODES, f"unknown opcode 0x{request.op:02x}")
    tenant = request.tenant.encode("utf-8")
    _require(len(tenant) <= 255, f"tenant name of {len(tenant)} bytes exceeds 255")
    op_byte = request.op | (OP_TRACE_FLAG if request.trace is not None else 0)
    parts = [_REQ_PREFIX.pack(request.req_id, op_byte, len(tenant)), tenant]
    if request.trace is not None:
        flags = _TRACE_SAMPLED if request.trace.sampled else 0
        parts.append(
            _TRACE_CTX.pack(
                request.trace.trace_id, request.trace.parent_span_id, flags
            )
        )
    if request.op in (OP_GET, OP_DELETE):
        assert request.key is not None
        parts.append(encode_key(request.key))
    elif request.op == OP_PUT:
        assert request.key is not None and request.value is not None
        parts.append(encode_key(request.key))
        parts.append(encode_value(request.value))
    elif request.op == OP_SCAN:
        assert request.key is not None
        _require(0 < request.count <= MAX_SCAN_COUNT, f"scan count {request.count} invalid")
        parts.append(encode_key(request.key))
        parts.append(_U32.pack(request.count))
    return b"".join(parts)


def decode_request(body: bytes) -> Request:
    """Decode one request body; raises :class:`ProtocolError` on garbage."""
    try:
        _require(len(body) >= _REQ_PREFIX.size, f"request body of {len(body)} bytes too short")
        req_id, op_byte, tenant_len = _REQ_PREFIX.unpack_from(body)
        traced = bool(op_byte & OP_TRACE_FLAG)
        op = op_byte & ~OP_TRACE_FLAG
        _require(op in OPCODES, f"unknown opcode 0x{op:02x}")
        offset = _REQ_PREFIX.size
        _require(offset + tenant_len <= len(body), "tenant name overruns the body")
        try:
            tenant = body[offset : offset + tenant_len].decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"tenant name is not UTF-8: {error}") from error
        offset += tenant_len
        trace: Optional[TraceContext] = None
        if traced:
            _require(offset + _TRACE_CTX.size <= len(body), "trace context truncated")
            trace_id, parent_span_id, flags = _TRACE_CTX.unpack_from(body, offset)
            offset += _TRACE_CTX.size
            _require(trace_id != 0, "trace_id 0 is reserved")
            _require(flags & ~_TRACE_SAMPLED == 0, f"trace flags 0x{flags:02x} invalid")
            trace = TraceContext(
                trace_id=trace_id,
                parent_span_id=parent_span_id,
                sampled=bool(flags & _TRACE_SAMPLED),
            )
        key: Optional[Key] = None
        value: Optional[int] = None
        count = 0
        if op in (OP_GET, OP_DELETE):
            key, offset = decode_key(body, offset)
        elif op == OP_PUT:
            key, offset = decode_key(body, offset)
            value, offset = decode_value(body, offset)
        elif op == OP_SCAN:
            key, offset = decode_key(body, offset)
            _require(offset + _U32.size <= len(body), "scan count missing")
            (count,) = _U32.unpack_from(body, offset)
            offset += _U32.size
            _require(0 < count <= MAX_SCAN_COUNT, f"scan count {count} invalid")
        _require(offset == len(body), f"{len(body) - offset} trailing bytes after request")
        return Request(
            req_id=req_id,
            op=op,
            tenant=tenant,
            key=key,
            value=value,
            count=count,
            trace=trace,
        )
    except CorruptSerializationError as error:
        # Key/value codec errors surface under the one protocol exception.
        raise ProtocolError(str(error)) from error


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def encode_response(response: Response, op: Optional[int] = None) -> bytes:
    """Encode one response body (unframed).

    ``op`` is the opcode of the request being answered; it selects the
    OK-payload shape (a GET miss and a PUT ack would otherwise be
    indistinguishable).  Error statuses need no ``op``.
    """
    _require(response.status in STATUSES, f"unknown status 0x{response.status:02x}")
    parts = [_RESP_PREFIX.pack(response.req_id, response.status)]
    if response.status != STATUS_OK:
        message = response.message.encode("utf-8")
        _require(len(message) <= 65_535, "error message too long")
        parts.append(_U16.pack(len(message)))
        parts.append(message)
        return b"".join(parts)
    if op == OP_GET:
        if response.found:
            assert response.value is not None
            parts.append(b"\x01")
            parts.append(encode_value(response.value))
        else:
            parts.append(b"\x00")
    elif op == OP_DELETE:
        parts.append(b"\x01" if response.removed else b"\x00")
    elif op == OP_SCAN:
        pairs = response.pairs or []
        _require(len(pairs) <= MAX_SCAN_COUNT, "scan response too large")
        parts.append(_U32.pack(len(pairs)))
        for key, value in pairs:
            parts.append(encode_key(key))
            parts.append(encode_value(value))
    elif op == OP_STATS:
        parts.append(_U32.pack(len(response.payload)))
        parts.append(response.payload)
    # PUT / PING / unknown: empty OK body.
    return b"".join(parts)


def decode_response(body: bytes, op: Optional[int] = None) -> Response:
    """Decode one response body.

    ``op`` is the opcode of the request this response answers (the
    client correlates by ``req_id`` and knows it); without it, an OK
    payload is returned raw in :attr:`Response.payload`.
    """
    try:
        _require(len(body) >= _RESP_PREFIX.size, f"response body of {len(body)} bytes too short")
        req_id, status = _RESP_PREFIX.unpack_from(body)
        _require(status in STATUSES, f"unknown status 0x{status:02x}")
        offset = _RESP_PREFIX.size
        if status != STATUS_OK:
            _require(offset + _U16.size <= len(body), "error message length missing")
            (length,) = _U16.unpack_from(body, offset)
            offset += _U16.size
            _require(offset + length == len(body), "error message length mismatch")
            try:
                message = body[offset:].decode("utf-8")
            except UnicodeDecodeError as error:
                raise ProtocolError(f"error message is not UTF-8: {error}") from error
            return Response(req_id=req_id, status=status, message=message)
        if op in (OP_PUT, OP_PING) or (op is None and offset == len(body)):
            _require(offset == len(body), "unexpected payload on an empty-bodied response")
            return Response(req_id=req_id, status=status)
        if op in (OP_GET, OP_DELETE):
            _require(offset < len(body), "missing presence flag")
            flag = body[offset]
            offset += 1
            _require(flag in (0, 1), f"presence flag {flag} invalid")
            if op == OP_DELETE:
                _require(offset == len(body), "trailing bytes after delete response")
                return Response(req_id=req_id, status=status, removed=bool(flag))
            if not flag:
                _require(offset == len(body), "trailing bytes after miss response")
                return Response(req_id=req_id, status=status, found=False)
            value, offset = decode_value(body, offset)
            _require(offset == len(body), "trailing bytes after get response")
            return Response(req_id=req_id, status=status, found=True, value=value)
        if op == OP_SCAN:
            _require(offset + _U32.size <= len(body), "scan pair count missing")
            (count,) = _U32.unpack_from(body, offset)
            offset += _U32.size
            _require(count <= MAX_SCAN_COUNT, f"scan response declares {count} pairs")
            pairs: List[Tuple[Key, int]] = []
            for _ in range(count):
                key, offset = decode_key(body, offset)
                value, offset = decode_value(body, offset)
                pairs.append((key, value))
            _require(offset == len(body), "trailing bytes after scan response")
            return Response(req_id=req_id, status=status, pairs=pairs)
        # STATS, or an unknown op: a u32-prefixed opaque payload.
        _require(offset + _U32.size <= len(body), "payload length missing")
        (length,) = _U32.unpack_from(body, offset)
        offset += _U32.size
        _require(offset + length == len(body), "payload length mismatch")
        return Response(req_id=req_id, status=status, payload=bytes(body[offset:]))
    except CorruptSerializationError as error:
        raise ProtocolError(str(error)) from error
