"""``python -m repro.net`` — serve a demo tenant directory over TCP.

Starts a :class:`~repro.net.server.NetServer` over a synthetic
:func:`~repro.net.tenancy.demo_directory` and blocks until
interrupted.  Pair it with ``python -m repro.net.loadgen`` from
another shell, or use loadgen's ``--self-serve`` for a one-process
run.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import functools
from typing import Optional, Sequence

from repro.core.budget import TenantQuota
from repro.net.server import NetServer
from repro.net.tenancy import demo_directory


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="Serve a demo tenant directory over the repro.net protocol.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7411)
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--keys", type=int, default=10_000)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=128)
    parser.add_argument("--max-delay", type=float, default=0.001)
    parser.add_argument("--quota-ops", type=float, default=None)
    parser.add_argument("--max-inflight", type=int, default=None)
    return parser


async def _serve(args: argparse.Namespace) -> None:
    quota: Optional[TenantQuota] = None
    if args.quota_ops is not None or args.max_inflight is not None:
        quota = TenantQuota(ops_per_sec=args.quota_ops, max_inflight=args.max_inflight)
    tenants = [f"t{i}" for i in range(args.tenants)]
    # The demo build preloads every tenant's indexes; run it off-loop so
    # the event loop is live from the first accepted connection (RA005).
    directory = await asyncio.get_running_loop().run_in_executor(
        None,
        functools.partial(
            demo_directory,
            tenants,
            keys_per_tenant=args.keys,
            num_shards=args.shards,
            quota=quota,
        ),
    )
    try:
        async with NetServer(
            directory,
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_delay=args.max_delay,
        ) as server:
            print(
                f"serving {len(tenants)} tenants x {args.keys} keys "
                f"on {server.host}:{server.port} (ctrl-c to stop)"
            )
            await asyncio.Event().wait()
    finally:
        directory.close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(_serve(args))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
