"""Async network front end: framing, tenancy, coalescing, admission.

The package turns the PR-2 sharded service into a TCP server.  The
wire format (:mod:`repro.net.protocol`) reuses the WAL's length-prefix
+ CRC framing discipline; the server (:mod:`repro.net.server`)
coalesces concurrently in-flight requests into the shard routers'
batch paths (:mod:`repro.net.coalescer`), maps tenants onto dedicated
shard groups (:mod:`repro.net.tenancy`), and sheds overload through
the :class:`~repro.core.budget.ResourceArbiter` as backpressure
responses.  :mod:`repro.net.loadgen` is the open-loop Zipf load
generator the tail-latency bench drives it with.
"""

from repro.net.client import (
    BackpressureError,
    ConnectionClosedError,
    NetClient,
    NetError,
    RequestError,
)
from repro.net.coalescer import Coalescer
from repro.net.protocol import (
    BACKPRESSURE_STATUSES,
    MAX_FRAME_BYTES,
    OP_DELETE,
    OP_GET,
    OP_PING,
    OP_PUT,
    OP_SCAN,
    OP_STATS,
    STATUS_BAD_REQUEST,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_SERVER_ERROR,
    STATUS_THROTTLED,
    STATUS_UNKNOWN_TENANT,
    ProtocolError,
    Request,
    Response,
    decode_frame,
    decode_request,
    decode_response,
    encode_frame,
    encode_request,
    encode_response,
    read_frame,
)
from repro.net.server import NetServer
from repro.net.tenancy import TenantDirectory, TenantSpec, demo_directory

__all__ = [
    "BACKPRESSURE_STATUSES",
    "BackpressureError",
    "Coalescer",
    "ConnectionClosedError",
    "MAX_FRAME_BYTES",
    "NetClient",
    "NetError",
    "NetServer",
    "OP_DELETE",
    "OP_GET",
    "OP_PING",
    "OP_PUT",
    "OP_SCAN",
    "OP_STATS",
    "ProtocolError",
    "Request",
    "RequestError",
    "Response",
    "STATUS_BAD_REQUEST",
    "STATUS_OK",
    "STATUS_OVERLOADED",
    "STATUS_SERVER_ERROR",
    "STATUS_THROTTLED",
    "STATUS_UNKNOWN_TENANT",
    "TenantDirectory",
    "TenantSpec",
    "decode_frame",
    "decode_request",
    "decode_response",
    "demo_directory",
    "encode_frame",
    "encode_request",
    "encode_response",
    "read_frame",
]
