"""Tenant namespaces mapped onto shard groups.

Each tenant owns a private key namespace served by its own **shard
group** — a dedicated :class:`~repro.service.router.ShardRouter` whose
shard count is part of the tenant's spec, so a hot tenant can be
provisioned four shards while a long-tail tenant gets one.  Isolation
is structural: no composite keys, no cross-tenant collisions, and a
tenant's adaptation managers see exactly that tenant's skew — which is
the paper's premise (adaptation driven by the workload each index
actually observes) carried through to multi-tenant serving.

The directory also owns the service-wide
:class:`~repro.core.budget.ResourceArbiter`: every shard of every
group is registered as a ``<tenant>/shard-<n>`` memory member (one
global :class:`~repro.core.budget.MemoryBudget` carved across all
tenants, key-count proportional), and each tenant's admission quota
(ops/sec bucket + bounded inflight) is installed from its spec.  The
network front end asks the arbiter per request; the directory is where
tenancy and resource policy meet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.budget import MemoryBudget, ResourceArbiter, TenantQuota
from repro.durability.manager import DurabilityManager
from repro.service.router import ShardRouter
from repro.service.shard import Pair


@dataclass(frozen=True)
class TenantSpec:
    """Provisioning for one tenant's shard group."""

    name: str
    num_shards: int = 2
    family: str = "olc"
    partitioning: str = "hash"
    quota: Optional[TenantQuota] = None
    pairs: Sequence[Pair] = field(default_factory=tuple)
    #: >1 provisions every shard as a replica set of divergently
    #: adapting copies (requires the ``"adaptive"`` family).
    replication_factor: int = 1
    replica_profiles: Optional[Sequence[str]] = None

    def __post_init__(self) -> None:
        if not self.name or len(self.name.encode("utf-8")) > 255:
            raise ValueError(f"tenant name {self.name!r} must be 1..255 UTF-8 bytes")
        if self.num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {self.num_shards}")
        if self.replication_factor < 1:
            raise ValueError(
                f"replication_factor must be >= 1, got {self.replication_factor}"
            )


class TenantDirectory:
    """Tenant name -> shard group, plus the shared resource arbiter."""

    def __init__(
        self,
        specs: Sequence[TenantSpec],
        budget: Optional[MemoryBudget] = None,
        default_quota: Optional[TenantQuota] = None,
        max_workers_per_group: int = 2,
        durability_root: Optional[Union[str, Path]] = None,
    ) -> None:
        if not specs:
            raise ValueError("a tenant directory needs at least one tenant")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.arbiter = ResourceArbiter(budget=budget, default_quota=default_quota)
        self._groups: Dict[str, ShardRouter] = {}
        self._specs: Dict[str, TenantSpec] = {}
        for spec in specs:
            durability = None
            if durability_root is not None:
                # One WAL/snapshot tree per tenant: groups recover
                # independently and a tenant's logs never interleave.
                durability = DurabilityManager(Path(durability_root) / spec.name)
            router = ShardRouter.build(
                list(spec.pairs),
                family=spec.family,
                num_shards=spec.num_shards,
                partitioning=spec.partitioning,
                max_workers=max_workers_per_group,
                durability=durability,
                replication_factor=spec.replication_factor,
                replica_profiles=spec.replica_profiles,
            )
            self._groups[spec.name] = router
            self._specs[spec.name] = spec
            self.arbiter.register_tenant(spec.name, spec.quota)
            for position, shard in enumerate(router.table.shards):
                if shard.is_replicated:
                    # Replica budgets are per-profile divergence policy;
                    # the global arbiter must not rebalance over them.
                    continue
                self.arbiter.register_memory_member(
                    spec.name, f"shard-{position}", shard.index
                )
        self.arbiter.rebalance()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def router_for(self, tenant: str) -> ShardRouter:
        """The shard group serving ``tenant`` (KeyError when unknown)."""
        return self._groups[tenant]

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._groups

    def tenants(self) -> List[str]:
        """All tenant names, sorted."""
        return sorted(self._groups)

    @property
    def num_shards(self) -> int:
        """Total shards across every group."""
        return sum(router.num_shards for router in self._groups.values())

    # ------------------------------------------------------------------
    # Lifecycle and introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down every shard group (idempotent)."""
        for router in self._groups.values():
            router.close()

    def __enter__(self) -> "TenantDirectory":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def stats(self) -> Dict[str, Any]:
        """One JSON-safe summary of every tenant's group and quotas."""
        return {
            "tenants": {
                name: {
                    "num_shards": router.num_shards,
                    "num_keys": len(router),
                    "size_bytes": sum(
                        shard.size_bytes() for shard in router.table.shards
                    ),
                    "family": self._specs[name].family,
                }
                for name, router in sorted(self._groups.items())
            },
            "arbiter": self.arbiter.describe(),
        }


def demo_directory(
    tenants: Sequence[str],
    keys_per_tenant: int,
    num_shards: int = 2,
    family: str = "olc",
    quota: Optional[TenantQuota] = None,
    budget: Optional[MemoryBudget] = None,
    durability_root: Optional[Union[str, Path]] = None,
    replication_factor: int = 1,
    replica_profiles: Optional[Sequence[str]] = None,
) -> TenantDirectory:
    """A synthetic directory: each tenant preloaded with even int keys.

    Keys are ``0, 2, 4, ...`` so loadgen misses (odd keys) and hits
    (even keys) are both reachable; values are ``key + 1``.  Used by
    the bench, the loadgen's ``--self-serve`` mode, and the tests.
    With ``durability_root``, every tenant group writes a per-shard WAL
    under it (the traced e2e chain exercises this path).
    """
    specs = [
        TenantSpec(
            name=name,
            num_shards=num_shards,
            family=family,
            quota=quota,
            pairs=[(key * 2, key * 2 + 1) for key in range(keys_per_tenant)],
            replication_factor=replication_factor,
            replica_profiles=replica_profiles,
        )
        for name in tenants
    ]
    return TenantDirectory(specs, budget=budget, durability_root=durability_root)
