"""Server-side request coalescing into the batch paths.

Concurrently in-flight GET/PUT requests for the same tenant are merged
into one :meth:`ShardRouter.get_many` / :meth:`ShardRouter.put_many`
call — the PR-2 batch paths were built for exactly this.  The window
is bounded two ways:

* **max_batch** — a queue that reaches this size flushes immediately;
* **max_delay** — the first request into an empty queue arms a timer;
  whatever has accumulated when it fires is flushed.

So an isolated request pays at most ``max_delay`` of added latency,
and a busy server pays (amortized) one thread-pool dispatch per
*batch* instead of per request — which is where the tail-latency win
in ``BENCH_PR7.json`` comes from.  With ``max_batch <= 1`` or
``max_delay <= 0`` the coalescer degrades to per-request dispatch
(the bench's baseline mode).

The router's batch calls are synchronous (they fan out on their own
thread pool), so flushes run in an executor via
``loop.run_in_executor`` — the event loop never blocks on index work.
Each queued request holds an :class:`asyncio.Future`; a failed flush
fails every future in the batch, never silently drops one.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import SIZE_BUCKETS
from repro.obs.runtime import active_registry, active_tracer
from repro.obs.tracing import Span, Tracer
from repro.service.router import ShardRouter
from repro.service.shard import Pair
from repro.service.partition import Key

#: RA004: literal instrument names for the coalescing path.
_COUNTERS = {
    "batches": "net.coalesce.batches",
    "requests": "net.coalesce.requests",
    "timer_flushes": "net.coalesce.timer_flushes",
    "size_flushes": "net.coalesce.size_flushes",
}
_BATCH_SIZE_HISTOGRAM = "net.coalesce.batch_size"
#: RA004: span-name literal for one flushed batch.
_BATCH_SPAN = "net.coalesce.batch"

_GET = "get"
_PUT = "put"

#: One queued request: payload, its future, and (when the request is part
#: of a sampled distributed trace) the server span to link/nest under.
_Entry = Tuple[Any, "asyncio.Future[Any]", Optional[Span]]


def _adopting(
    tracer: Tracer, span: Span, call: Callable[[], Any]
) -> Callable[[], Any]:
    """Wrap ``call`` so it runs with ``span`` adopted on its thread."""

    def run() -> Any:
        with tracer.adopt(span):
            return call()

    return run


class _Queue:
    """Pending entries for one (tenant, kind) batch window."""

    __slots__ = ("kind", "entries", "timer")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.entries: List[_Entry] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class Coalescer:
    """Merges in-flight requests into per-tenant router batches."""

    def __init__(
        self,
        max_batch: int = 128,
        max_delay: float = 0.001,
        executor: Optional[ThreadPoolExecutor] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._executor = executor
        self._owns_executor = executor is None
        self._queues: Dict[Tuple[int, str], _Queue] = {}
        self._routers: Dict[int, ShardRouter] = {}
        self.batches_flushed = 0
        self.requests_coalesced = 0

    @property
    def enabled(self) -> bool:
        """False when configured down to per-request dispatch."""
        return self.max_batch > 1 and self.max_delay > 0

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=4, thread_name_prefix="repro-net"
            )
        return self._executor

    def close(self) -> None:
        """Flush nothing further; shut the owned executor down."""
        for queue in self._queues.values():
            if queue.timer is not None:
                queue.timer.cancel()
                queue.timer = None
        self._queues.clear()
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    # ------------------------------------------------------------------
    # Enqueue (event-loop side)
    # ------------------------------------------------------------------
    def get(
        self, router: ShardRouter, key: Key, span: Optional[Span] = None
    ) -> "asyncio.Future[Any]":
        """Queue one GET against ``router``; resolves to the value/None."""
        return self._enqueue(router, _GET, key, span)

    def put(
        self, router: ShardRouter, pair: Pair, span: Optional[Span] = None
    ) -> "asyncio.Future[Any]":
        """Queue one PUT against ``router``; resolves to None on ack."""
        return self._enqueue(router, _PUT, pair, span)

    def run_single(
        self, call: Callable[[], Any], span: Optional[Span] = None
    ) -> "asyncio.Future[Any]":
        """Dispatch one uncoalesced call (scan/delete/stats) off-loop.

        When the request carries a sampled trace, ``span`` (the server
        span) is adopted on the executor thread so the router/shard/index
        spans the call emits nest under it.
        """
        loop = asyncio.get_running_loop()
        tracer = active_tracer()
        task = call
        if span is not None and tracer is not None:
            task = _adopting(tracer, span, call)
        return asyncio.ensure_future(loop.run_in_executor(self._pool(), task))

    def _enqueue(
        self,
        router: ShardRouter,
        kind: str,
        payload: Any,
        span: Optional[Span] = None,
    ) -> "asyncio.Future[Any]":
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        if not self.enabled:
            # Per-request mode: one executor dispatch per request.
            self._routers[id(router)] = router
            self._flush_entries(router, kind, [(payload, future, span)], timer=False)
            return future
        slot = (id(router), kind)
        self._routers[id(router)] = router
        queue = self._queues.get(slot)
        if queue is None:
            queue = self._queues[slot] = _Queue(kind)
        queue.entries.append((payload, future, span))
        if len(queue.entries) >= self.max_batch:
            self._flush_queue(router, queue, timer=False)
        elif queue.timer is None:
            queue.timer = loop.call_later(
                self.max_delay, self._flush_queue, router, queue, True
            )
        return future

    # ------------------------------------------------------------------
    # Flush (event-loop side -> executor)
    # ------------------------------------------------------------------
    def _flush_queue(self, router: ShardRouter, queue: _Queue, timer: bool) -> None:
        if queue.timer is not None:
            queue.timer.cancel()
            queue.timer = None
        entries, queue.entries = queue.entries, []
        if entries:
            self._flush_entries(router, queue.kind, entries, timer=timer)

    def _flush_entries(
        self,
        router: ShardRouter,
        kind: str,
        entries: List[_Entry],
        timer: bool,
    ) -> None:
        loop = asyncio.get_running_loop()
        self.batches_flushed += 1
        self.requests_coalesced += len(entries)
        registry = active_registry()
        if registry is not None:
            registry.counter(_COUNTERS["batches"]).inc()
            registry.counter(_COUNTERS["requests"]).inc(len(entries))
            if timer:
                registry.counter(_COUNTERS["timer_flushes"]).inc()
            else:
                registry.counter(_COUNTERS["size_flushes"]).inc()
            registry.histogram(_BATCH_SIZE_HISTOGRAM, SIZE_BUCKETS).record(len(entries))
        payloads = [payload for payload, _, _ in entries]

        # One batch span per flush, parented under the *first* traced
        # request's server span; the other coalesced requests are linked
        # by span id so the stitch tool can attribute the shared work to
        # every trace that rode the batch.
        tracer = active_tracer()
        batch_span: Optional[Span] = None
        if tracer is not None:
            spans = [span for _, _, span in entries if span is not None]
            if spans:
                batch_span = tracer.start_child(
                    _BATCH_SPAN,
                    spans[0],
                    kind=kind,
                    size=len(entries),
                    timer_flush=timer,
                )
                if len(spans) > 1:
                    batch_span.set(
                        link_span_ids=[s.span_id for s in spans[1:]],
                        link_trace_ids=[s.trace_id for s in spans[1:]],
                    )
        started = loop.time()

        def call() -> Any:
            if batch_span is not None and tracer is not None:
                with tracer.adopt(batch_span):
                    if kind == _GET:
                        return router.get_many(payloads)
                    return router.put_many(payloads)
            if kind == _GET:
                return router.get_many(payloads)
            return router.put_many(payloads)

        dispatch = loop.run_in_executor(self._pool(), call)
        dispatch.add_done_callback(
            lambda done: self._resolve(kind, entries, done, batch_span, started)
        )

    def _resolve(
        self,
        kind: str,
        entries: List[_Entry],
        done: "asyncio.Future[Any]",
        batch_span: Optional[Span],
        started: float,
    ) -> None:
        if batch_span is not None:
            tracer = active_tracer()
            if tracer is not None:
                elapsed = asyncio.get_running_loop().time() - started
                tracer.finish(batch_span, elapsed_s=elapsed)
        error = done.exception() if not done.cancelled() else None
        if done.cancelled() or error is not None:
            for _, future, _ in entries:
                if not future.done():
                    if error is not None:
                        future.set_exception(error)
                    else:
                        future.cancel()
            return
        if kind == _GET:
            values = done.result()
            for (_, future, _), value in zip(entries, values):
                if not future.done():
                    future.set_result(value)
        else:
            for _, future, _ in entries:
                if not future.done():
                    future.set_result(None)
