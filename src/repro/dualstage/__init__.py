"""The Dual-Stage hybrid index baseline (Zhang et al., SIGMOD 2016).

The comparison target of Figure 17: a *dynamic stage* (a regular Gapped
B+-tree) absorbs all writes, a compact read-only *static stage* holds the
bulk of the data, and a Bloom filter over the dynamic stage lets reads of
merged keys skip the first probe.  A background-style merge folds the
dynamic stage into the static one whenever it exceeds a size ratio.
"""

from repro.dualstage.index import CompactSortedArray, DualStageIndex, StaticEncoding

__all__ = ["CompactSortedArray", "DualStageIndex", "StaticEncoding"]
