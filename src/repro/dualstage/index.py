"""Dual-Stage hybrid index: dynamic B+-tree + compact static stage.

The static stage is a :class:`CompactSortedArray`: all merged pairs in
one sorted run, physically laid out either *packed* (plain dense arrays)
or *succinct* (frame-of-reference blocks, mirroring Compact-X of the
original paper).  Lookups binary-search a block directory and then the
block.  The structure is immutable; inserts land in the dynamic stage and
periodic merges rebuild the run — the "expensive merge process" the
Adaptive-Hybrid-Indexes paper contrasts itself against.
"""

from __future__ import annotations

import bisect
import enum
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.core.bloom import BloomFilter
from repro.faults.injector import fault_point
from repro.obs.metrics import SIZE_BUCKETS
from repro.obs.runtime import active_registry, active_tracer
from repro.sim.counters import OpCounters
from repro.succinct.for_codec import ForBlock, for_encode

_BLOCK_SIZE = 256

#: Precomputed ``leaf_probe:<stage>`` span names (RA004: telemetry
#: names are literal tables, never formatted on the hot path).
_PROBE_EVENTS = {
    "static": "leaf_probe:static",
    "dynamic": "leaf_probe:dynamic",
    "tombstone": "leaf_probe:tombstone",
}
_HEADER_BYTES = 16
_SLOT_BYTES = 16


class StaticEncoding(enum.Enum):
    """Physical layout of the static stage."""

    PACKED = "packed"
    SUCCINCT = "succinct"


class CompactSortedArray:
    """An immutable sorted run with a block directory."""

    def __init__(
        self,
        pairs: Sequence[Tuple[int, int]],
        encoding: StaticEncoding = StaticEncoding.SUCCINCT,
        counters: Optional[OpCounters] = None,
    ) -> None:
        self.counters = counters if counters is not None else OpCounters()
        keys = [key for key, _ in pairs]
        if any(a >= b for a, b in zip(keys, keys[1:])):
            raise ValueError("static stage requires strictly sorted unique keys")
        self.encoding = encoding
        self._num_entries = len(pairs)
        self._block_mins: List[int] = []
        if encoding is StaticEncoding.PACKED:
            self._keys = keys
            self._values = [value for _, value in pairs]
            self._blocks: List[ForBlock] = []
            self._value_blocks: List[ForBlock] = []
        else:
            self._keys = []
            self._values = []
            self._blocks = []
            self._value_blocks = []
            for start in range(0, len(pairs), _BLOCK_SIZE):
                chunk = pairs[start : start + _BLOCK_SIZE]
                self._blocks.append(for_encode([key for key, _ in chunk]))
                self._value_blocks.append(for_encode([value for _, value in chunk]))
                self._block_mins.append(chunk[0][0])

    def __len__(self) -> int:
        return self._num_entries

    def lookup(self, key: int) -> Optional[int]:
        """Return the value stored under ``key``, or None."""
        if self._num_entries == 0:
            return None
        if self.encoding is StaticEncoding.PACKED:
            index = bisect.bisect_left(self._keys, key)
            if index < len(self._keys) and self._keys[index] == key:
                return self._values[index]
            return None
        block_index = bisect.bisect_right(self._block_mins, key) - 1
        if block_index < 0:
            return None
        block = self._blocks[block_index]
        lo, hi = 0, len(block)
        while lo < hi:
            mid = (lo + hi) // 2
            if block[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(block) and block[lo] == key:
            return self._value_blocks[block_index][lo]
        return None

    def lookup_many(self, keys: Sequence[int]) -> List[Optional[int]]:
        """Batched lookups; one value (or None) per key.

        Equivalent to per-key :meth:`lookup` calls but hoists the
        directory/array references out of the loop; succinct runs reuse
        the previously located block while consecutive keys stay inside
        it (the common case for sorted probe batches).
        """
        if self._num_entries == 0:
            return [None for _ in keys]
        results: List[Optional[int]] = []
        if self.encoding is StaticEncoding.PACKED:
            packed_keys = self._keys
            packed_values = self._values
            limit = len(packed_keys)
            for key in keys:
                index = bisect.bisect_left(packed_keys, key)
                if index < limit and packed_keys[index] == key:
                    results.append(packed_values[index])
                else:
                    results.append(None)
            return results
        append = results.append
        mins = self._block_mins
        blocks = self._blocks
        value_blocks = self._value_blocks
        cached_index = -1
        cached_keys: List[int] = []
        cached_values: Optional[List[int]] = None
        for key in keys:
            block_index = bisect.bisect_right(mins, key) - 1
            if block_index < 0:
                append(None)
                continue
            if block_index != cached_index:
                # One bulk decode per touched block; probe batches that
                # stay inside a block then bisect a plain list instead of
                # paying packed-array probes per binary-search step.
                cached_index = block_index
                cached_keys = blocks[block_index].to_list()
                cached_values = None
            position = bisect.bisect_left(cached_keys, key)
            if position < len(cached_keys) and cached_keys[position] == key:
                if cached_values is None:
                    cached_values = value_blocks[block_index].to_list()
                append(cached_values[position])
            else:
                append(None)
        return results

    def items(self) -> Iterator[Tuple[int, int]]:
        """Yield all ``(key, value)`` pairs in key order."""
        if self.encoding is StaticEncoding.PACKED:
            yield from zip(self._keys, self._values)
            return
        for block, values in zip(self._blocks, self._value_blocks):
            yield from zip(block.to_list(), values.to_list())

    def items_from(self, start_key: int) -> Iterator[Tuple[int, int]]:
        """Pairs with key >= start_key, starting at the right block."""
        if self._num_entries == 0:
            return
        if self.encoding is StaticEncoding.PACKED:
            index = bisect.bisect_left(self._keys, start_key)
            for position in range(index, len(self._keys)):
                self.counters.add("static_scan_item")
                yield self._keys[position], self._values[position]
            return
        block_index = max(0, bisect.bisect_right(self._block_mins, start_key) - 1)
        for current in range(block_index, len(self._blocks)):
            keys = self._blocks[current].to_list()
            values = self._value_blocks[current].to_list()
            for key, value in zip(keys, values):
                if key >= start_key:
                    self.counters.add("static_scan_item")
                    yield key, value

    def size_bytes(self) -> int:
        """Return the modeled C++ footprint in bytes."""
        if self.encoding is StaticEncoding.PACKED:
            return _HEADER_BYTES + self._num_entries * _SLOT_BYTES
        total = _HEADER_BYTES + 8 * len(self._block_mins)
        total += sum(block.size_bytes() for block in self._blocks)
        total += sum(block.size_bytes() for block in self._value_blocks)
        return total


class DualStageIndex:
    """Dynamic stage + static stage + Bloom filter, with ratio merges."""

    stats_family = "dualstage"

    def __init__(
        self,
        static_encoding: StaticEncoding = StaticEncoding.SUCCINCT,
        merge_ratio: float = 0.05,
        bloom_bits_per_key: int = 10,
    ) -> None:
        if not 0 < merge_ratio < 1:
            raise ValueError(f"merge ratio must be in (0, 1), got {merge_ratio}")
        self.static_encoding = static_encoding
        self.merge_ratio = merge_ratio
        self.bloom_bits_per_key = bloom_bits_per_key
        self.counters = OpCounters()
        self._dynamic = BPlusTree(LeafEncoding.GAPPED)
        self._dynamic.counters = self.counters  # one event stream
        self._static = CompactSortedArray([], static_encoding, self.counters)
        self._bloom = BloomFilter(capacity=1024, bits_per_item=bloom_bits_per_key)
        self._tombstones: set = set()
        self.merges = 0

    @classmethod
    def bulk_load(
        cls,
        pairs: Sequence[Tuple[int, int]],
        static_encoding: StaticEncoding = StaticEncoding.SUCCINCT,
        merge_ratio: float = 0.05,
    ) -> "DualStageIndex":
        """Load sorted pairs directly into the static stage."""
        index = cls(static_encoding, merge_ratio)
        index._static = CompactSortedArray(list(pairs), static_encoding, index.counters)
        return index

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def lookup(self, key: int) -> Optional[int]:
        """Return the value stored under ``key``, or None."""
        tracer = active_tracer()
        if tracer is not None:
            return self._traced_lookup(tracer, key)
        self.counters.add("bloom_probe")
        if key in self._bloom:
            self.counters.add("dynamic_stage_probe")
            value = self._dynamic.lookup(key)
            if value is not None:
                return value
            if key in self._tombstones:
                return None
        self.counters.add("static_stage_probe")
        return self._static.lookup(key)

    def _traced_lookup(self, tracer, key: int) -> Optional[int]:
        """:meth:`lookup` under an installed tracer (identical result)."""
        span = tracer.op_start("lookup", family=self.stats_family)
        self.counters.add("bloom_probe")
        bloom_hit = key in self._bloom
        value: Optional[int] = None
        stage = "static"
        if bloom_hit:
            self.counters.add("dynamic_stage_probe")
            value = self._dynamic.lookup(key)
            if value is not None:
                stage = "dynamic"
            elif key in self._tombstones:
                stage = "tombstone"
        if value is None and stage == "static":
            self.counters.add("static_stage_probe")
            value = self._static.lookup(key)
        if span is not None:
            tracer.event("descent", bloom_hit=bloom_hit)
            tracer.event(_PROBE_EVENTS[stage], hit=value is not None)
            tracer.end(span)
        return value

    def lookup_many(self, keys: Sequence[int]) -> List[Optional[int]]:
        """Batched lookups; one value (or None) per key.

        One ``contains_many`` drains the Bloom filter for the whole
        batch, Bloom-positive keys probe the dynamic stage in one
        ``lookup_many``, and only the keys neither stage resolved reach
        the static run (again as one batch).  Per-key results and the
        per-stage probe counters are identical to looping
        :meth:`lookup`.
        """
        keys = list(keys)
        if not keys:
            return []
        self.counters.add("bloom_probe", len(keys))
        hits = self._bloom.contains_many(keys)
        results: List[Optional[int]] = [None] * len(keys)
        dynamic_positions = [i for i, hit in enumerate(hits) if hit]
        static_positions = [i for i, hit in enumerate(hits) if not hit]
        if dynamic_positions:
            self.counters.add("dynamic_stage_probe", len(dynamic_positions))
            found = self._dynamic.lookup_many([keys[i] for i in dynamic_positions])
            for position, value in zip(dynamic_positions, found):
                if value is not None:
                    results[position] = value
                elif keys[position] not in self._tombstones:
                    static_positions.append(position)
        if static_positions:
            static_positions.sort()
            self.counters.add("static_stage_probe", len(static_positions))
            found = self._static.lookup_many([keys[i] for i in static_positions])
            for position, value in zip(static_positions, found):
                results[position] = value
        return results

    def insert(self, key: int, value: int) -> None:
        """Insert ``key``; returns False when the key already existed."""
        self._dynamic.insert(key, value)
        self._bloom.add(key)
        self._tombstones.discard(key)
        if self._should_merge():
            self.merge()

    def insert_many(self, pairs: Sequence[Tuple[int, int]]) -> None:
        """Batched inserts.

        The dynamic stage takes the whole batch through its own
        ``insert_many`` (one descent per leaf run for sorted batches)
        and the Bloom filter is populated in one ``add_many``.  The
        merge-ratio check runs once after the batch instead of after
        every key, so a merge can trigger slightly later than under
        per-key inserts — the final contents are identical either way.
        """
        pairs = list(pairs)
        if not pairs:
            return
        self._dynamic.insert_many(pairs)
        keys = [key for key, _ in pairs]
        self._bloom.add_many(keys)
        self._tombstones.difference_update(keys)
        if self._should_merge():
            self.merge()

    def update(self, key: int, value: int) -> bool:
        """Overwrite the value of an existing ``key``; False if absent."""
        if self.lookup(key) is None:
            return False
        self.insert(key, value)  # newest version shadows the static stage
        return True

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False when it was absent."""
        existed = self.lookup(key) is not None
        if not existed:
            return False
        self._dynamic.delete(key)
        self._tombstones.add(key)
        self._bloom.add(key)  # tombstones must be found before the static stage
        return True

    def scan(self, start_key: int, count: int) -> List[Tuple[int, int]]:
        """Merge-scan both stages in key order."""
        if count <= 0:
            return []
        result: List[Tuple[int, int]] = []
        dynamic_iter = iter(self._dynamic.scan(start_key, count + len(self._tombstones)))
        static_iter = self._static.items_from(start_key)
        dynamic_pair = next(dynamic_iter, None)
        static_pair = next(static_iter, None)
        while len(result) < count and (dynamic_pair or static_pair):
            if static_pair is None or (
                dynamic_pair is not None and dynamic_pair[0] <= static_pair[0]
            ):
                if static_pair is not None and dynamic_pair[0] == static_pair[0]:
                    static_pair = next(static_iter, None)  # shadowed version
                result.append(dynamic_pair)
                dynamic_pair = next(dynamic_iter, None)
            else:
                key = static_pair[0]
                if key not in self._tombstones:
                    result.append(static_pair)
                static_pair = next(static_iter, None)
        return result

    def scan_many(
        self, requests: Sequence[Tuple[int, int]]
    ) -> List[List[Tuple[int, int]]]:
        """Batched range scans; one result list per (start_key, count)."""
        return [self.scan(start, count) for start, count in requests]

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def _should_merge(self) -> bool:
        total = len(self._dynamic) + len(self._static)
        if total == 0:
            return False
        return len(self._dynamic) / total > self.merge_ratio

    def merge(self) -> None:
        """Fold the dynamic stage into the static one (full rebuild).

        Transactional: the replacement static run, dynamic tree, and
        Bloom filter are all built off to the side and installed in an
        exception-free swap, so a failure anywhere in the (expensive)
        rebuild — including an injected fault — leaves both stages
        serving the pre-merge state; the next insert simply retries.

        Merges are phase-level events (not per-op), so the span is
        always emitted under an installed tracer and the merge size is
        published into an installed metrics registry.
        """
        tracer = active_tracer()
        span = None
        if tracer is not None:
            span = tracer.start(
                "merge",
                dynamic_entries=len(self._dynamic),
                static_entries=len(self._static),
            )
        try:
            self._merge_impl()
        except BaseException:
            if span is not None:
                tracer.end(span, outcome="failed")
            raise
        if span is not None:
            tracer.end(span, outcome="merged", merged_entries=len(self._static))
        registry = active_registry()
        if registry is not None:
            registry.counter("dualstage.merges").inc()
            registry.histogram("dualstage.merge_entries", SIZE_BUCKETS).record(
                len(self._static)
            )

    def _merge_impl(self) -> None:
        fault_point("dualstage.merge.collect")
        merged: List[Tuple[int, int]] = []
        dynamic_items = list(self._dynamic.items())
        static_items = self._static.items()
        self.counters.add("merge_entry", len(dynamic_items) + len(self._static))
        dynamic_index = 0
        for key, value in static_items:
            while dynamic_index < len(dynamic_items) and dynamic_items[dynamic_index][0] < key:
                merged.append(dynamic_items[dynamic_index])
                dynamic_index += 1
            if dynamic_index < len(dynamic_items) and dynamic_items[dynamic_index][0] == key:
                merged.append(dynamic_items[dynamic_index])  # newer version wins
                dynamic_index += 1
                continue
            if key not in self._tombstones:
                merged.append((key, value))
        merged.extend(dynamic_items[dynamic_index:])
        fault_point("dualstage.merge.build")
        new_static = CompactSortedArray(merged, self.static_encoding, self.counters)
        new_dynamic = BPlusTree(LeafEncoding.GAPPED)
        new_dynamic.counters = self.counters
        new_bloom = BloomFilter(
            capacity=max(1024, len(merged) // 16),
            bits_per_item=self.bloom_bits_per_key,
        )
        fault_point("dualstage.merge.swap")
        self._static = new_static
        self._dynamic = new_dynamic
        self._bloom = new_bloom
        self._tombstones = set()
        self.merges += 1

    # ------------------------------------------------------------------
    # Self-verification
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Prove structural integrity; raises
        :class:`~repro.core.invariants.InvariantViolation` when the
        static run, the block directory, the tombstone discipline, or
        the dynamic stage is inconsistent."""
        from repro.core.invariants import validate

        validate(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        seen_in_dynamic = sum(
            1 for key, _ in self._dynamic.items() if self._static.lookup(key) is not None
        )
        return len(self._dynamic) + len(self._static) - seen_in_dynamic

    @property
    def dynamic_size(self) -> int:
        """Number of keys in the dynamic stage."""
        return len(self._dynamic)

    @property
    def static_size(self) -> int:
        """Number of keys in the static stage."""
        return len(self._static)

    def size_bytes(self) -> int:
        """Return the modeled C++ footprint in bytes."""
        bloom_bytes = self._bloom.size_bytes()
        return self._dynamic.size_bytes() + self._static.size_bytes() + bloom_bytes

    def encoding_census(self) -> dict:
        """Stage -> (count, avg bytes): dynamic leaves plus the static run."""
        census = {
            f"dynamic:{encoding}": entry
            for encoding, entry in self._dynamic.leaf_encoding_census().items()
        }
        census[f"static:{self.static_encoding.value}"] = (
            1,
            float(self._static.size_bytes()),
        )
        return census

    def stats(self) -> dict:
        """Uniform JSON-safe stats dict (see :mod:`repro.obs.introspect`)."""
        from repro.obs.introspect import base_stats

        stats = base_stats(
            self.stats_family,
            num_keys=len(self),
            size_bytes=self.size_bytes(),
            census=self.encoding_census(),
            counters_snapshot=self.counters.snapshot(),
        )
        stats["merges"] = self.merges
        stats["dynamic_size"] = self.dynamic_size
        stats["static_size"] = self.static_size
        stats["tombstones"] = len(self._tombstones)
        stats["bloom_saturation"] = round(self._bloom.saturation(), 4)
        return stats

    def describe(self) -> str:
        """Human-readable rendering of :meth:`stats`."""
        from repro.obs.introspect import format_stats

        return format_stats(self.stats())
