"""Trie construction from sorted keys, in LOUDS (BFS) order.

The FST encodings consume trie nodes strictly in breadth-first order —
that order *is* the node numbering the rank/select navigation relies on.
:func:`build_trie_levels` turns sorted unique byte-string keys into
per-level node specs; each spec lists the node's labels in ascending
order and, per label, whether it has a child or terminates a key.

Keys must be prefix-free (no key a strict prefix of another); append a
terminator byte to variable-length keys (``repro.art.tree.terminated``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass
class TrieNodeSpec:
    """One trie node: parallel lists in ascending label order."""

    level: int
    labels: List[int] = field(default_factory=list)
    has_child: List[bool] = field(default_factory=list)
    values: List[Optional[int]] = field(default_factory=list)

    def fanout(self) -> int:
        """Number of labels stored in this node."""
        return len(self.labels)


@dataclass
class TrieLevels:
    """All trie nodes, grouped by level, BFS order within each level."""

    levels: List[List[TrieNodeSpec]]
    num_keys: int

    @property
    def height(self) -> int:
        """The tree height (leaves included)."""
        return len(self.levels)

    def nodes_in_bfs_order(self):
        """Yield node specs in BFS (numbering) order."""
        for level_nodes in self.levels:
            yield from level_nodes

    def node_count(self) -> int:
        """Total number of trie nodes."""
        return sum(len(level_nodes) for level_nodes in self.levels)

    def level_node_counts(self) -> List[int]:
        """Nodes per level, top-down."""
        return [len(level_nodes) for level_nodes in self.levels]

    def average_fanout(self, level: int) -> float:
        """Mean labels per node on ``level``."""
        nodes = self.levels[level]
        if not nodes:
            return 0.0
        return sum(node.fanout() for node in nodes) / len(nodes)


def build_trie_levels(pairs: Sequence[Tuple[bytes, int]]) -> TrieLevels:
    """Build BFS-ordered trie levels from sorted unique (key, value) pairs."""
    keys = [key for key, _ in pairs]
    values = [value for _, value in pairs]
    for a, b in zip(keys, keys[1:]):
        if a >= b:
            raise ValueError("keys must be strictly sorted and unique")
    if not keys:
        return TrieLevels(levels=[], num_keys=0)

    levels: List[List[TrieNodeSpec]] = []
    # BFS frontier: each entry is a key range [lo, hi) whose keys share the
    # first ``depth`` bytes and together form one node at that depth.
    frontier: List[Tuple[int, int]] = [(0, len(keys))]
    depth = 0
    while frontier:
        level_nodes: List[TrieNodeSpec] = []
        next_frontier: List[Tuple[int, int]] = []
        for lo, hi in frontier:
            node = TrieNodeSpec(level=depth)
            index = lo
            while index < hi:
                key = keys[index]
                if len(key) <= depth:
                    raise ValueError(
                        f"key {key!r} is a prefix of another key; "
                        "terminate variable-length keys first"
                    )
                label = key[depth]
                # Find the end of this label group.
                end = index + 1
                while end < hi and len(keys[end]) > depth and keys[end][depth] == label:
                    end += 1
                group_terminal = len(key) == depth + 1
                if group_terminal:
                    if end - index > 1:
                        raise ValueError(
                            f"key {key!r} is a prefix of another key; "
                            "terminate variable-length keys first"
                        )
                    node.labels.append(label)
                    node.has_child.append(False)
                    node.values.append(values[index])
                else:
                    node.labels.append(label)
                    node.has_child.append(True)
                    node.values.append(None)
                    next_frontier.append((index, end))
                index = end
            level_nodes.append(node)
        levels.append(level_nodes)
        frontier = next_frontier
        depth += 1
    return TrieLevels(levels=levels, num_keys=len(keys))
