"""The Fast Succinct Trie: LOUDS-dense upper levels, LOUDS-sparse rest.

Node numbering is breadth-first: the j-th has-child bit (1-indexed,
across the dense bitmaps followed by the sparse arrays, both of which are
laid out in BFS order) points to node j — the classic LOUDS invariant,
with node 0 the root.  Dense nodes are exactly the nodes numbered
``0 .. D-1`` because the dense/sparse split is by level.

Per node, the dense encoding stores a 256-bit label bitmap and a 256-bit
has-child bitmap; the sparse encoding stores explicit label bytes, one
has-child bit per label, and one LOUDS bit marking each node's first
label.  Values live in one array indexed by the rank of terminal labels
(dense terminals first, then sparse), so a value lookup is two rank
queries.

Traversal work is counted as ``fst_dense_visit`` / ``fst_sparse_visit``
events for the cost model (the paper's Table 2: sparse nodes need an
explicit in-node search and are markedly slower).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.fst.builder import TrieLevels, build_trie_levels
from repro.obs.runtime import active_tracer
from repro.sim.counters import OpCounters
from repro.succinct.bitvector import BitVector

# Footnote 1 of the paper: the sparse encoding is smaller than the dense
# one when a node stores fewer than 256/8 = 32 labels on average.
DENSE_FANOUT_THRESHOLD = 32.0

#: Precomputed ``leaf_probe:<region>`` span names (RA004: telemetry
#: names are literal tables, never formatted on the hot path).
_PROBE_EVENTS = {"sparse": "leaf_probe:sparse", "dense": "leaf_probe:dense"}


def choose_dense_cutoff(levels: TrieLevels, threshold: float = DENSE_FANOUT_THRESHOLD) -> int:
    """Default dense/sparse split: keep a level dense while its average
    fanout makes the dense encoding the smaller one (paper footnote 1)."""
    cutoff = 0
    for level in range(levels.height):
        if levels.average_fanout(level) >= threshold:
            cutoff = level + 1
        else:
            break
    return cutoff


class FST:
    """A static succinct trie over prefix-free byte-string keys."""

    stats_family = "fst"

    def __init__(
        self,
        pairs: Sequence[Tuple[bytes, int]],
        dense_levels: Optional[int] = None,
        counters: Optional[OpCounters] = None,
    ) -> None:
        self.counters = counters if counters is not None else OpCounters()
        levels = build_trie_levels(pairs)
        if dense_levels is None:
            dense_levels = choose_dense_cutoff(levels)
        self.dense_levels = max(0, min(dense_levels, levels.height))
        self._num_keys = levels.num_keys
        self._height = levels.height
        self._build(levels)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, levels: TrieLevels) -> None:
        dense_labels = BitVector()
        dense_haschild = BitVector()
        sparse_labels: List[int] = []
        sparse_haschild = BitVector()
        sparse_louds = BitVector()
        dense_values: List[int] = []
        sparse_values: List[int] = []
        dense_node_count = 0
        self._level_first_node: List[int] = []
        node_number = 0
        for level_index, level_nodes in enumerate(levels.levels):
            self._level_first_node.append(node_number)
            for node in level_nodes:
                if level_index < self.dense_levels:
                    # Build the 256-bit bitmaps directly as ints and append
                    # them through the bulk word path — no per-bit work.
                    bitmap_labels = 0
                    bitmap_haschild = 0
                    for label, has_child, value in zip(
                        node.labels, node.has_child, node.values
                    ):
                        bitmap_labels |= 1 << label
                        if has_child:
                            bitmap_haschild |= 1 << label
                        else:
                            dense_values.append(value)
                    dense_labels.extend_from_word(bitmap_labels, 256)
                    dense_haschild.extend_from_word(bitmap_haschild, 256)
                    dense_node_count += 1
                else:
                    for position, (label, has_child, value) in enumerate(
                        zip(node.labels, node.has_child, node.values)
                    ):
                        sparse_labels.append(label)
                        sparse_haschild.append(1 if has_child else 0)
                        sparse_louds.append(1 if position == 0 else 0)
                        if not has_child:
                            sparse_values.append(value)
                node_number += 1
        self._dense_labels = dense_labels.seal()
        self._dense_haschild = dense_haschild.seal()
        self._sparse_labels = sparse_labels
        self._sparse_haschild = sparse_haschild.seal()
        self._sparse_louds = sparse_louds.seal()
        self._values = dense_values + sparse_values
        self._num_dense_nodes = dense_node_count
        self._dense_hc_total = self._dense_haschild.ones if len(self._dense_haschild) else 0
        self._dense_terminal_total = (
            (self._dense_labels.ones - self._dense_haschild.ones)
            if len(self._dense_labels)
            else 0
        )
        self._num_nodes = node_number

    # ------------------------------------------------------------------
    # Navigation primitives
    # ------------------------------------------------------------------
    @property
    def num_keys(self) -> int:
        """Number of indexed keys."""
        return self._num_keys

    @property
    def num_nodes(self) -> int:
        """Total number of trie nodes."""
        return self._num_nodes

    @property
    def num_dense_nodes(self) -> int:
        """Number of LOUDS-dense nodes."""
        return self._num_dense_nodes

    @property
    def height(self) -> int:
        """The tree height (leaves included)."""
        return self._height

    def is_dense_node(self, node: int) -> bool:
        """True when ``node`` lives in the dense region."""
        return node < self._num_dense_nodes

    def level_of_node(self, node: int) -> int:
        """The level a node lives on (binary search over level offsets)."""
        lo, hi = 0, len(self._level_first_node) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._level_first_node[mid] <= node:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _dense_step(self, node: int, label: int):
        """(child_node, value, found): exactly one of child/value set."""
        position = node * 256 + label
        if not self._dense_labels[position]:
            return None, None, False
        if self._dense_haschild[position]:
            child = self._dense_haschild.rank1(position + 1)
            return child, None, True
        value_index = (
            self._dense_labels.rank1(position + 1)
            - self._dense_haschild.rank1(position + 1)
            - 1
        )
        return None, self._values[value_index], True

    def _sparse_range(self, node: int) -> Tuple[int, int]:
        """Label positions [start, end) of a sparse node."""
        sparse_index = node - self._num_dense_nodes
        start = self._sparse_louds.select1(sparse_index + 1)
        if sparse_index + 1 < self._sparse_louds.ones:
            end = self._sparse_louds.select1(sparse_index + 2)
        else:
            end = len(self._sparse_labels)
        return start, end

    def _sparse_step(self, node: int, label: int):
        start, end = self._sparse_range(node)
        for position in range(start, end):  # explicit in-node search
            if self._sparse_labels[position] == label:
                if self._sparse_haschild[position]:
                    child = self._dense_hc_total + self._sparse_haschild.rank1(
                        position + 1
                    )
                    return child, None, True
                value_index = self._dense_terminal_total + (
                    position + 1 - self._sparse_haschild.rank1(position + 1) - 1
                )
                return None, self._values[value_index], True
            if self._sparse_labels[position] > label:
                break
        return None, None, False

    def step(self, node: int, label: int):
        """Follow ``label`` out of ``node``; returns (child, value, found)."""
        if self.is_dense_node(node):
            self.counters.add("fst_dense_visit")
            return self._dense_step(node, label)
        self.counters.add("fst_sparse_visit")
        return self._sparse_step(node, label)

    def children(self, node: int) -> List[Tuple[int, Optional[int], Optional[int]]]:
        """All (label, child_node, value) triples of ``node`` in label order.

        Exactly one of ``child_node`` / ``value`` is non-None per triple.
        This is what Hybrid Trie expansion enumerates.
        """
        result: List[Tuple[int, Optional[int], Optional[int]]] = []
        if self.is_dense_node(node):
            base = node * 256
            labels_bits = self._dense_labels.word_slice(base, 256)
            haschild_bits = self._dense_haschild.word_slice(base, 256)
            # Ranks *before* this node's bitmap; advanced incrementally.
            child_rank = self._dense_haschild.rank1(base)
            value_rank = self._dense_labels.rank1(base) - child_rank
            remaining = labels_bits
            while remaining:
                label = (remaining & -remaining).bit_length() - 1
                remaining &= remaining - 1
                if (haschild_bits >> label) & 1:
                    child_rank += 1
                    result.append((label, child_rank, None))
                else:
                    result.append((label, None, self._values[value_rank]))
                    value_rank += 1
        else:
            start, end = self._sparse_range(node)
            child_rank = self._dense_hc_total + self._sparse_haschild.rank1(start)
            value_rank = self._dense_terminal_total + (
                start - self._sparse_haschild.rank1(start)
            )
            for position in range(start, end):
                label = self._sparse_labels[position]
                if self._sparse_haschild[position]:
                    child_rank += 1
                    result.append((label, child_rank, None))
                else:
                    result.append((label, None, self._values[value_rank]))
                    value_rank += 1
        return result

    def node_fanout(self, node: int) -> int:
        """Number of labels of ``node``."""
        if self.is_dense_node(node):
            base = node * 256
            return self._dense_labels.rank1(base + 256) - self._dense_labels.rank1(base)
        start, end = self._sparse_range(node)
        return end - start

    # ------------------------------------------------------------------
    # Lookups and scans
    # ------------------------------------------------------------------
    def lookup(self, key: bytes) -> Optional[int]:
        """Return the value stored under ``key``, or None."""
        if self._num_keys == 0:
            return None
        tracer = active_tracer()
        if tracer is not None:
            return self._traced_lookup(tracer, key)
        return self.lookup_from(0, key, 0)

    def _traced_lookup(self, tracer, key: bytes) -> Optional[int]:
        """:meth:`lookup` under an installed tracer (identical result)."""
        span = tracer.op_start("lookup", family=self.stats_family)
        node = 0
        depth = 0
        dense_steps = 0
        sparse_steps = 0
        result: Optional[int] = None
        while depth < len(key):
            if node < self._num_dense_nodes:
                dense_steps += 1
            else:
                sparse_steps += 1
            child, value, found = self.step(node, key[depth])
            if not found:
                break
            if value is not None:
                if depth == len(key) - 1:
                    result = value
                break
            node = child
            depth += 1
        if span is not None:
            tracer.event(
                "descent", dense_steps=dense_steps, sparse_steps=sparse_steps
            )
            tracer.event(
                _PROBE_EVENTS["sparse" if sparse_steps else "dense"],
                hit=result is not None,
            )
            tracer.end(span)
        return result

    def lookup_from(self, node: int, key: bytes, depth: int) -> Optional[int]:
        """Continue a lookup from ``node`` at key byte ``depth`` — the entry
        point Hybrid Trie uses when descending out of the ART region."""
        while depth < len(key):
            child, value, found = self.step(node, key[depth])
            if not found:
                return None
            if value is not None:
                return value if depth == len(key) - 1 else None
            node = child
            depth += 1
        return None

    def lookup_many(self, keys: Sequence[bytes]) -> List[Optional[int]]:
        """Batched point lookups; element ``i`` equals ``lookup(keys[i])``.

        For sorted key batches the trie descent is amortized: a stack of
        ``(node, depth)`` pairs from the previous key's path is rewound to
        the common prefix, so shared prefixes (sorted URL/e-mail batches
        share most of their bytes) are traversed once per run instead of
        once per key.  Unsorted batches fall back to per-key lookups.
        """
        total = len(keys)
        if total == 0:
            return []
        if self._num_keys == 0:
            return [None] * total
        if any(a > b for a, b in zip(keys, keys[1:])):
            return [self.lookup(key) for key in keys]
        results: List[Optional[int]] = []
        append = results.append
        stack: List[Tuple[int, int]] = [(0, 0)]  # (node, bytes consumed)
        push = stack.append
        pop = stack.pop
        previous: Optional[bytes] = None
        dense_visits = 0
        sparse_visits = 0
        num_dense = self._num_dense_nodes
        dense_step = self._dense_step
        sparse_step = self._sparse_step
        for key in keys:
            if previous is not None:
                limit = min(len(previous), len(key))
                common = 0
                while common < limit and previous[common] == key[common]:
                    common += 1
                while len(stack) > 1 and stack[-1][1] > common:
                    pop()
            previous = key
            node, depth = stack[-1]
            found_value: Optional[int] = None
            key_length = len(key)
            while depth < key_length:
                if node < num_dense:
                    dense_visits += 1
                    child, value, found = dense_step(node, key[depth])
                else:
                    sparse_visits += 1
                    child, value, found = sparse_step(node, key[depth])
                if not found:
                    break
                if value is not None:
                    if depth == key_length - 1:
                        found_value = value
                    break
                node = child
                depth += 1
                push((node, depth))
            append(found_value)
        if dense_visits:
            self.counters.add("fst_dense_visit", dense_visits)
        if sparse_visits:
            self.counters.add("fst_sparse_visit", sparse_visits)
        return results

    def scan_many(
        self, requests: Sequence[Tuple[bytes, int]]
    ) -> List[List[Tuple[bytes, int]]]:
        """Batched range scans: one ``scan(start, count)`` per request."""
        return [self.scan(start_key, count) for start_key, count in requests]

    def iterate_subtree(self, node: int) -> Iterator[Tuple[bytes, int]]:
        """(key_suffix, value) pairs below ``node`` in key order."""
        yield from self._iterate_from(node, b"")

    def _iterate_from(self, node: int, suffix: bytes) -> Iterator[Tuple[bytes, int]]:
        for label, child, value in self.children(node):
            if value is not None:
                yield suffix + bytes([label]), value
            else:
                yield from self._iterate_from(child, suffix + bytes([label]))

    def items(self) -> Iterator[Tuple[bytes, int]]:
        """Yield all ``(key, value)`` pairs in key order."""
        if self._num_keys == 0:
            return
        yield from self._iterate_from(0, b"")

    def successor(self, key: bytes) -> Optional[Tuple[bytes, int]]:
        """The smallest stored (key, value) with key >= ``key``.

        The primitive behind SuRF-style range filtering: one root-to-leaf
        walk plus at most one subtree descent, no full scan.
        """
        if self._num_keys == 0:
            return None
        result = self.scan(key, 1)
        return result[0] if result else None

    def range_contains(self, low: bytes, high: bytes) -> bool:
        """True iff any stored key lies in ``[low, high]`` (inclusive).

        This is the range-membership query SuRF answers approximately;
        over the complete key set it is exact.
        """
        if high < low:
            return False
        found = self.successor(low)
        return found is not None and found[0] <= high

    def prefix_items(self, prefix: bytes) -> Iterator[Tuple[bytes, int]]:
        """All (key, value) pairs whose key starts with ``prefix``,
        in key order — e.g. every e-mail under one host."""
        if self._num_keys == 0:
            return
        node = 0
        for depth, label in enumerate(prefix):
            child, value, found = self.step(node, label)
            if not found:
                return
            if value is not None:
                if depth == len(prefix) - 1:
                    yield prefix, value
                return
            node = child
        for suffix, value in self._iterate_from(node, b""):
            yield prefix + suffix, value

    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, int]]:
        """Up to ``count`` pairs with key >= ``start_key`` in key order."""
        if count <= 0 or self._num_keys == 0:
            return []
        result: List[Tuple[bytes, int]] = []
        self._scan(0, b"", start_key, count, result)
        return result

    def _scan(
        self,
        node: int,
        path: bytes,
        start_key: bytes,
        count: int,
        result: List[Tuple[bytes, int]],
    ) -> None:
        if self.is_dense_node(node):
            self.counters.add("fst_dense_visit")
        else:
            self.counters.add("fst_sparse_visit")
        depth = len(path)
        # When the path so far equals the start key's prefix, labels below
        # the start key's byte at this depth cannot contribute.
        on_boundary = path == start_key[:depth]
        minimum_label = start_key[depth] if on_boundary and depth < len(start_key) else 0
        for label, child, value in self.children(node):
            if len(result) >= count:
                return
            if label < minimum_label:
                continue
            extended = path + bytes([label])
            if value is not None:
                if extended >= start_key:
                    result.append((extended, value))
            else:
                # Skip subtrees whose keys all precede the start key.
                if extended < start_key[: len(extended)]:
                    continue
                self._scan(child, extended, start_key, count, result)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to this library's stable binary format."""
        from repro.fst.serialize import fst_to_bytes

        return fst_to_bytes(self)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "FST":
        """Load an FST serialized with :meth:`to_bytes`."""
        from repro.fst.serialize import fst_from_bytes

        return fst_from_bytes(blob)

    # ------------------------------------------------------------------
    # Self-verification
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Prove structural integrity; raises
        :class:`~repro.core.invariants.InvariantViolation` on any LOUDS,
        value-array, or reachability inconsistency."""
        from repro.core.invariants import validate

        validate(self)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    def dense_size_bytes(self) -> int:
        """Modeled bytes of the LOUDS-dense region."""
        return self._dense_labels.size_bytes() + self._dense_haschild.size_bytes()

    def sparse_size_bytes(self) -> int:
        """Modeled bytes of the LOUDS-sparse region."""
        return (
            len(self._sparse_labels)
            + self._sparse_haschild.size_bytes()
            + self._sparse_louds.size_bytes()
        )

    def values_size_bytes(self) -> int:
        """Modeled bytes of the value array."""
        return 8 * len(self._values)

    def size_bytes(self) -> int:
        """Return the modeled C++ footprint in bytes."""
        return self.dense_size_bytes() + self.sparse_size_bytes() + self.values_size_bytes()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def node_census(self) -> dict:
        """Region -> (node count, avg modeled bytes) for dense/sparse."""
        census: dict = {}
        num_sparse = self._num_nodes - self._num_dense_nodes
        if self._num_dense_nodes:
            census["dense"] = (
                self._num_dense_nodes,
                self.dense_size_bytes() / self._num_dense_nodes,
            )
        if num_sparse:
            census["sparse"] = (num_sparse, self.sparse_size_bytes() / num_sparse)
        return census

    def stats(self) -> dict:
        """Uniform JSON-safe stats dict (see :mod:`repro.obs.introspect`)."""
        from repro.obs.introspect import base_stats

        stats = base_stats(
            self.stats_family,
            num_keys=self._num_keys,
            size_bytes=self.size_bytes(),
            census=self.node_census(),
            counters_snapshot=self.counters.snapshot(),
        )
        stats["height"] = self._height
        stats["dense_levels"] = self.dense_levels
        return stats

    def describe(self) -> str:
        """Human-readable rendering of :meth:`stats`."""
        from repro.obs.introspect import format_stats

        return format_stats(self.stats())
