"""FST binary serialization.

A static succinct trie is built once and queried forever — exactly the
structure worth persisting.  This module defines a compact, versioned
binary format:

``FST1`` magic, a fixed header (key/node counts, dense split, height),
the level directory, the two dense bitvectors, the sparse label bytes and
bitvectors, and the value array (64-bit signed little-endian).

Bitvectors serialize as ``bit_length u64 || payload words``; the
rank/select directories are rebuilt on load (they are derived data and
smaller to recompute than to ship).

The format is *not* the SuRF wire format (see DESIGN.md §6); it is this
library's own stable representation.
"""

from __future__ import annotations

import struct
from typing import List

from repro.fst.trie import FST
from repro.succinct.bitvector import BitVector

MAGIC = b"FST1"
_HEADER = struct.Struct("<4sQQQQQQ")  # magic, keys, nodes, dense, height, dense_levels, value_count
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")


def _bitvector_to_bytes(vector: BitVector) -> bytes:
    words = vector._words  # serialization is a friend of the class
    parts = [_U64.pack(len(vector)), _U64.pack(len(words))]
    parts.extend(_U64.pack(word) for word in words)
    return b"".join(parts)


def _bitvector_from_bytes(blob: bytes, offset: int):
    bit_length = _U64.unpack_from(blob, offset)[0]
    word_count = _U64.unpack_from(blob, offset + 8)[0]
    offset += 16
    vector = BitVector()
    vector._words = [
        _U64.unpack_from(blob, offset + 8 * index)[0] for index in range(word_count)
    ]
    vector._size = bit_length
    offset += 8 * word_count
    return vector.seal(), offset


def fst_to_bytes(fst: FST) -> bytes:
    """Serialize ``fst`` to a self-contained byte string."""
    parts: List[bytes] = [
        _HEADER.pack(
            MAGIC,
            fst.num_keys,
            fst.num_nodes,
            fst.num_dense_nodes,
            fst.height,
            fst.dense_levels,
            len(fst._values),
        )
    ]
    parts.append(_U64.pack(len(fst._level_first_node)))
    parts.extend(_U64.pack(entry) for entry in fst._level_first_node)
    parts.append(_bitvector_to_bytes(fst._dense_labels))
    parts.append(_bitvector_to_bytes(fst._dense_haschild))
    parts.append(_U64.pack(len(fst._sparse_labels)))
    parts.append(bytes(fst._sparse_labels))
    parts.append(_bitvector_to_bytes(fst._sparse_haschild))
    parts.append(_bitvector_to_bytes(fst._sparse_louds))
    parts.extend(_I64.pack(value) for value in fst._values)
    return b"".join(parts)


def fst_from_bytes(blob: bytes) -> FST:
    """Reconstruct an :class:`FST` serialized by :func:`fst_to_bytes`."""
    if len(blob) < _HEADER.size:
        raise ValueError("truncated FST blob")
    magic, num_keys, num_nodes, num_dense, height, dense_levels, value_count = (
        _HEADER.unpack_from(blob, 0)
    )
    if magic != MAGIC:
        raise ValueError(f"bad magic {magic!r}; not an FST blob")
    offset = _HEADER.size

    level_count = _U64.unpack_from(blob, offset)[0]
    offset += 8
    level_first_node = [
        _U64.unpack_from(blob, offset + 8 * index)[0] for index in range(level_count)
    ]
    offset += 8 * level_count

    dense_labels, offset = _bitvector_from_bytes(blob, offset)
    dense_haschild, offset = _bitvector_from_bytes(blob, offset)

    sparse_count = _U64.unpack_from(blob, offset)[0]
    offset += 8
    sparse_labels = list(blob[offset : offset + sparse_count])
    if len(sparse_labels) != sparse_count:
        raise ValueError("truncated sparse label section")
    offset += sparse_count

    sparse_haschild, offset = _bitvector_from_bytes(blob, offset)
    sparse_louds, offset = _bitvector_from_bytes(blob, offset)

    if offset + 8 * value_count > len(blob):
        raise ValueError("truncated value section")
    values = [
        _I64.unpack_from(blob, offset + 8 * index)[0] for index in range(value_count)
    ]

    # Assemble without re-building from keys.
    fst = FST.__new__(FST)
    from repro.sim.counters import OpCounters

    fst.counters = OpCounters()
    fst.dense_levels = dense_levels
    fst._num_keys = num_keys
    fst._height = height
    fst._num_nodes = num_nodes
    fst._num_dense_nodes = num_dense
    fst._level_first_node = level_first_node
    fst._dense_labels = dense_labels
    fst._dense_haschild = dense_haschild
    fst._sparse_labels = sparse_labels
    fst._sparse_haschild = sparse_haschild
    fst._sparse_louds = sparse_louds
    fst._values = values
    fst._dense_hc_total = dense_haschild.ones if len(dense_haschild) else 0
    fst._dense_terminal_total = (
        (dense_labels.ones - dense_haschild.ones) if len(dense_labels) else 0
    )
    return fst
