"""FST binary serialization.

A static succinct trie is built once and queried forever — exactly the
structure worth persisting.  This module defines a compact, versioned
binary format:

``FST2`` magic, a CRC-32 covering the header's count fields (with the
checksum slot zeroed) and the entire body, a fixed header (key/node
counts, dense split, height), the level directory, the two dense
bitvectors, the sparse label bytes and bitvectors, and the value array
(64-bit signed little-endian).

Bitvectors serialize as ``bit_length u64 || payload words``; the
rank/select directories are rebuilt on load (they are derived data and
smaller to recompute than to ship).

Loading is paranoid: every declared count is bounds-checked against the
blob before unpacking, the body checksum is verified first, and any
mismatch raises :class:`CorruptSerializationError` — a truncated or
bit-flipped blob is rejected, never partially decoded into a structure
that answers queries wrongly.

The format is *not* the SuRF wire format (see DESIGN.md §6); it is this
library's own stable representation.
"""

from __future__ import annotations

import struct
import zlib
from array import array
from pathlib import Path
from typing import List, Tuple, Union

from repro.faults.injector import fault_point
from repro.fst.trie import FST
from repro.succinct.bitvector import BitVector

MAGIC = b"FST2"
# magic, body crc32, keys, nodes, dense nodes, height, dense_levels, value_count
_HEADER = struct.Struct("<4sIQQQQQQ")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")

# A sanity ceiling on any declared count: one u64 element can never be
# smaller than a byte, so a count exceeding the blob length is garbage
# even before the precise per-section bounds check.
_WORD_BYTES = 8


class CorruptSerializationError(ValueError):
    """A serialized blob failed validation (truncated, bit-flipped, or
    carrying internally inconsistent counts)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CorruptSerializationError(message)


def _read_u64(blob: bytes, offset: int) -> Tuple[int, int]:
    _require(offset + 8 <= len(blob), f"truncated u64 at offset {offset}")
    return _U64.unpack_from(blob, offset)[0], offset + 8


def _bitvector_to_bytes(vector: BitVector) -> bytes:
    words = vector._words  # serialization is a friend of the class
    parts = [_U64.pack(len(vector)), _U64.pack(len(words))]
    parts.extend(_U64.pack(word) for word in words)
    return b"".join(parts)


def _bitvector_from_bytes(blob: bytes, offset: int) -> Tuple[BitVector, int]:
    bit_length, offset = _read_u64(blob, offset)
    word_count, offset = _read_u64(blob, offset)
    _require(
        word_count == (bit_length + 63) // 64,
        f"bitvector declares {word_count} words for {bit_length} bits",
    )
    _require(
        offset + _WORD_BYTES * word_count <= len(blob),
        f"bitvector payload of {word_count} words overruns the blob",
    )
    words = array(
        "Q",
        (_U64.unpack_from(blob, offset + 8 * index)[0] for index in range(word_count)),
    )
    if words and bit_length % 64:
        _require(
            words[-1] >> (bit_length % 64) == 0,
            "bitvector has bits set beyond its declared length",
        )
    vector = BitVector()
    vector._words = words
    vector._size = bit_length
    offset += 8 * word_count
    return vector.seal(), offset


def fst_to_bytes(fst: FST) -> bytes:
    """Serialize ``fst`` to a self-contained, checksummed byte string."""
    fault_point("fst.serialize.encode")
    body_parts: List[bytes] = [_U64.pack(len(fst._level_first_node))]
    body_parts.extend(_U64.pack(entry) for entry in fst._level_first_node)
    body_parts.append(_bitvector_to_bytes(fst._dense_labels))
    body_parts.append(_bitvector_to_bytes(fst._dense_haschild))
    body_parts.append(_U64.pack(len(fst._sparse_labels)))
    body_parts.append(bytes(fst._sparse_labels))
    body_parts.append(_bitvector_to_bytes(fst._sparse_haschild))
    body_parts.append(_bitvector_to_bytes(fst._sparse_louds))
    body_parts.extend(_I64.pack(value) for value in fst._values)
    body = b"".join(body_parts)
    # The checksum covers the count fields too: the header is packed with
    # a zero in the crc slot, hashed together with the body, and repacked.
    fields = (
        fst.num_keys,
        fst.num_nodes,
        fst.num_dense_nodes,
        fst.height,
        fst.dense_levels,
        len(fst._values),
    )
    crc = zlib.crc32(body, zlib.crc32(_HEADER.pack(MAGIC, 0, *fields))) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, crc, *fields) + body


def fst_to_file(fst: FST, path: Union[str, Path]) -> None:
    """Serialize ``fst`` to ``path`` with crash-safe temp-file hygiene.

    The blob is written to a ``tempfile`` alongside the destination,
    fsynced, published with one ``os.replace``, and the parent
    directory is fsynced so the name survives a crash — the
    :mod:`repro.core.atomicio` discipline.  The temporary file is
    removed on every error path (including a fault injected at the
    ``fst.serialize.swap`` point), so a failed write can never leak a
    partial file or clobber a previous good one.
    """
    from repro.core.atomicio import discard_aside, publish_aside, write_aside

    final = Path(path)
    blob = fst_to_bytes(fst)
    tmp = write_aside(final, blob)
    try:
        fault_point("fst.serialize.swap")
        publish_aside(tmp, final)
    except BaseException:
        discard_aside(tmp)
        raise


def fst_from_file(path: Union[str, Path]) -> FST:
    """Load an FST published by :func:`fst_to_file`.

    Validation is exactly :func:`fst_from_bytes`'s: the checksum and
    every bounds check run before any structure is assembled.
    """
    return fst_from_bytes(Path(path).read_bytes())


def fst_from_bytes(blob: bytes) -> FST:
    """Reconstruct an :class:`FST` serialized by :func:`fst_to_bytes`.

    Raises :class:`CorruptSerializationError` (a :class:`ValueError`) on
    any checksum, bounds, or consistency failure.
    """
    if len(blob) < _HEADER.size:
        raise CorruptSerializationError("truncated FST blob (incomplete header)")
    magic, crc, num_keys, num_nodes, num_dense, height, dense_levels, value_count = (
        _HEADER.unpack_from(blob, 0)
    )
    if magic != MAGIC:
        raise CorruptSerializationError(f"bad magic {magic!r}; not an FST blob")
    body = blob[_HEADER.size :]
    zeroed_header = _HEADER.pack(
        magic, 0, num_keys, num_nodes, num_dense, height, dense_levels, value_count
    )
    _require(
        zlib.crc32(body, zlib.crc32(zeroed_header)) & 0xFFFFFFFF == crc,
        "FST checksum mismatch (truncated or bit-flipped blob)",
    )
    fault_point("fst.serialize.decode")
    offset = _HEADER.size

    level_count, offset = _read_u64(blob, offset)
    _require(
        offset + 8 * level_count <= len(blob),
        f"level directory of {level_count} entries overruns the blob",
    )
    _require(
        level_count == height,
        f"level directory holds {level_count} entries for height {height}",
    )
    level_first_node = [
        _U64.unpack_from(blob, offset + 8 * index)[0] for index in range(level_count)
    ]
    offset += 8 * level_count
    _require(
        all(entry < num_nodes for entry in level_first_node),
        "level directory points beyond the node count",
    )

    dense_labels, offset = _bitvector_from_bytes(blob, offset)
    dense_haschild, offset = _bitvector_from_bytes(blob, offset)
    _require(
        len(dense_labels) == 256 * num_dense,
        f"dense label bitmap has {len(dense_labels)} bits for {num_dense} nodes",
    )
    _require(
        len(dense_haschild) == len(dense_labels),
        "dense has-child bitmap length differs from the label bitmap",
    )

    sparse_count, offset = _read_u64(blob, offset)
    _require(
        offset + sparse_count <= len(blob),
        f"sparse label section of {sparse_count} bytes overruns the blob",
    )
    sparse_labels = list(blob[offset : offset + sparse_count])
    offset += sparse_count

    sparse_haschild, offset = _bitvector_from_bytes(blob, offset)
    sparse_louds, offset = _bitvector_from_bytes(blob, offset)
    _require(
        len(sparse_haschild) == sparse_count and len(sparse_louds) == sparse_count,
        "sparse bitvector lengths differ from the label count",
    )

    _require(
        offset + 8 * value_count <= len(blob),
        f"value section of {value_count} entries overruns the blob",
    )
    values = [
        _I64.unpack_from(blob, offset + 8 * index)[0] for index in range(value_count)
    ]
    offset += 8 * value_count
    _require(offset == len(blob), f"{len(blob) - offset} trailing bytes after values")
    _require(
        value_count == num_keys,
        f"{value_count} values for {num_keys} keys",
    )

    # Assemble without re-building from keys.
    fst = FST.__new__(FST)
    from repro.sim.counters import OpCounters

    fst.counters = OpCounters()
    fst.dense_levels = dense_levels
    fst._num_keys = num_keys
    fst._height = height
    fst._num_nodes = num_nodes
    fst._num_dense_nodes = num_dense
    fst._level_first_node = level_first_node
    fst._dense_labels = dense_labels
    fst._dense_haschild = dense_haschild
    fst._sparse_labels = sparse_labels
    fst._sparse_haschild = sparse_haschild
    fst._sparse_louds = sparse_louds
    fst._values = values
    fst._dense_hc_total = dense_haschild.ones if len(dense_haschild) else 0
    fst._dense_terminal_total = (
        (dense_labels.ones - dense_haschild.ones) if len(dense_labels) else 0
    )
    return fst
