"""The Fast Succinct Trie substrate (Zhang et al., SIGMOD 2018).

FST stores a trie without child pointers: navigation computes child
positions from rank/select queries over bitmaps.  The upper, frequently
accessed levels use the *LOUDS-dense* encoding (two 256-bit bitmaps per
node, fast random access); the lower levels use *LOUDS-sparse* (explicit
label bytes, smaller but requiring in-node search).

This implementation follows the same structure and size arithmetic but is
not bit-compatible with the SuRF serialization (see DESIGN.md §6).
"""

from repro.fst.builder import TrieLevels, build_trie_levels
from repro.fst.serialize import CorruptSerializationError, fst_from_bytes, fst_to_bytes
from repro.fst.trie import FST, choose_dense_cutoff

__all__ = [
    "FST",
    "TrieLevels",
    "build_trie_levels",
    "choose_dense_cutoff",
    "CorruptSerializationError",
    "fst_from_bytes",
    "fst_to_bytes",
]
