"""The Hybrid B+-tree substrate (Section 4.1 of the paper).

:class:`~repro.bptree.tree.BPlusTree` is a full B+-tree (insert, delete,
point lookup, range scan, bulk load) whose leaves all use one of three
encodings — *Gapped*, *Packed*, or *Succinct* (Figure 8).  These
single-encoding trees are the paper's baselines.

:class:`~repro.bptree.hybrid.AdaptiveBPlusTree` (AHI-BTree) wires a
:class:`~repro.core.manager.AdaptationManager` into the tree so that hot
leaves are expanded to the Gapped encoding and cold leaves compacted to
the Succinct one at run-time.
"""

from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.iterator import TreeIterator
from repro.bptree.leaves import LeafEncoding, LeafNode
from repro.bptree.olc import OlcBPlusTree
from repro.bptree.tree import BPlusTree

__all__ = [
    "AdaptiveBPlusTree",
    "BPlusTree",
    "LeafEncoding",
    "LeafNode",
    "OlcBPlusTree",
    "TreeIterator",
]
