"""Leaf encoding migrations and their cost accounting (Figure 9).

Migrating between the two plain layouts (Gapped <-> Packed) only copies
the key/value arrays; any migration involving the Succinct layout must
re-encode or decode every entry's physical representation, which is why
the paper measures those as markedly more expensive.  The counters bumped
here carry exactly that distinction so the cost model can price it.
"""

from __future__ import annotations

from repro.bptree.leaves import LeafEncoding, LeafNode
from repro.sim.counters import OpCounters

_RECODE_PAIRS = {
    (LeafEncoding.SUCCINCT, LeafEncoding.GAPPED),
    (LeafEncoding.GAPPED, LeafEncoding.SUCCINCT),
    (LeafEncoding.SUCCINCT, LeafEncoding.PACKED),
    (LeafEncoding.PACKED, LeafEncoding.SUCCINCT),
}


def migration_kind(source: LeafEncoding, target: LeafEncoding) -> str:
    """``recode`` when the physical representation changes, else ``cheap``."""
    return "recode" if (source, target) in _RECODE_PAIRS else "cheap"


def migrate_leaf(
    leaf: LeafNode,
    target: LeafEncoding,
    counters: OpCounters | None = None,
) -> bool:
    """Re-encode ``leaf`` in place; returns False for a no-op migration."""
    source = leaf.encoding
    if source is target:
        return False
    migrated = leaf.migrate_to(target)
    if migrated and counters is not None:
        counters.add(f"migration:{source}->{target}")
        counters.add(
            f"migration_entry:{migration_kind(source, target)}",
            leaf.num_entries(),
        )
    return migrated
