"""B+-tree leaf encodings (Figure 8) and the stable leaf wrapper.

Three interchangeable storage classes implement the paper's leaf layouts:

* :class:`GappedStorage` — the traditional universal encoding: a fixed
  number of pre-allocated slots with gaps; all access types are cheap but
  the footprint never shrinks (modeled 4 KiB per leaf at capacity 255).
* :class:`PackedStorage` — keys and values densely packed; reads, updates
  and deletes are cheap, inserts shift the arrays.
* :class:`SuccinctStorage` — frame-of-reference + bit packing for keys
  and values; still randomly accessible (binary search works without
  decompressing), but every mutation re-encodes the leaf.

A :class:`LeafNode` wraps one storage and gives the leaf a *stable
identity* across encoding migrations — the adaptation manager tracks the
wrapper, so historic access statistics survive migrations exactly as the
paper requires (Section 4.2.2: "we retain the historic access
statistics").
"""

from __future__ import annotations

import bisect
import enum
import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.faults.injector import fault_point
from repro.succinct.for_codec import ForBlock, for_encode

DEFAULT_LEAF_CAPACITY = 255
_HEADER_BYTES = 16
_SLOT_BYTES = 16  # 8-byte key + 8-byte value


class LeafEncoding(enum.Enum):
    """The three leaf layouts, ordered from compact to fast elsewhere."""

    SUCCINCT = "succinct"
    PACKED = "packed"
    GAPPED = "gapped"

    def __str__(self) -> str:
        return self.value


#: Precomputed ``leaf_probe:<encoding>`` span names (RA004: telemetry
#: names are literal tables, never formatted on the hot path).
LEAF_PROBE_EVENTS = {
    encoding: f"leaf_probe:{encoding.value}" for encoding in LeafEncoding
}


class _SortedPairStorage:
    """Shared behaviour of the two plain (uncompressed) leaf layouts."""

    __slots__ = ("keys", "values", "capacity")

    def __init__(self, pairs: Sequence[Tuple[int, int]], capacity: int) -> None:
        if len(pairs) > capacity:
            raise ValueError(f"{len(pairs)} entries exceed leaf capacity {capacity}")
        self.keys: List[int] = [key for key, _ in pairs]
        self.values: List[int] = [value for _, value in pairs]
        self.capacity = capacity
        if any(a >= b for a, b in zip(self.keys, self.keys[1:])):
            raise ValueError("leaf pairs must be strictly sorted by key")

    def num_entries(self) -> int:
        """Number of stored entries."""
        return len(self.keys)

    def min_key(self) -> Optional[int]:
        """The smallest stored key, or None when empty."""
        return self.keys[0] if self.keys else None

    def max_key(self) -> Optional[int]:
        """The largest stored key, or None when empty."""
        return self.keys[-1] if self.keys else None

    def lookup(self, key: int) -> Optional[int]:
        """Return the value stored under ``key``, or None."""
        index = bisect.bisect_left(self.keys, key)
        if index < len(self.keys) and self.keys[index] == key:
            return self.values[index]
        return None

    def lookup_run(self, run: Sequence[int]) -> List[Optional[int]]:
        """Batched lookup of an ascending key run.

        Because the run is sorted, every search can start where the
        previous one ended (a monotone ``lo`` hint), so the searched
        range shrinks as the run advances instead of restarting at 0.
        """
        keys = self.keys
        values = self.values
        limit = len(keys)
        results: List[Optional[int]] = []
        append = results.append
        lo = 0
        for key in run:
            lo = bisect.bisect_left(keys, key, lo)
            if lo < limit and keys[lo] == key:
                append(values[lo])
            else:
                append(None)
        return results

    def insert(self, key: int, value: int) -> bool:
        """Insert or overwrite; False when the leaf is full (caller splits)."""
        index = bisect.bisect_left(self.keys, key)
        if index < len(self.keys) and self.keys[index] == key:
            self.values[index] = value
            return True
        if len(self.keys) >= self.capacity:
            return False
        self.keys.insert(index, key)
        self.values.insert(index, value)
        return True

    def update(self, key: int, value: int) -> bool:
        """Overwrite the value of an existing ``key``; False if absent."""
        index = bisect.bisect_left(self.keys, key)
        if index < len(self.keys) and self.keys[index] == key:
            self.values[index] = value
            return True
        return False

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False when it was absent."""
        index = bisect.bisect_left(self.keys, key)
        if index < len(self.keys) and self.keys[index] == key:
            del self.keys[index]
            del self.values[index]
            return True
        return False

    def to_pairs(self) -> List[Tuple[int, int]]:
        """Return all ``(key, value)`` pairs as a list."""
        return list(zip(self.keys, self.values))

    def entries_from(self, start_key: int) -> Iterator[Tuple[int, int]]:
        """Yield pairs with key >= ``start_key`` within this leaf."""
        index = bisect.bisect_left(self.keys, start_key)
        for position in range(index, len(self.keys)):
            yield self.keys[position], self.values[position]


class GappedStorage(_SortedPairStorage):
    """Fixed-capacity slotted layout; size is paid for every slot."""

    encoding = LeafEncoding.GAPPED

    def size_bytes(self) -> int:
        """Return the modeled C++ footprint in bytes."""
        return _HEADER_BYTES + self.capacity * _SLOT_BYTES


class PackedStorage(_SortedPairStorage):
    """Dense layout; size tracks the live entry count."""

    encoding = LeafEncoding.PACKED

    def size_bytes(self) -> int:
        """Return the modeled C++ footprint in bytes."""
        return _HEADER_BYTES + self.num_entries() * _SLOT_BYTES


_FOR_BLOCK_ENTRIES = 32


class SuccinctStorage:
    """Block-wise FOR + bit-packed layout; random access, no decompression.

    Entries are split into mini-blocks of 32; each block stores its own
    frame of reference and bit width for keys and values, so one distant
    outlier key cannot inflate the whole leaf's width — the behaviour of
    production FOR codecs and what yields the paper's ~73% savings.
    """

    encoding = LeafEncoding.SUCCINCT

    __slots__ = (
        "_key_blocks",
        "_value_blocks",
        "_block_min_keys",
        "_num_entries",
        "capacity",
        "rebuilds",
    )

    def __init__(self, pairs: Sequence[Tuple[int, int]], capacity: int) -> None:
        if len(pairs) > capacity:
            raise ValueError(f"{len(pairs)} entries exceed leaf capacity {capacity}")
        keys = [key for key, _ in pairs]
        if any(a >= b for a, b in zip(keys, keys[1:])):
            raise ValueError("leaf pairs must be strictly sorted by key")
        self.capacity = capacity
        self.rebuilds = 0
        self._encode(list(pairs))

    def _encode(self, pairs: List[Tuple[int, int]]) -> None:
        self._key_blocks: List[ForBlock] = []
        self._value_blocks: List[ForBlock] = []
        for start in range(0, len(pairs), _FOR_BLOCK_ENTRIES):
            chunk = pairs[start : start + _FOR_BLOCK_ENTRIES]
            self._key_blocks.append(for_encode([key for key, _ in chunk]))
            self._value_blocks.append(for_encode([value for _, value in chunk]))
        # Split keys array: each block's minimum, kept uncompressed so
        # _find can bisect it instead of paying a packed-array decode per
        # binary-search probe.
        self._block_min_keys = [block[0] for block in self._key_blocks]
        self._num_entries = len(pairs)

    def num_entries(self) -> int:
        """Number of stored entries."""
        return self._num_entries

    def _key_at(self, index: int) -> int:
        block, offset = divmod(index, _FOR_BLOCK_ENTRIES)
        return self._key_blocks[block][offset]

    def _value_at(self, index: int) -> int:
        block, offset = divmod(index, _FOR_BLOCK_ENTRIES)
        return self._value_blocks[block][offset]

    def min_key(self) -> Optional[int]:
        """The smallest stored key, or None when empty."""
        return self._key_at(0) if self._num_entries else None

    def max_key(self) -> Optional[int]:
        """The largest stored key, or None when empty."""
        return self._key_at(self._num_entries - 1) if self._num_entries else None

    def _find(self, key: int) -> int:
        """Binary search over the blocked FOR layout (no decompression).

        First bisects the uncompressed per-block minimum keys to pick the
        one candidate block, then binary-searches inside it; only O(log
        block size) packed-array probes are paid instead of O(log n).
        """
        block_index = bisect.bisect_right(self._block_min_keys, key) - 1
        if block_index < 0:
            return 0
        block = self._key_blocks[block_index]
        lo, hi = 0, len(block)
        while lo < hi:
            mid = (lo + hi) // 2
            if block[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return block_index * _FOR_BLOCK_ENTRIES + lo

    def lookup(self, key: int) -> Optional[int]:
        """Return the value stored under ``key``, or None."""
        index = self._find(key)
        if index < self._num_entries and self._key_at(index) == key:
            return self._value_at(index)
        return None

    def lookup_run(self, run: Sequence[int]) -> List[Optional[int]]:
        """Batched lookup of an ascending key run.

        Consecutive run keys usually land in the same FOR mini-block, so
        each touched block's keys are materialized once with a bulk
        decode and every key in the run bisects the plain list — instead
        of paying O(log block) packed-array probes per key.  Value
        blocks are only decoded when a key actually hits.
        """
        results: List[Optional[int]] = []
        append = results.append
        mins = self._block_min_keys
        cached_index = -1
        cached_keys: List[int] = []
        cached_values: Optional[List[int]] = None
        lo = 0
        for key in run:
            block_index = bisect.bisect_right(mins, key) - 1
            if block_index < 0:
                append(None)
                continue
            if block_index != cached_index:
                cached_index = block_index
                cached_keys = self._key_blocks[block_index].to_list()
                cached_values = None
                lo = 0
            lo = bisect.bisect_left(cached_keys, key, lo)
            if lo < len(cached_keys) and cached_keys[lo] == key:
                if cached_values is None:
                    cached_values = self._value_blocks[block_index].to_list()
                append(cached_values[lo])
            else:
                append(None)
        return results

    def _rebuild(self, pairs: List[Tuple[int, int]]) -> None:
        self._encode(pairs)
        self.rebuilds += 1

    def insert(self, key: int, value: int) -> bool:
        """Insert ``key``; returns False when the key already existed."""
        index = self._find(key)
        if index < self._num_entries and self._key_at(index) == key:
            pairs = self.to_pairs()
            pairs[index] = (key, value)
        else:
            if self._num_entries >= self.capacity:
                return False
            pairs = self.to_pairs()
            pairs.insert(index, (key, value))
        self._rebuild(pairs)
        return True

    def update(self, key: int, value: int) -> bool:
        """Overwrite the value of an existing ``key``; False if absent."""
        index = self._find(key)
        if index >= self._num_entries or self._key_at(index) != key:
            return False
        pairs = self.to_pairs()
        pairs[index] = (key, value)
        self._rebuild(pairs)
        return True

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False when it was absent."""
        index = self._find(key)
        if index >= self._num_entries or self._key_at(index) != key:
            return False
        pairs = self.to_pairs()
        del pairs[index]
        self._rebuild(pairs)
        return True

    def to_pairs(self) -> List[Tuple[int, int]]:
        """Return all ``(key, value)`` pairs as a list."""
        pairs: List[Tuple[int, int]] = []
        for key_block, value_block in zip(self._key_blocks, self._value_blocks):
            pairs.extend(zip(key_block.to_list(), value_block.to_list()))
        return pairs

    def entries_from(self, start_key: int) -> Iterator[Tuple[int, int]]:
        """Yield pairs with key >= ``start_key`` within this leaf."""
        index = self._find(start_key)
        for position in range(index, self._num_entries):
            yield self._key_at(position), self._value_at(position)

    def size_bytes(self) -> int:
        """Return the modeled C++ footprint in bytes."""
        total = _HEADER_BYTES
        total += sum(block.size_bytes() for block in self._key_blocks)
        total += sum(block.size_bytes() for block in self._value_blocks)
        return total


_STORAGE_CLASSES = {
    LeafEncoding.GAPPED: GappedStorage,
    LeafEncoding.PACKED: PackedStorage,
    LeafEncoding.SUCCINCT: SuccinctStorage,
}

_leaf_ids = itertools.count(1)


class LeafNode:
    """A leaf with stable identity and an interchangeable storage encoding.

    The adaptation manager uses the wrapper as the tracked identifier;
    :meth:`migrate_to` swaps the storage in place, so tracked statistics
    and the parent's child pointer both remain valid.
    """

    __slots__ = ("leaf_id", "storage", "next_leaf", "lock")

    def __init__(
        self,
        pairs: Sequence[Tuple[int, int]],
        encoding: LeafEncoding,
        capacity: int = DEFAULT_LEAF_CAPACITY,
    ) -> None:
        self.leaf_id = next(_leaf_ids)
        self.storage = _STORAGE_CLASSES[encoding](pairs, capacity)
        self.next_leaf: Optional["LeafNode"] = None
        self.lock = None  # OlcBPlusTree attaches a VersionedLock here

    # Identity semantics: leaves hash/compare by object identity, which is
    # the Python analogue of the paper's pointer identifiers.
    def __hash__(self) -> int:
        return self.leaf_id

    def __eq__(self, other: object) -> bool:
        return self is other

    @property
    def encoding(self) -> LeafEncoding:
        """The current physical encoding."""
        return self.storage.encoding

    @property
    def capacity(self) -> int:
        """The structure's current capacity."""
        return self.storage.capacity

    def num_entries(self) -> int:
        """Number of stored entries."""
        return self.storage.num_entries()

    def min_key(self) -> Optional[int]:
        """The smallest stored key, or None when empty."""
        return self.storage.min_key()

    def max_key(self) -> Optional[int]:
        """The largest stored key, or None when empty."""
        return self.storage.max_key()

    def lookup(self, key: int) -> Optional[int]:
        """Return the value stored under ``key``, or None."""
        return self.storage.lookup(key)

    def lookup_run(self, run: Sequence[int]) -> List[Optional[int]]:
        """Batched lookup of an ascending key run (see the storages)."""
        return self.storage.lookup_run(run)

    def insert(self, key: int, value: int) -> bool:
        """Insert ``key``; returns False when the key already existed."""
        return self.storage.insert(key, value)

    def update(self, key: int, value: int) -> bool:
        """Overwrite the value of an existing ``key``; False if absent."""
        return self.storage.update(key, value)

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False when it was absent."""
        return self.storage.delete(key)

    def to_pairs(self) -> List[Tuple[int, int]]:
        """Return all ``(key, value)`` pairs as a list."""
        return self.storage.to_pairs()

    def entries_from(self, start_key: int) -> Iterator[Tuple[int, int]]:
        """Yield pairs with key >= ``start_key`` within this leaf."""
        return self.storage.entries_from(start_key)

    def size_bytes(self) -> int:
        """Return the modeled C++ footprint in bytes."""
        return self.storage.size_bytes()

    def migrate_to(self, encoding: LeafEncoding) -> bool:
        """Re-encode this leaf transactionally; False when already so.

        The replacement storage is built *off to the side* and verified
        against the live one before a single-assignment swap, so an
        exception anywhere in the re-encode (including an injected fault)
        leaves the leaf exactly as it was.
        """
        if encoding is self.encoding:
            return False
        fault_point("bptree.migrate.read")
        pairs = self.storage.to_pairs()
        fault_point("bptree.migrate.encode")
        replacement = _STORAGE_CLASSES[encoding](pairs, self.storage.capacity)
        if (
            replacement.num_entries() != len(pairs)
            or replacement.min_key() != self.storage.min_key()
            or replacement.max_key() != self.storage.max_key()
        ):  # pragma: no cover - storage classes are checked; last line of defense
            raise AssertionError(
                f"re-encode of leaf {self.leaf_id} to {encoding} lost entries"
            )
        fault_point("bptree.migrate.swap")
        self.storage = replacement
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LeafNode(id={self.leaf_id}, encoding={self.encoding}, "
            f"entries={self.num_entries()})"
        )
