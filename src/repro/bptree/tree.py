"""A full B+-tree over 64-bit integer keys and values.

Supports point lookups, inserts (with node splits), updates, deletes
(lazy, no rebalancing — matching the long-running-system behaviour the
paper motivates, where deletes leave gaps), range scans over the leaf
chain, and sorted bulk loading at a configurable fill factor.

All leaves share a single :class:`~repro.bptree.leaves.LeafEncoding`; the
single-encoding trees are the paper's *Gapped*, *Packed*, and *Succinct*
baselines.  The adaptive tree subclasses this one and migrates leaf
encodings at run-time.

Every structural step is counted in :attr:`BPlusTree.counters` so the
cost model can price traversals (see :mod:`repro.sim`).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.bptree.inner import Child, InnerNode
from repro.bptree.leaves import (
    DEFAULT_LEAF_CAPACITY,
    LEAF_PROBE_EVENTS,
    LeafEncoding,
    LeafNode,
)
from repro.obs.runtime import active_tracer
from repro.sim.counters import OpCounters

DEFAULT_INNER_FANOUT = 64
DEFAULT_FILL_FACTOR = 0.70


class BPlusTree:
    """B+-tree with one leaf encoding for all leaves."""

    stats_family = "bptree"

    def __init__(
        self,
        leaf_encoding: LeafEncoding = LeafEncoding.GAPPED,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        inner_fanout: int = DEFAULT_INNER_FANOUT,
    ) -> None:
        if leaf_capacity < 4:
            raise ValueError(f"leaf capacity must be >= 4, got {leaf_capacity}")
        if inner_fanout < 4:
            raise ValueError(f"inner fanout must be >= 4, got {inner_fanout}")
        self.leaf_encoding = leaf_encoding
        self.leaf_capacity = leaf_capacity
        self.inner_fanout = inner_fanout
        self.counters = OpCounters()
        self._root: Child = LeafNode([], leaf_encoding, leaf_capacity)
        self._num_keys = 0
        self._num_leaves = 1
        self._height = 1
        self._leaf_bytes = self._root.size_bytes()
        self._inner_bytes_cache: Optional[int] = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        pairs: Sequence[Tuple[int, int]],
        leaf_encoding: LeafEncoding = LeafEncoding.GAPPED,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        inner_fanout: int = DEFAULT_INNER_FANOUT,
        fill_factor: float = DEFAULT_FILL_FACTOR,
    ) -> "BPlusTree":
        """Build a tree from sorted unique pairs at ``fill_factor`` occupancy.

        The 70% default matches the occupancy the paper assumes for its
        leaf-size comparisons (Table 1).
        """
        tree = cls(leaf_encoding, leaf_capacity, inner_fanout)
        tree._bulk_load_into(pairs, fill_factor)
        return tree

    def _bulk_load_into(self, pairs: Sequence[Tuple[int, int]], fill_factor: float) -> None:
        if not 0.1 <= fill_factor <= 1.0:
            raise ValueError(f"fill factor must be in [0.1, 1.0], got {fill_factor}")
        if self._num_keys:
            raise ValueError("bulk load requires an empty tree")
        pairs = list(pairs)
        for (a, _), (b, _) in zip(pairs, pairs[1:]):
            if a >= b:
                raise ValueError("bulk load requires strictly sorted unique keys")
        if not pairs:
            return
        per_leaf = max(1, int(self.leaf_capacity * fill_factor))
        leaves: List[LeafNode] = []
        for start in range(0, len(pairs), per_leaf):
            leaf = LeafNode(
                pairs[start : start + per_leaf], self.leaf_encoding, self.leaf_capacity
            )
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)
        self._num_keys = len(pairs)
        self._num_leaves = len(leaves)
        self._root, self._height = self._build_inner_levels(leaves)
        self._leaf_bytes = sum(leaf.size_bytes() for leaf in leaves)
        self._inner_bytes_cache = None

    def _build_inner_levels(self, nodes: List[Child]) -> Tuple[Child, int]:
        height = 1
        level: List[Child] = nodes
        per_node = max(2, int(self.inner_fanout * DEFAULT_FILL_FACTOR))
        while len(level) > 1:
            parents: List[Child] = []
            for start in range(0, len(level), per_node):
                group = level[start : start + per_node]
                if len(group) == 1:
                    # A lone trailing child joins the previous parent.
                    previous = parents[-1]
                    assert isinstance(previous, InnerNode)
                    separator = self._subtree_min_key(group[0])
                    previous.keys.append(separator)
                    previous.children.append(group[0])
                    continue
                keys = [self._subtree_min_key(child) for child in group[1:]]
                parents.append(InnerNode(keys, list(group)))
            level = parents
            height += 1
        return level[0], height

    @staticmethod
    def _subtree_min_key(node: Child) -> int:
        while isinstance(node, InnerNode):
            node = node.children[0]
        min_key = node.min_key()
        if min_key is None:
            raise ValueError("cannot compute separator for an empty leaf")
        return min_key

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------
    def _descend(self, key: int) -> Tuple[LeafNode, List[Tuple[InnerNode, int]]]:
        """Walk to the leaf for ``key``; return it and the (node, child
        index) path for split propagation."""
        path: List[Tuple[InnerNode, int]] = []
        node: Child = self._root
        while isinstance(node, InnerNode):
            self.counters.add("inner_visit")
            index = node.child_index(key)
            path.append((node, index))
            node = node.children[index]
        return node, path

    def _descend_bounded(
        self, key: int
    ) -> Tuple[LeafNode, List[Tuple[InnerNode, int]], Optional[int]]:
        """Like :meth:`_descend`, plus the exclusive upper bound of the
        reached leaf's key range (None = +infinity).

        The bound is the smallest separator to the right of the taken
        child anywhere along the path; any key below it descends to the
        same leaf, which is what lets sorted batches reuse one descent
        for a whole run of keys.
        """
        path: List[Tuple[InnerNode, int]] = []
        node: Child = self._root
        upper: Optional[int] = None
        steps = 0
        while isinstance(node, InnerNode):
            steps += 1
            index = node.child_index(key)
            if index < len(node.keys):
                bound = node.keys[index]
                if upper is None or bound < upper:
                    upper = bound
            path.append((node, index))
            node = node.children[index]
        if steps:
            self.counters.add("inner_visit", steps)
        return node, path, upper

    @staticmethod
    def _is_sorted(keys: Sequence[int]) -> bool:
        return all(a <= b for a, b in zip(keys, keys[1:]))

    def find_leaf(self, key: int) -> Tuple[LeafNode, Optional[InnerNode]]:
        """The leaf responsible for ``key`` and its direct parent."""
        leaf, path = self._descend(key)
        parent = path[-1][0] if path else None
        return leaf, parent

    def lookup(self, key: int) -> Optional[int]:
        """Return the value stored under ``key``, or None."""
        tracer = active_tracer()
        if tracer is not None:
            return self._traced_lookup(tracer, key)
        leaf, _ = self._descend(key)
        self.counters.add(f"leaf_visit:{leaf.encoding}")
        return leaf.lookup(key)

    def _traced_lookup(self, tracer, key: int) -> Optional[int]:
        """:meth:`lookup` under an installed tracer (identical result).

        Emits a sampled ``lookup`` span with ``descent`` and
        ``leaf_probe:<encoding>`` children; the untraced path stays a
        straight-line function so the telemetry-off cost is one global
        read plus a branch.
        """
        span = tracer.op_start("lookup", family=self.stats_family)
        leaf, path = self._descend(key)
        self.counters.add(f"leaf_visit:{leaf.encoding}")
        value = leaf.lookup(key)
        if span is not None:
            tracer.event("descent", inner_visits=len(path), height=self._height)
            tracer.event(LEAF_PROBE_EVENTS[leaf.encoding], hit=value is not None)
            tracer.end(span)
        return value

    def insert(self, key: int, value: int) -> bool:
        """Insert ``key``; returns False when the key already existed (the
        value is overwritten either way)."""
        leaf, path = self._descend(key)
        self.counters.add(f"leaf_visit:{leaf.encoding}")
        existed = leaf.lookup(key) is not None
        self._count_leaf_write(leaf)
        before = leaf.size_bytes()
        if not leaf.insert(key, value):
            self._leaf_bytes += leaf.size_bytes() - before
            self._split_leaf(leaf, path)
            leaf, path = self._descend(key)
            before = leaf.size_bytes()
            if not leaf.insert(key, value):  # pragma: no cover - split guarantees room
                raise AssertionError("leaf still full after split")
        self._leaf_bytes += leaf.size_bytes() - before
        if not existed:
            self._num_keys += 1
        return not existed

    def lookup_many(self, keys: Sequence[int]) -> List[Optional[int]]:
        """Batched point lookups; returns one value (or None) per key.

        For sorted batches the tree descends once per *distinct leaf*
        instead of once per key: the cached leaf stays valid while the
        next key is below the smallest right-hand separator crossed on
        the way down.  Unsorted batches fall back to per-key lookups.
        Results are identical to ``[self.lookup(k) for k in keys]``.
        """
        keys = list(keys)
        if not keys:
            return []
        tracer = active_tracer()
        span = (
            tracer.op_start("lookup_many", family=self.stats_family, count=len(keys))
            if tracer is not None
            else None
        )
        if not self._is_sorted(keys):
            unsorted = [self.lookup(key) for key in keys]
            if span is not None:
                tracer.end(span, sorted=False)
            return unsorted
        results: List[Optional[int]] = []
        counters_add = self.counters.add
        lookup_run = None
        probe_event = ""
        visit_event = ""
        descents = 0
        limit = float("-inf")  # forces the first descent
        run: List[int] = []
        run_append = run.append
        for key in keys:
            if key >= limit:
                if run:
                    counters_add(visit_event, len(run))
                    results.extend(lookup_run(run))
                    if span is not None:
                        tracer.event(probe_event, count=len(run))
                    run.clear()
                leaf, _, upper = self._descend_bounded(key)
                descents += 1
                if span is not None:
                    tracer.event("descent", height=self._height)
                limit = float("inf") if upper is None else upper
                lookup_run = leaf.storage.lookup_run
                probe_event = LEAF_PROBE_EVENTS[leaf.encoding]
                visit_event = f"leaf_visit:{leaf.encoding}"
            run_append(key)
        if run:
            counters_add(visit_event, len(run))
            results.extend(lookup_run(run))
            if span is not None:
                tracer.event(probe_event, count=len(run))
        if span is not None:
            tracer.end(span, sorted=True, descents=descents)
        return results

    def insert_many(self, pairs: Sequence[Tuple[int, int]]) -> List[bool]:
        """Batched inserts; one bool per pair (True = key was new).

        Sorted batches reuse one descent per leaf run; a leaf split
        invalidates the cached leaf and the offending key re-descends,
        exactly like the retry in :meth:`insert`.  Unsorted batches fall
        back to per-key inserts.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        if not self._is_sorted([key for key, _ in pairs]):
            return [self.insert(key, value) for key, value in pairs]
        results: List[bool] = []
        leaf: Optional[LeafNode] = None
        path: List[Tuple[InnerNode, int]] = []
        upper: Optional[int] = None
        for key, value in pairs:
            if leaf is None or (upper is not None and key >= upper):
                leaf, path, upper = self._descend_bounded(key)
            self.counters.add(f"leaf_visit:{leaf.encoding}")
            existed = leaf.lookup(key) is not None
            self._count_leaf_write(leaf)
            before = leaf.size_bytes()
            if not leaf.insert(key, value):
                self._leaf_bytes += leaf.size_bytes() - before
                self._split_leaf(leaf, path)
                leaf, path, upper = self._descend_bounded(key)
                before = leaf.size_bytes()
                if not leaf.insert(key, value):  # pragma: no cover
                    raise AssertionError("leaf still full after split")
            self._leaf_bytes += leaf.size_bytes() - before
            if not existed:
                self._num_keys += 1
            results.append(not existed)
        return results

    def update(self, key: int, value: int) -> bool:
        """Overwrite the value of an existing ``key``; False if absent."""
        leaf, _ = self._descend(key)
        self.counters.add(f"leaf_visit:{leaf.encoding}")
        self._count_leaf_write(leaf)
        before = leaf.size_bytes()
        updated = leaf.update(key, value)
        self._leaf_bytes += leaf.size_bytes() - before
        return updated

    def delete(self, key: int) -> bool:
        """Delete ``key`` (lazy: leaves are never merged)."""
        leaf, _ = self._descend(key)
        self.counters.add(f"leaf_visit:{leaf.encoding}")
        self._count_leaf_write(leaf)
        before = leaf.size_bytes()
        removed = leaf.delete(key)
        self._leaf_bytes += leaf.size_bytes() - before
        if removed:
            self._num_keys -= 1
        return removed

    def _count_leaf_write(self, leaf: LeafNode) -> None:
        self.counters.add(f"leaf_write:{leaf.encoding}")
        if leaf.encoding is LeafEncoding.SUCCINCT:
            self.counters.add("leaf_rebuild_entry", leaf.num_entries())

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def _leaf_runs(self, leaf: LeafNode, start_key: int, count: int):
        """Walk the leaf chain from ``leaf``; yield ``(leaf, pairs)`` per
        visited leaf until ``count`` pairs were produced."""
        remaining = count
        current: Optional[LeafNode] = leaf
        first = True
        while current is not None and remaining > 0:
            self.counters.add(f"leaf_visit:{current.encoding}")
            taken: List[Tuple[int, int]] = []
            entries = (
                current.entries_from(start_key) if first else current.entries_from(0)
            )
            for pair in entries:
                taken.append(pair)
                remaining -= 1
                if remaining == 0:
                    break
            yield current, taken
            first = False
            current = current.next_leaf

    def scan(self, start_key: int, count: int) -> List[Tuple[int, int]]:
        """Up to ``count`` pairs with key >= ``start_key``, in key order."""
        if count <= 0:
            return []
        leaf, _ = self._descend(start_key)
        result: List[Tuple[int, int]] = []
        for _, taken in self._leaf_runs(leaf, start_key, count):
            result.extend(taken)
        return result

    def scan_leaves(self, start_key: int, count: int):
        """Like :meth:`scan` but yields ``(leaf, pairs_taken)`` per leaf —
        the hook the adaptive tree uses to sample iterator accesses."""
        if count <= 0:
            return
        leaf, _ = self._descend(start_key)
        yield from self._leaf_runs(leaf, start_key, count)

    def scan_many(
        self, requests: Sequence[Tuple[int, int]]
    ) -> List[List[Tuple[int, int]]]:
        """Batched range scans; one result list per ``(start_key, count)``.

        Sorted start keys reuse the previous descent while the next start
        still falls inside the cached leaf's key range; unsorted request
        batches fall back to per-request :meth:`scan` calls.
        """
        requests = list(requests)
        if not requests:
            return []
        if not self._is_sorted([start for start, _ in requests]):
            return [self.scan(start, count) for start, count in requests]
        results: List[List[Tuple[int, int]]] = []
        leaf: Optional[LeafNode] = None
        upper: Optional[int] = None
        for start, count in requests:
            if count <= 0:
                results.append([])
                continue
            if leaf is None or (upper is not None and start >= upper):
                leaf, _, upper = self._descend_bounded(start)
            result: List[Tuple[int, int]] = []
            for _, taken in self._leaf_runs(leaf, start, count):
                result.extend(taken)
            results.append(result)
        return results

    def iterator(self, start_key: Optional[int] = None):
        """A stateful :class:`~repro.bptree.iterator.TreeIterator`
        positioned at ``start_key`` (or the smallest entry)."""
        from repro.bptree.iterator import TreeIterator

        return TreeIterator(self, start_key)

    def items(self) -> Iterator[Tuple[int, int]]:
        """All pairs in key order."""
        node: Child = self._root
        while isinstance(node, InnerNode):
            node = node.children[0]
        current: Optional[LeafNode] = node
        while current is not None:
            yield from current.to_pairs()
            current = current.next_leaf

    # ------------------------------------------------------------------
    # Splits
    # ------------------------------------------------------------------
    def _split_leaf(self, leaf: LeafNode, path: List[Tuple[InnerNode, int]]) -> None:
        self.counters.add("leaf_split")
        pairs = leaf.to_pairs()
        middle = len(pairs) // 2
        before = leaf.size_bytes()
        # The left half stays in the existing wrapper so tracked identity
        # and the parent pointer survive; the right half is a new leaf.
        right = LeafNode(pairs[middle:], leaf.encoding, leaf.capacity)
        right.next_leaf = leaf.next_leaf
        leaf.storage = type(leaf.storage)(pairs[:middle], leaf.capacity)
        leaf.next_leaf = right
        self._leaf_bytes += leaf.size_bytes() + right.size_bytes() - before
        self._inner_bytes_cache = None
        self._num_leaves += 1
        separator = pairs[middle][0]
        self._on_leaf_split(leaf, right)
        self._insert_into_parent(leaf, separator, right, path)

    def _on_leaf_split(self, left: LeafNode, right: LeafNode) -> None:
        """Hook for subclasses (the adaptive tree propagates context)."""

    def _insert_into_parent(
        self,
        left: Child,
        separator: int,
        right: Child,
        path: List[Tuple[InnerNode, int]],
    ) -> None:
        if not path:
            self._root = InnerNode([separator], [left, right])
            self._height += 1
            return
        parent, child_index = path[-1]
        parent.insert_child(child_index, separator, right)
        if parent.is_overfull(self.inner_fanout):
            left_node, parent_separator, right_node = parent.split()
            self._insert_into_parent(
                left_node, parent_separator, right_node, path[:-1]
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_keys

    @property
    def num_keys(self) -> int:
        """Number of indexed keys."""
        return self._num_keys

    @property
    def num_leaves(self) -> int:
        """Number of leaf nodes."""
        return self._num_leaves

    @property
    def height(self) -> int:
        """The tree height (leaves included)."""
        return self._height

    @property
    def root(self) -> Child:
        """The root node."""
        return self._root

    def leaves(self) -> Iterator[LeafNode]:
        """Yield all leaf nodes in key order."""
        node: Child = self._root
        while isinstance(node, InnerNode):
            node = node.children[0]
        current: Optional[LeafNode] = node
        while current is not None:
            yield current
            current = current.next_leaf

    def inner_nodes(self) -> Iterator[InnerNode]:
        """Yield all inner nodes (preorder)."""
        stack: List[Child] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, InnerNode):
                yield node
                stack.extend(node.children)

    def size_bytes(self) -> int:
        """Modeled footprint: all inner nodes plus all leaves.

        Leaf bytes are tracked incrementally at every mutation site; inner
        bytes are cached and recomputed only after structural changes.
        """
        if self._inner_bytes_cache is None:
            self._inner_bytes_cache = sum(node.size_bytes() for node in self.inner_nodes())
        return self._inner_bytes_cache + self._leaf_bytes

    def note_leaf_resized(self, delta_bytes: int) -> None:
        """Subclasses report out-of-band leaf size changes (migrations)."""
        self._leaf_bytes += delta_bytes

    def leaf_encoding_census(self):
        """Mapping encoding -> (leaf count, average modeled bytes)."""
        totals = {}
        for leaf in self.leaves():
            count, total_bytes = totals.get(leaf.encoding, (0, 0))
            totals[leaf.encoding] = (count + 1, total_bytes + leaf.size_bytes())
        return {
            encoding: (count, total_bytes / count)
            for encoding, (count, total_bytes) in totals.items()
        }

    def stats(self) -> dict:
        """Uniform JSON-safe stats dict (see :mod:`repro.obs.introspect`)."""
        from repro.obs.introspect import base_stats

        stats = base_stats(
            self.stats_family,
            num_keys=self._num_keys,
            size_bytes=self.size_bytes(),
            census=self.leaf_encoding_census(),
            counters_snapshot=self.counters.snapshot(),
        )
        stats["height"] = self._height
        stats["num_leaves"] = self._num_leaves
        stats["leaf_encoding"] = str(self.leaf_encoding)
        return stats

    def describe(self) -> str:
        """Human-readable rendering of :meth:`stats`."""
        from repro.obs.introspect import format_stats

        return format_stats(self.stats())

    def verify(self) -> None:
        """Prove structural integrity; raises
        :class:`~repro.core.invariants.InvariantViolation` with every
        violated invariant (key order, leaf links, occupancy, byte
        accounting, census-vs-reality) when the tree is corrupt."""
        from repro.core.invariants import validate

        validate(self)

    def check_invariants(self) -> None:
        """Validate structural invariants (tests and debugging)."""
        leaves_via_chain = list(self.leaves())
        leaves_via_tree: List[LeafNode] = []

        def visit(node: Child, lo: Optional[int], hi: Optional[int]) -> None:
            if isinstance(node, InnerNode):
                assert node.keys == sorted(node.keys), "inner keys out of order"
                assert len(node.children) == len(node.keys) + 1
                bounds = [lo, *node.keys, hi]
                for index, child in enumerate(node.children):
                    visit(child, bounds[index], bounds[index + 1])
            else:
                leaves_via_tree.append(node)
                pairs = node.to_pairs()
                keys = [key for key, _ in pairs]
                assert keys == sorted(set(keys)), "leaf keys out of order"
                for key in keys:
                    if lo is not None:
                        assert key >= lo, f"key {key} below separator {lo}"
                    if hi is not None:
                        assert key < hi, f"key {key} not below separator {hi}"

        visit(self._root, None, None)
        assert leaves_via_tree == leaves_via_chain, "leaf chain disagrees with tree"
        assert sum(leaf.num_entries() for leaf in leaves_via_chain) == self._num_keys
        assert len(leaves_via_chain) == self._num_leaves
        actual_leaf_bytes = sum(leaf.size_bytes() for leaf in leaves_via_chain)
        assert actual_leaf_bytes == self._leaf_bytes, (
            f"incremental leaf bytes {self._leaf_bytes} != actual {actual_leaf_bytes}"
        )
