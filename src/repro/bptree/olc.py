"""Optimistic Lock Coupling for the Hybrid B+-tree (Section 4.1.5).

The paper synchronizes its Hybrid B+-tree with OLC as described by Leis
et al. (DaMoN 2016): every node carries a lock and a version counter;
readers descend without acquiring locks, remembering the version of each
node they pass and *validating* it after reading — a version change means
a writer interfered and the operation restarts.  Writers upgrade to the
real lock and bump the version on release.  Compared to classic lock
coupling this acquires no locks at all on the read path.

Python's GIL serializes bytecode, so this port cannot demonstrate
parallel speedup — but the protocol is implemented fully (versioned
locks, validation, restart loops, write upgrades) and its correctness
under concurrent readers/writers is what the tests exercise.

Structure-modifying operations (splits) are serialized by a tree-level
lock while still version-bumping every node they touch, a simplification
the original paper also permits for rare restructures.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Tuple

from repro.bptree.inner import InnerNode
from repro.bptree.leaves import DEFAULT_LEAF_CAPACITY, LeafEncoding, LeafNode
from repro.bptree.tree import DEFAULT_INNER_FANOUT, BPlusTree

_MAX_RESTARTS = 10_000


class OlcRestart(Exception):
    """Internal signal: version validation failed, retry from the root."""


class VersionedLock:
    """A lock with a version counter (the OLC primitive).

    The version is even when unlocked and odd while a writer holds the
    lock; every write releases with ``version + 2`` so readers can detect
    interference by comparing versions.
    """

    __slots__ = ("_lock", "_version")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._version = 0

    def read_version(self) -> int:
        """The version to validate against later; restarts while locked."""
        version = self._version
        if version & 1:
            raise OlcRestart()
        return version

    def validate(self, version: int) -> None:
        """Raise :class:`OlcRestart` if a writer interfered since
        ``version`` was read."""
        if self._version != version:
            raise OlcRestart()

    def upgrade(self, version: int) -> None:
        """Atomically move from an optimistic read to a write lock."""
        if not self._lock.acquire(blocking=False):
            raise OlcRestart()
        if self._version != version:
            self._lock.release()
            raise OlcRestart()
        self._version += 1  # odd: locked

    def write_lock(self) -> None:
        """Blocking write acquisition (structure modifications)."""
        self._lock.acquire()
        self._version += 1

    def write_unlock(self) -> None:
        """Release the write lock, bumping the version."""
        self._version += 1  # even again, but changed
        self._lock.release()

    @property
    def version(self) -> int:
        """The current version counter value."""
        return self._version

    @property
    def locked(self) -> bool:
        """True while a writer holds the lock."""
        return bool(self._version & 1)


_lock_creation_guard = threading.Lock()


def _lock_of(node) -> VersionedLock:
    """The node's versioned lock, created on first use.

    Creation is double-checked under a global guard: without it two
    threads could each attach a *different* lock to the same node and
    both believe they hold it exclusively.
    """
    lock = node.lock
    if lock is None:
        with _lock_creation_guard:
            lock = node.lock
            if lock is None:
                lock = VersionedLock()
                node.lock = lock
    return lock


class OlcBPlusTree(BPlusTree):
    """A B+-tree whose point operations use Optimistic Lock Coupling."""

    def __init__(
        self,
        leaf_encoding: LeafEncoding = LeafEncoding.GAPPED,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        inner_fanout: int = DEFAULT_INNER_FANOUT,
    ) -> None:
        super().__init__(leaf_encoding, leaf_capacity, inner_fanout)
        self._structure_lock = threading.Lock()
        # Tree-level aggregates (key count, size accounting) are shared
        # across leaves; += is not atomic in Python, so they get their
        # own tiny lock.
        self._meta_lock = threading.Lock()
        self.restarts = 0

    def _adjust_meta(self, key_delta: int, byte_delta: int) -> None:
        with self._meta_lock:
            self._num_keys += key_delta
            self._leaf_bytes += byte_delta

    # ------------------------------------------------------------------
    # OLC traversal
    # ------------------------------------------------------------------
    def _olc_descend(self, key: int) -> Tuple[LeafNode, int]:
        """Optimistic descent: returns (leaf, leaf_version)."""
        node = self._root
        version = _lock_of(node).read_version()
        if node is not self._root:
            # The root was swapped by a concurrent split after we read it.
            raise OlcRestart()
        while isinstance(node, InnerNode):
            child = node.route(key)
            # Validate after reading the routing decision: if a writer
            # changed this node meanwhile, the child may be wrong.
            lock = _lock_of(node)
            lock.validate(version)
            child_version = _lock_of(child).read_version()
            # The canonical OLC double validation: the parent must still
            # be unchanged *after* the child's version was read, or a
            # split may have moved our key range between the two reads.
            lock.validate(version)
            node, version = child, child_version
        return node, version

    def _with_restarts(self, operation):
        for attempt in range(_MAX_RESTARTS):
            try:
                return operation()
            except OlcRestart:
                self.restarts += 1
                # Backoff: yield the GIL so the conflicting writer can
                # finish; pure spinning livelocks under heavy contention.
                if attempt > 4:
                    time.sleep(0 if attempt < 64 else 0.0001)
                continue
        raise RuntimeError("OLC operation restarted too often")  # pragma: no cover

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def lookup(self, key: int) -> Optional[int]:
        """Return the value stored under ``key``, or None."""
        def run() -> Optional[int]:
            leaf, version = self._olc_descend(key)
            self.counters.add(f"leaf_visit:{leaf.encoding}")
            value = leaf.lookup(key)
            _lock_of(leaf).validate(version)
            return value

        return self._with_restarts(run)

    def insert(self, key: int, value: int) -> bool:
        """Insert ``key``; returns False when the key already existed."""
        def run() -> bool:
            leaf, version = self._olc_descend(key)
            lock = _lock_of(leaf)
            lock.upgrade(version)
            try:
                if leaf.num_entries() < leaf.capacity or leaf.lookup(key) is not None:
                    self.counters.add(f"leaf_visit:{leaf.encoding}")
                    existed = leaf.lookup(key) is not None
                    self._count_leaf_write(leaf)
                    before = leaf.size_bytes()
                    inserted = leaf.insert(key, value)
                    assert inserted, "leaf had room but refused the insert"
                    self._adjust_meta(
                        0 if existed else 1, leaf.size_bytes() - before
                    )
                    return not existed
            finally:
                lock.write_unlock()
            # Leaf full: fall back to the serialized split path.
            return self._insert_with_split(key, value)

        return self._with_restarts(run)

    def _insert_with_split(self, key: int, value: int) -> bool:
        with self._structure_lock:
            leaf, path = self._descend(key)
            locks = [_lock_of(node) for node, _ in path] + [_lock_of(leaf)]
            for lock in locks:
                lock.write_lock()
            try:
                self.counters.add(f"leaf_visit:{leaf.encoding}")
                existed = leaf.lookup(key) is not None
                self._count_leaf_write(leaf)
                before = leaf.size_bytes()
                if not leaf.insert(key, value):
                    self._adjust_meta(0, leaf.size_bytes() - before)
                    with self._meta_lock:
                        # The base split adjusts _leaf_bytes directly;
                        # holding the meta lock keeps that exchange atomic
                        # against concurrent fast-path inserts.
                        self._split_leaf(leaf, path)
                    target, _ = self._descend(key)
                    before = target.size_bytes()
                    if not target.insert(key, value):  # pragma: no cover
                        raise AssertionError("leaf still full after split")
                    self._adjust_meta(0, target.size_bytes() - before)
                else:
                    self._adjust_meta(0, leaf.size_bytes() - before)
                if not existed:
                    self._adjust_meta(1, 0)
                return not existed
            finally:
                for lock in reversed(locks):
                    lock.write_unlock()

    def update(self, key: int, value: int) -> bool:
        """Overwrite the value of an existing ``key``; False if absent."""
        def run() -> bool:
            leaf, version = self._olc_descend(key)
            lock = _lock_of(leaf)
            lock.upgrade(version)
            try:
                self.counters.add(f"leaf_visit:{leaf.encoding}")
                self._count_leaf_write(leaf)
                before = leaf.size_bytes()
                updated = leaf.update(key, value)
                self._adjust_meta(0, leaf.size_bytes() - before)
                return updated
            finally:
                lock.write_unlock()

        return self._with_restarts(run)

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False when it was absent."""
        def run() -> bool:
            leaf, version = self._olc_descend(key)
            lock = _lock_of(leaf)
            lock.upgrade(version)
            try:
                self.counters.add(f"leaf_visit:{leaf.encoding}")
                self._count_leaf_write(leaf)
                before = leaf.size_bytes()
                removed = leaf.delete(key)
                self._adjust_meta(-1 if removed else 0, leaf.size_bytes() - before)
                return removed
            finally:
                lock.write_unlock()

        return self._with_restarts(run)

    def scan(self, start_key: int, count: int) -> List[Tuple[int, int]]:
        """OLC range scan: validates every visited leaf, restarts on
        interference."""
        if count <= 0:
            return []

        def run() -> List[Tuple[int, int]]:
            leaf, version = self._olc_descend(start_key)
            result: List[Tuple[int, int]] = []
            current: Optional[LeafNode] = leaf
            current_version = version
            first = True
            while current is not None and len(result) < count:
                self.counters.add(f"leaf_visit:{current.encoding}")
                try:
                    entries = (
                        current.entries_from(start_key)
                        if first
                        else current.entries_from(0)
                    )
                    taken = []
                    for pair in entries:
                        taken.append(pair)
                        if len(result) + len(taken) >= count:
                            break
                except IndexError:
                    # A concurrent writer shifted the storage under us.
                    raise OlcRestart() from None
                next_leaf = current.next_leaf
                _lock_of(current).validate(current_version)
                result.extend(taken)
                first = False
                current = next_leaf
                if current is not None:
                    current_version = _lock_of(current).read_version()
            return result

        return self._with_restarts(run)
