"""B+-tree inner nodes.

Inner nodes use the universal encoding throughout (the paper adapts leaf
encodings only — leaves hold all keys and values and dominate the
footprint).  A node with ``n`` separator keys has ``n + 1`` children;
child ``i`` covers keys strictly below ``keys[i]``, the last child covers
the rest.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Union

from repro.bptree.leaves import LeafNode

_HEADER_BYTES = 16
_KEY_BYTES = 8
_POINTER_BYTES = 8

Child = Union["InnerNode", LeafNode]


class InnerNode:
    """A routing node: sorted separator keys and child pointers."""

    __slots__ = ("keys", "children", "lock")

    def __init__(self, keys: List[int], children: List[Child]) -> None:
        self.lock = None  # OlcBPlusTree attaches a VersionedLock here
        if len(children) != len(keys) + 1:
            raise ValueError(
                f"inner node needs len(keys)+1 children, got {len(keys)} keys "
                f"and {len(children)} children"
            )
        self.keys = keys
        self.children = children

    def child_index(self, key: int) -> int:
        """Index of the child subtree responsible for ``key``."""
        return bisect.bisect_right(self.keys, key)

    def route(self, key: int) -> Child:
        """Return the child subtree responsible for ``key``."""
        return self.children[self.child_index(key)]

    def insert_child(self, index: int, separator: int, right_child: Child) -> None:
        """After child ``index`` split, register its new right sibling."""
        self.keys.insert(index, separator)
        self.children.insert(index + 1, right_child)

    def is_overfull(self, fanout: int) -> bool:
        """Return True when the node exceeds ``fanout`` children."""
        return len(self.children) > fanout

    def split(self) -> tuple:
        """Split into (left, separator, right); self becomes the left node."""
        middle = len(self.keys) // 2
        separator = self.keys[middle]
        right = InnerNode(self.keys[middle + 1 :], self.children[middle + 1 :])
        self.keys = self.keys[:middle]
        self.children = self.children[: middle + 1]
        return self, separator, right

    def size_bytes(self) -> int:
        """Return the modeled C++ footprint in bytes."""
        return (
            _HEADER_BYTES
            + len(self.keys) * _KEY_BYTES
            + len(self.children) * _POINTER_BYTES
        )

    def find_child_position(self, child: Child) -> Optional[int]:
        """Linear scan for ``child``'s slot (used when replacing pointers)."""
        for position, candidate in enumerate(self.children):
            if candidate is child:
                return position
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InnerNode(keys={len(self.keys)}, children={len(self.children)})"
