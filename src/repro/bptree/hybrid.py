"""AHI-BTree: the workload-adaptive Hybrid B+-tree (Section 4.1).

Subclasses :class:`~repro.bptree.tree.BPlusTree`, defaults all leaves to
the Succinct (cold) encoding, and wires an
:class:`~repro.core.manager.AdaptationManager` into every access path:

* lookups, inserts, and scan iterator steps ask ``is_sample()`` and, when
  sampled, ``track()`` the touched leaf with its parent as context;
* inserts into a Succinct leaf *eagerly* migrate it to Gapped first (the
  paper: "AHI-BTree eagerly migrates Succinct nodes to the Gapped
  encoding on inserts and defers their compaction until they are cold
  again");
* leaf splits propagate the new sibling's context to the manager;
* the manager calls back into :meth:`migrate` / :meth:`encoding_census` /
  :meth:`used_memory` to drive encoding migrations under the configured
  memory budget.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.bptree.inner import InnerNode
from repro.bptree.leaves import (
    DEFAULT_LEAF_CAPACITY,
    LEAF_PROBE_EVENTS,
    LeafEncoding,
    LeafNode,
)
from repro.bptree.migrate import migrate_leaf
from repro.bptree.tree import DEFAULT_INNER_FANOUT, BPlusTree
from repro.core.access import AccessType
from repro.core.budget import MemoryBudget
from repro.core.heuristics import Heuristic
from repro.core.manager import AdaptationManager, ManagerConfig
from repro.obs.runtime import active_tracer

# Encodings ordered compact -> fast, as the manager expects.
BTREE_ENCODING_ORDER: Tuple[LeafEncoding, ...] = (
    LeafEncoding.SUCCINCT,
    LeafEncoding.PACKED,
    LeafEncoding.GAPPED,
)


class AdaptiveBPlusTree(BPlusTree):
    """The adaptive Hybrid B+-tree (AHI-BTree)."""

    stats_family = "bptree_adaptive"

    def __init__(
        self,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        inner_fanout: int = DEFAULT_INNER_FANOUT,
        cold_encoding: LeafEncoding = LeafEncoding.SUCCINCT,
        budget: Optional[MemoryBudget] = None,
        heuristic: Optional[Heuristic] = None,
        manager_config: Optional[ManagerConfig] = None,
        eager_insert_expansion: bool = True,
    ) -> None:
        super().__init__(cold_encoding, leaf_capacity, inner_fanout)
        self.eager_insert_expansion = eager_insert_expansion
        if manager_config is None:
            manager_config = ManagerConfig(
                encoding_order=BTREE_ENCODING_ORDER,
                budget=budget or MemoryBudget.unbounded(),
                heuristic=heuristic,
            )
        self.manager = AdaptationManager(self, manager_config)

    @classmethod
    def bulk_load_adaptive(
        cls,
        pairs: Sequence[Tuple[int, int]],
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        inner_fanout: int = DEFAULT_INNER_FANOUT,
        fill_factor: float = 0.70,
        cold_encoding: LeafEncoding = LeafEncoding.SUCCINCT,
        budget: Optional[MemoryBudget] = None,
        heuristic: Optional[Heuristic] = None,
        manager_config: Optional[ManagerConfig] = None,
        eager_insert_expansion: bool = True,
    ) -> "AdaptiveBPlusTree":
        """Bulk load sorted pairs, all leaves starting cold."""
        tree = cls(
            leaf_capacity=leaf_capacity,
            inner_fanout=inner_fanout,
            cold_encoding=cold_encoding,
            budget=budget,
            heuristic=heuristic,
            manager_config=manager_config,
            eager_insert_expansion=eager_insert_expansion,
        )
        tree._bulk_load_into(pairs, fill_factor)
        return tree

    # ------------------------------------------------------------------
    # Tracked access paths
    # ------------------------------------------------------------------
    def lookup(self, key: int) -> Optional[int]:
        """Return the value stored under ``key``, or None."""
        tracer = active_tracer()
        if tracer is not None:
            return self._traced_lookup(tracer, key)
        leaf, path = self._descend(key)
        self.counters.add(f"leaf_visit:{leaf.encoding}")
        self.counters.add("sample_check")
        if self.manager.is_sample():
            parent = path[-1][0] if path else None
            self.manager.track(leaf, AccessType.READ, context=parent)
        return leaf.lookup(key)

    def _traced_lookup(self, tracer, key: int) -> Optional[int]:
        """Tracked lookup under an installed tracer (identical result)."""
        span = tracer.op_start("lookup", family=self.stats_family)
        leaf, path = self._descend(key)
        self.counters.add(f"leaf_visit:{leaf.encoding}")
        self.counters.add("sample_check")
        sampled = self.manager.is_sample()
        if sampled:
            parent = path[-1][0] if path else None
            self.manager.track(leaf, AccessType.READ, context=parent)
        value = leaf.lookup(key)
        if span is not None:
            tracer.event("descent", inner_visits=len(path), height=self._height)
            tracer.event(LEAF_PROBE_EVENTS[leaf.encoding], hit=value is not None)
            tracer.end(span, sampled=sampled)
        return value

    def _maybe_expand_for_insert(self, leaf: LeafNode, parent) -> None:
        """Eager expansion: writes into compact leaves are expensive, so
        the tree switches the leaf to the write-optimized encoding
        immediately and lets the next cold classification compact it —
        unless the memory budget is already exhausted."""
        if leaf.encoding is LeafEncoding.GAPPED or not self.eager_insert_expansion:
            return
        budget = self.manager.config.budget
        if budget.exceeded(self.size_bytes(), self.num_keys):
            return
        source = leaf.encoding
        before = leaf.size_bytes()
        try:
            migrated = migrate_leaf(leaf, LeafEncoding.GAPPED, self.counters)
        # repro: ignore[RA002] -- deliberate containment: a failed eager
        # expansion must never fail the insert that triggered it.
        except Exception:
            # A failed eager expansion is an optimization miss, not an
            # error: the transactional migration left the leaf intact, so
            # the insert proceeds on the old encoding.
            self.counters.add(f"eager_expansion_failed:{source}")
            migrated = False
        if migrated:
            self.note_leaf_resized(leaf.size_bytes() - before)
            self.counters.add(f"eager_expansion:{source}")
            # Register so a later cold classification compacts it.
            self.manager.register(leaf, context=parent)

    def insert(self, key: int, value: int) -> bool:
        """Insert ``key``; returns False when the key already existed."""
        leaf, path = self._descend(key)
        parent = path[-1][0] if path else None
        self._maybe_expand_for_insert(leaf, parent)
        self.counters.add(f"leaf_visit:{leaf.encoding}")
        self.counters.add("sample_check")
        if self.manager.is_sample():
            self.manager.track(leaf, AccessType.INSERT, context=parent)
        existed = leaf.lookup(key) is not None
        self._count_leaf_write(leaf)
        before = leaf.size_bytes()
        if not leaf.insert(key, value):
            self._leaf_bytes += leaf.size_bytes() - before
            self._split_leaf(leaf, path)
            leaf, path = self._descend(key)
            before = leaf.size_bytes()
            if not leaf.insert(key, value):  # pragma: no cover
                raise AssertionError("leaf still full after split")
        self._leaf_bytes += leaf.size_bytes() - before
        if not existed:
            self._num_keys += 1
        return not existed

    def update(self, key: int, value: int) -> bool:
        """Overwrite the value of an existing ``key``; False if absent."""
        leaf, path = self._descend(key)
        self.counters.add(f"leaf_visit:{leaf.encoding}")
        self.counters.add("sample_check")
        if self.manager.is_sample():
            parent = path[-1][0] if path else None
            self.manager.track(leaf, AccessType.UPDATE, context=parent)
        self._count_leaf_write(leaf)
        before = leaf.size_bytes()
        updated = leaf.update(key, value)
        self._leaf_bytes += leaf.size_bytes() - before
        return updated

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False when it was absent."""
        leaf, path = self._descend(key)
        self.counters.add(f"leaf_visit:{leaf.encoding}")
        self.counters.add("sample_check")
        if self.manager.is_sample():
            parent = path[-1][0] if path else None
            self.manager.track(leaf, AccessType.DELETE, context=parent)
        self._count_leaf_write(leaf)
        before = leaf.size_bytes()
        removed = leaf.delete(key)
        self._leaf_bytes += leaf.size_bytes() - before
        if removed:
            self._num_keys -= 1
            if leaf.num_entries() == 0:
                self.manager.forget(leaf)
        return removed

    def scan(self, start_key: int, count: int) -> List[Tuple[int, int]]:
        """Range scan; each visited leaf is a sampling opportunity
        (iterator-based tracking, Section 4.1.3)."""
        result: List[Tuple[int, int]] = []
        for leaf, taken in self.scan_leaves(start_key, count):
            self.counters.add("sample_check")
            if self.manager.is_sample():
                    self.manager.track(leaf, AccessType.SCAN)
            result.extend(taken)
        return result

    # ------------------------------------------------------------------
    # Batched access paths
    # ------------------------------------------------------------------
    def _flush_sampled_group(self, leaf, parent, count: int, access) -> None:
        """Model ``count`` accesses to one leaf through the sample gate.

        One batched sampler drain replaces ``count`` individual
        ``is_sample()`` calls; the sampler state and the set of tracked
        (leaf, access) events are identical to the per-access loop
        because every access in the group touches the same leaf.
        """
        if not count:
            return
        self.counters.add("sample_check", count)
        for _ in self.manager.consume(count):
            self.manager.track(leaf, access, context=parent)

    def lookup_many(self, keys: Sequence[int]) -> List[Optional[int]]:
        """Batched tracked lookups (see :meth:`BPlusTree.lookup_many`)."""
        keys = list(keys)
        if not keys:
            return []
        tracer = active_tracer()
        span = (
            tracer.op_start("lookup_many", family=self.stats_family, count=len(keys))
            if tracer is not None
            else None
        )
        if not self._is_sorted(keys):
            unsorted = [self.lookup(key) for key in keys]
            if span is not None:
                tracer.end(span, sorted=False)
            return unsorted
        results: List[Optional[int]] = []
        counters_add = self.counters.add
        leaf: Optional[LeafNode] = None
        parent = None
        lookup_run = None
        probe_event = ""
        visit_event = ""
        descents = 0
        limit = float("-inf")  # forces the first descent
        run: List[int] = []
        run_append = run.append
        for key in keys:
            if key >= limit:
                if run:
                    counters_add(visit_event, len(run))
                    results.extend(lookup_run(run))
                    if span is not None:
                        tracer.event(probe_event, count=len(run))
                    self._flush_sampled_group(leaf, parent, len(run), AccessType.READ)
                    run.clear()
                leaf, path, upper = self._descend_bounded(key)
                descents += 1
                if span is not None:
                    tracer.event("descent", height=self._height)
                limit = float("inf") if upper is None else upper
                parent = path[-1][0] if path else None
                lookup_run = leaf.storage.lookup_run
                probe_event = LEAF_PROBE_EVENTS[leaf.encoding]
                visit_event = f"leaf_visit:{leaf.encoding}"
            run_append(key)
        if run:
            counters_add(visit_event, len(run))
            results.extend(lookup_run(run))
            if span is not None:
                tracer.event(probe_event, count=len(run))
            self._flush_sampled_group(leaf, parent, len(run), AccessType.READ)
        if span is not None:
            tracer.end(span, sorted=True, descents=descents)
        return results

    def insert_many(self, pairs: Sequence[Tuple[int, int]]) -> List[bool]:
        """Batched tracked inserts (see :meth:`BPlusTree.insert_many`).

        Eager expansion runs once per descended leaf instead of once per
        key — after the first expansion the leaf is already Gapped, so
        the per-key re-check of :meth:`insert` would be a no-op anyway.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        if not self._is_sorted([key for key, _ in pairs]):
            return [self.insert(key, value) for key, value in pairs]
        results: List[bool] = []
        leaf: Optional[LeafNode] = None
        parent = None
        path = []
        upper: Optional[int] = None
        group = 0
        for key, value in pairs:
            if leaf is None or (upper is not None and key >= upper):
                self._flush_sampled_group(leaf, parent, group, AccessType.INSERT)
                group = 0
                leaf, path, upper = self._descend_bounded(key)
                parent = path[-1][0] if path else None
                self._maybe_expand_for_insert(leaf, parent)
            self.counters.add(f"leaf_visit:{leaf.encoding}")
            group += 1
            existed = leaf.lookup(key) is not None
            self._count_leaf_write(leaf)
            before = leaf.size_bytes()
            if not leaf.insert(key, value):
                self._leaf_bytes += leaf.size_bytes() - before
                self._split_leaf(leaf, path)
                self._flush_sampled_group(leaf, parent, group, AccessType.INSERT)
                group = 0
                leaf, path, upper = self._descend_bounded(key)
                parent = path[-1][0] if path else None
                before = leaf.size_bytes()
                if not leaf.insert(key, value):  # pragma: no cover
                    raise AssertionError("leaf still full after split")
            self._leaf_bytes += leaf.size_bytes() - before
            if not existed:
                self._num_keys += 1
            results.append(not existed)
        self._flush_sampled_group(leaf, parent, group, AccessType.INSERT)
        return results

    def scan_many(
        self, requests: Sequence[Tuple[int, int]]
    ) -> List[List[Tuple[int, int]]]:
        """Batched tracked range scans.

        Each request drains the sampler once for all leaves it visited
        instead of gating every leaf individually; sampled offsets map
        back to the corresponding leaf in visit order.
        """
        requests = list(requests)
        if not requests:
            return []
        results: List[List[Tuple[int, int]]] = []
        for start, count in requests:
            result: List[Tuple[int, int]] = []
            visited: List[LeafNode] = []
            for leaf, taken in self.scan_leaves(start, count):
                visited.append(leaf)
                result.extend(taken)
            self.counters.add("sample_check", len(visited))
            for offset in self.manager.consume(len(visited)):
                self.manager.track(visited[offset], AccessType.SCAN)
            results.append(result)
        return results

    # ------------------------------------------------------------------
    # Split context propagation (Section 4.1.4)
    # ------------------------------------------------------------------
    def _on_leaf_split(self, left: LeafNode, right: LeafNode) -> None:
        # The split may hang both halves under a (possibly new) parent;
        # refresh the tracked context lazily: parents are re-resolved on
        # the next sampled access, and the stale pointer is only used for
        # locality hints, so updating the left leaf's entry suffices here.
        self.manager.update_context(left, None)

    # ------------------------------------------------------------------
    # AdaptiveIndex protocol (manager callbacks)
    # ------------------------------------------------------------------
    def tracked_population(self) -> int:
        """Number of trackable units (n in Equation 1)."""
        return self.num_leaves

    def used_memory(self) -> int:
        """Modeled index size in bytes (AdaptiveIndex protocol)."""
        return self.size_bytes()

    def encoding_of(self, identifier: Hashable) -> Optional[LeafEncoding]:
        """Current encoding of a tracked unit (AdaptiveIndex protocol)."""
        if isinstance(identifier, LeafNode):
            if identifier.num_entries() == 0 and identifier is not self._root:
                return None  # emptied leaf: treat as vanished
            return identifier.encoding
        return None

    def migrate(
        self,
        identifier: Hashable,
        target_encoding: LeafEncoding,
        context: object,
    ) -> bool:
        """Re-encode one unit via its callback (AdaptiveIndex protocol)."""
        if not isinstance(identifier, LeafNode):
            return False
        before = identifier.size_bytes()
        migrated = migrate_leaf(identifier, target_encoding, self.counters)
        if migrated:
            self.note_leaf_resized(identifier.size_bytes() - before)
        return migrated

    def encoding_census(self) -> Dict[LeafEncoding, Tuple[int, float]]:
        """Encoding -> (count, avg bytes) map (AdaptiveIndex protocol)."""
        return self.leaf_encoding_census()

    # num_keys property is inherited from BPlusTree and satisfies the
    # AdaptiveIndex protocol.

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_size_bytes(self) -> int:
        """Index plus the sampling framework's own footprint."""
        return self.size_bytes() + self.manager.size_bytes()

    def encoding_counts(self) -> Dict[LeafEncoding, int]:
        """Encoding -> leaf count for the current layout."""
        counts: Dict[LeafEncoding, int] = {}
        for leaf in self.leaves():
            counts[leaf.encoding] = counts.get(leaf.encoding, 0) + 1
        return counts

    def stats(self) -> dict:
        """Uniform stats dict including the adaptation block."""
        from repro.obs.introspect import base_stats

        stats = base_stats(
            self.stats_family,
            num_keys=self._num_keys,
            size_bytes=self.size_bytes(),
            census=self.leaf_encoding_census(),
            counters_snapshot=self.counters.snapshot(),
            manager=self.manager,
        )
        stats["height"] = self._height
        stats["num_leaves"] = self._num_leaves
        stats["total_size_bytes"] = self.total_size_bytes()
        return stats


def find_parent(tree: BPlusTree, leaf: LeafNode) -> Optional[InnerNode]:
    """Resolve a leaf's parent by key descent (context refresh helper)."""
    min_key = leaf.min_key()
    if min_key is None:
        return None
    _, parent = tree.find_leaf(min_key)
    return parent
