"""Stateful B+-tree iterators (Section 3.1.2 / 4.1.3).

The paper's interface tracks "lookups, inserts, or iterator increments
and dereferencing operators"; scans in its B+-tree hold an iterator that
keeps a pointer to the current parent so sampled leaf accesses can be
tracked with context.  :class:`TreeIterator` is that object: positioned
with :meth:`seek`, advanced with :meth:`advance` (or Python iteration),
it walks the leaf chain and — on the adaptive tree — reports each *leaf
transition* to the adaptation manager as a sampled scan access.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bptree.leaves import LeafNode
from repro.core.access import AccessType


class TreeIterator:
    """A forward iterator over a B+-tree's leaf chain.

    The iterator is *fail-soft* under mutation: it holds a direct leaf
    reference, so deletes and encoding migrations do not invalidate it,
    while splits may cause a few entries to be re-visited (the snapshot
    semantics of the paper's implementation under OLC are out of scope
    for the single-threaded iterator).
    """

    def __init__(self, tree, start_key: Optional[int] = None) -> None:
        self._tree = tree
        self._leaf: Optional[LeafNode] = None
        self._entries: Tuple = ()
        self._position = 0
        self._exhausted = True
        if start_key is not None:
            self.seek(start_key)
        else:
            self.seek_first()

    # ------------------------------------------------------------------
    # Positioning
    # ------------------------------------------------------------------
    def seek(self, key: int) -> "TreeIterator":
        """Position at the first entry with key >= ``key``."""
        leaf, _ = self._tree.find_leaf(key)
        self._load_leaf(leaf, from_key=key)
        self._skip_empty_leaves()
        return self

    def seek_first(self) -> "TreeIterator":
        """Position at the smallest entry."""
        node = self._tree.root
        from repro.bptree.inner import InnerNode

        while isinstance(node, InnerNode):
            node = node.children[0]
        self._load_leaf(node, from_key=None)
        self._skip_empty_leaves()
        return self

    def _load_leaf(self, leaf: Optional[LeafNode], from_key: Optional[int]) -> None:
        self._leaf = leaf
        if leaf is None:
            self._entries = ()
            self._position = 0
            self._exhausted = True
            return
        self._track_leaf(leaf)
        if from_key is None:
            self._entries = tuple(leaf.to_pairs())
        else:
            self._entries = tuple(leaf.entries_from(from_key))
        self._position = 0
        self._exhausted = False

    def _skip_empty_leaves(self) -> None:
        while not self._exhausted and self._position >= len(self._entries):
            next_leaf = self._leaf.next_leaf if self._leaf is not None else None
            self._load_leaf(next_leaf, from_key=None)

    def _track_leaf(self, leaf: LeafNode) -> None:
        """Sampled iterator tracking (only the adaptive tree has a manager)."""
        manager = getattr(self._tree, "manager", None)
        if manager is None:
            return
        self._tree.counters.add("sample_check")
        if manager.is_sample():
            manager.track(leaf, AccessType.SCAN)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def valid(self) -> bool:
        """True while the iterator points at an entry."""
        return not self._exhausted

    def entry(self) -> Tuple[int, int]:
        """The (key, value) under the cursor (dereference)."""
        if self._exhausted:
            raise StopIteration("iterator exhausted")
        return self._entries[self._position]

    @property
    def key(self) -> int:
        """The key under the cursor."""
        return self.entry()[0]

    @property
    def value(self) -> int:
        """The value under the cursor."""
        return self.entry()[1]

    def advance(self) -> bool:
        """Move to the next entry; False when the iterator is exhausted."""
        if self._exhausted:
            return False
        self._position += 1
        self._skip_empty_leaves()
        return not self._exhausted

    # ------------------------------------------------------------------
    # Python iteration protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> "TreeIterator":
        return self

    def __next__(self) -> Tuple[int, int]:
        if self._exhausted:
            raise StopIteration
        current = self.entry()
        self.advance()
        return current
