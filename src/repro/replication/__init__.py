"""Divergent per-replica adaptation: replica sets and cost-based routing.

Where :mod:`repro.service` keeps exactly one copy of each shard, this
package keeps **N read replicas per shard** and — the point — lets each
replica's :class:`~repro.core.manager.AdaptationManager` diverge under a
named :class:`~repro.replication.profiles.ReplicaProfile` (point-tuned,
scan-tuned, memory-squeezed).  Reads are steered by a
:class:`~repro.replication.routing.ReplicaRouter` that scores every
replica from its measured modeled cost, its encoding census, and its
staleness; writes fan out to every live replica through the existing
``write_gate`` discipline and per-replica WALs, so durability semantics
are unchanged.

This is the "divergent index design" idea (per-replica index selection
for replicated databases) transplanted onto the paper's adaptive
*encodings*: instead of choosing different secondary indexes per
replica, each copy of the same B+-tree migrates its leaves differently
because the router only shows it the slice of the workload it is best
at.  See ``docs/replication.md`` for the full design.
"""

from repro.replication.profiles import (
    REPLICA_PROFILES,
    ReplicaProfile,
    resolve_profiles,
)
from repro.replication.replica_set import (
    Replica,
    ReplicaSetUnavailableError,
    ReplicatedShard,
    build_replicated_shard,
)
from repro.replication.routing import ReplicaRouter

__all__ = [
    "REPLICA_PROFILES",
    "Replica",
    "ReplicaProfile",
    "ReplicaRouter",
    "ReplicaSetUnavailableError",
    "ReplicatedShard",
    "build_replicated_shard",
    "resolve_profiles",
]
