"""A replica set behind the :class:`~repro.service.shard.Shard` surface.

:class:`ReplicatedShard` *is a* service shard — the
:class:`~repro.service.router.ShardRouter` routes to it, gates writes on
it, and checkpoints it exactly like a plain shard — but inside it keeps
N :class:`Replica` copies of the same key range, each an ordinary
:class:`~repro.service.shard.Shard` wrapping its own adaptive index and
(when durable) its own WAL.

**Reads** are steered to one replica by the
:class:`~repro.replication.routing.ReplicaRouter`; a replica that fails
a read is marked down and the batch is rerouted to a survivor without
surfacing the failure.  **Writes** fan out to every live replica in
replica order (under the replicated shard's operation lock, so all
replica WALs record the same append order and their LSNs stay
comparable).  A replica whose WAL append fails — a poisoned log, a full
disk — is fenced and marked down while the survivors acknowledge; the
write only fails when *no* replica durably accepted it.  Down replicas
count the writes they miss (``behind``), which is both the router's
staleness penalty and recovery's signal for which copy is
authoritative.

Invariant: every *acknowledged* write is applied (and, when durable,
logged) on every replica that is up at acknowledgment time — so any
surviving replica alone can serve the full acked history, and recovery
reconciles stragglers from the copy with the highest WAL LSN.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, TypeVar

from repro.obs.runtime import active_registry
from repro.replication.profiles import ReplicaProfile
from repro.replication.routing import ReplicaRouter
from repro.service.partition import Key
from repro.service.shard import Pair, Shard, span_if_traced

T = TypeVar("T")

#: RA004: span-name literal for replicated shard operations.
_REPLICA_OP_SPAN = "replication.replica_op"

#: RA004: literal instrument names for the replica-set layer.
_COUNTERS = {
    "downs": "replication.replicas_marked_down",
    "fallbacks": "replication.fallbacks",
}
_REPLICAS_UP_GAUGE = "replication.replicas_up"


class ReplicaSetUnavailableError(RuntimeError):
    """Every replica of a shard is down; the operation cannot proceed."""


def _counter_delta(
    before: Mapping[str, int], after: Mapping[str, int]
) -> Dict[str, int]:
    """Structural events that happened between two counter snapshots."""
    delta: Dict[str, int] = {}
    for event, count in after.items():
        changed = count - before.get(event, 0)
        if changed:
            delta[event] = changed
    return delta


class Replica:
    """One copy of a shard: an inner Shard plus divergence/health state."""

    def __init__(self, replica_id: int, profile: ReplicaProfile, shard: Shard) -> None:
        self.replica_id = replica_id
        self.profile = profile
        #: The inner plain shard: owns the index, the op lock, and (when
        #: durable) this replica's private WAL.
        self.shard = shard
        self.down = False
        self.down_reason: Optional[str] = None
        #: Writes fanned out while this replica was down (staleness).
        self.behind = 0
        self.reads_routed = 0
        #: Router state: measured modeled ns/op per read class, and how
        #: many batches of each class were routed here (sampling cadence).
        self.cost_ewma: Dict[str, float] = {}
        self.routed_batches: Dict[str, int] = {}


class ReplicatedShard(Shard):
    """N divergent replicas presented as one service shard."""

    is_replicated = True

    def __init__(
        self,
        shard_id: int,
        replicas: Sequence[Replica],
        router: Optional[ReplicaRouter] = None,
    ) -> None:
        if not replicas:
            raise ValueError("a replicated shard needs at least one replica")
        primary = replicas[0]
        super().__init__(
            shard_id,
            primary.shard.index,
            thread_safe=False,
            durable_log=primary.shard.durable_log,
        )
        self.replicas: List[Replica] = list(replicas)
        self.router = router or ReplicaRouter()

    # ------------------------------------------------------------------
    # Replica health
    # ------------------------------------------------------------------
    def _alive(self) -> List[Replica]:
        return [replica for replica in self.replicas if not replica.down]

    def _authoritative(self) -> Replica:
        """The first live replica: holds the complete acked history."""
        alive = self._alive()
        if not alive:
            raise ReplicaSetUnavailableError(
                f"all {len(self.replicas)} replicas of shard "
                f"{self.shard_id} are down"
            )
        return alive[0]

    def mark_down(self, replica: Replica, reason: str) -> None:
        """Fence ``replica`` out of routing and write fan-out."""
        if replica.down:
            return
        replica.down = True
        replica.down_reason = reason
        registry = active_registry()
        if registry is not None:
            registry.counter(_COUNTERS["downs"]).inc()
            registry.gauge(_REPLICAS_UP_GAUGE).set(len(self._alive()))

    def revive(self, replica_id: int) -> Replica:
        """Rebuild a down replica from a live copy and re-admit it.

        The replacement index is bulk-loaded under the replica's *own*
        profile (divergence policy survives the outage) from the
        authoritative replica's content, and a fresh snapshot heals its
        log.  A replica whose WAL is poisoned cannot be revived in
        process — only :meth:`~repro.service.router.ShardRouter.recover`
        may reopen a poisoned log.
        """
        replica = self.replicas[replica_id]
        if not replica.down:
            return replica
        log = replica.shard.durable_log
        if log is not None and log.wal.poisoned is not None:
            raise RuntimeError(
                f"replica {replica_id} of shard {self.shard_id} has a "
                "poisoned WAL; it can only return through recovery"
            )
        with self.write_gate, self._guard():
            pairs = self._authoritative().shard.items()
            replica.shard.index = replica.profile.build_index(pairs)
            if log is not None:
                log.checkpoint(pairs)
            replica.down = False
            replica.down_reason = None
            replica.behind = 0
            replica.cost_ewma = {}
        registry = active_registry()
        if registry is not None:
            registry.gauge(_REPLICAS_UP_GAUGE).set(len(self._alive()))
        return replica

    # ------------------------------------------------------------------
    # Routed reads
    # ------------------------------------------------------------------
    def get(self, key: Key) -> Optional[int]:
        """The value under ``key``, served by the cheapest live replica."""
        return self._routed_read("point", "get", 1, lambda replica: replica.shard.get(key))

    def get_many(self, keys: Sequence[Key]) -> List[Optional[int]]:
        """Values aligned with ``keys``; the whole batch rides one replica."""
        if not keys:
            return []
        return self._routed_read(
            "point",
            "get_many",
            len(keys),
            lambda replica: replica.shard.get_many(keys),
        )

    def scan(self, start_key: Key, count: int) -> List[Pair]:
        """Ordered pairs from the replica scoring cheapest for scans."""
        return self._routed_read(
            "scan",
            "scan",
            1,
            lambda replica: replica.shard.scan(start_key, count),
        )

    def _routed_read(
        self,
        kind: str,
        op: str,
        operations: int,
        request: Callable[[Replica], T],
    ) -> T:
        """Route one read batch; fall back to survivors on failure.

        A replica that raises mid-read is marked down and the batch is
        retried on the next-best copy — the caller never sees a single
        replica failure.  Only when the last replica fails does the
        router's pick raise :class:`ReplicaSetUnavailableError`.
        Measurement is skip-sampled: on sampled batches the replica's
        structural counter delta is priced and folded into its EWMA.
        """
        with span_if_traced(
            _REPLICA_OP_SPAN, op=op, shard_id=self.shard_id, kind=kind
        ):
            while True:
                replica = self.router.pick(self, kind)
                before: Optional[Dict[str, int]] = None
                if self.router.should_measure(replica, kind):
                    before = replica.shard.counter_snapshot()
                try:
                    result = request(replica)
                except Exception as error:
                    self.mark_down(replica, f"{op} failed: {error!r}")
                    self._note_fallback()
                    continue
                replica.reads_routed += operations
                self._note_ops(operations)
                if before is not None:
                    self.router.observe(
                        replica,
                        kind,
                        _counter_delta(before, replica.shard.counter_snapshot()),
                        operations,
                    )
                return result

    def _note_fallback(self) -> None:
        registry = active_registry()
        if registry is not None:
            registry.counter(_COUNTERS["fallbacks"]).inc()

    # ------------------------------------------------------------------
    # Fanned-out writes (caller holds ``write_gate``)
    # ------------------------------------------------------------------
    def put(self, key: Key, value: int) -> None:
        """Upsert one pair on every live replica."""
        self._fanout_write("put", 1, lambda replica: replica.shard.put(key, value))

    def put_many(self, pairs: Sequence[Pair]) -> None:
        """Upsert a batch on every live replica (per-replica group commit)."""
        batch = list(pairs)
        if not batch:
            return
        self._fanout_write(
            "put_many", len(batch), lambda replica: replica.shard.put_many(batch)
        )

    def delete(self, key: Key) -> bool:
        """Remove ``key`` everywhere; True when any live replica had it."""
        results = self._fanout_write(
            "delete", 1, lambda replica: replica.shard.delete(key)
        )
        return any(bool(result) for result in results)

    def _fanout_write(
        self, op: str, records: int, apply: Callable[[Replica], T]
    ) -> List[T]:
        """Apply one write to every live replica, fencing failures.

        Runs under this shard's operation lock so every replica WAL
        records the same append order.  A replica whose apply raises
        (poisoned WAL, injected fault) is marked down and skipped; the
        write acknowledges as long as at least one replica durably
        accepted it, and only a fully-down set raises.
        """
        with span_if_traced(
            _REPLICA_OP_SPAN, op=op, shard_id=self.shard_id, records=records
        ):
            with self._guard():
                self._note_ops(records)
                results: List[T] = []
                for replica in self.replicas:
                    if replica.down:
                        replica.behind += records
                        continue
                    try:
                        results.append(apply(replica))
                    except Exception as error:
                        self.mark_down(replica, f"{op} failed: {error!r}")
                        replica.behind += records
                if not results:
                    raise ReplicaSetUnavailableError(
                        f"no replica of shard {self.shard_id} accepted the {op}"
                    )
                return results

    # ------------------------------------------------------------------
    # Snapshots and introspection
    # ------------------------------------------------------------------
    def items(self) -> List[Pair]:
        """The authoritative replica's full content, sorted by key."""
        return self._authoritative().shard.items()

    @property
    def num_keys(self) -> int:
        """Key count of the authoritative copy (replica 0 when all down)."""
        alive = self._alive()
        target = alive[0] if alive else self.replicas[0]
        return target.shard.num_keys

    def size_bytes(self) -> int:
        """Total modeled bytes across *all* replicas — replication is
        honest about its memory cost."""
        return sum(replica.shard.size_bytes() for replica in self.replicas)

    def counter_snapshot(self) -> Dict[str, int]:
        """Structural counter events summed across replicas."""
        merged: Dict[str, int] = {}
        for replica in self.replicas:
            for event, count in replica.shard.counter_snapshot().items():
                merged[event] = merged.get(event, 0) + count
        return merged

    def encoding_census(self) -> Dict[str, Any]:
        """Leaf counts per encoding, summed across replicas."""
        merged: Dict[str, Any] = {}
        for replica in self.replicas:
            for encoding, entry in replica.shard.encoding_census().items():
                count = int(entry.get("count", 0)) if isinstance(entry, dict) else 0
                slot = merged.setdefault(encoding, {"count": 0})
                slot["count"] += count
        return merged

    def wal_lag(self) -> Optional[int]:
        """Worst WAL replay debt across replicas (None when not durable)."""
        lags = [
            lag
            for lag in (replica.shard.wal_lag() for replica in self.replicas)
            if lag is not None
        ]
        return max(lags) if lags else None

    def checkpoint_logs(self) -> List[Dict[str, Any]]:
        """Snapshot every live replica's log (caller holds ``write_gate``).

        Down replicas are skipped: their logs keep the pre-outage state
        for recovery, and reconciliation rebuilds them from the copy
        with the highest LSN.
        """
        entries: List[Dict[str, Any]] = []
        with self._guard():
            for replica in self.replicas:
                log = replica.shard.durable_log
                if log is None or replica.down:
                    continue
                pairs = replica.shard.items()
                lsn = log.checkpoint(pairs)
                entries.append(
                    {
                        "log_id": log.log_id,
                        "lsn": lsn,
                        "num_keys": len(pairs),
                        "wal_bytes": log.wal_size_bytes(),
                        "replica": replica.replica_id,
                    }
                )
        return entries

    def close_logs(self) -> None:
        """Release every replica's log handle (idempotent)."""
        for replica in self.replicas:
            if replica.shard.durable_log is not None:
                replica.shard.durable_log.close()

    def stats(self) -> Dict[str, Any]:
        """One JSON-safe summary: the aggregate plus one row per replica."""
        replica_rows: List[Dict[str, Any]] = []
        for replica in self.replicas:
            inner = replica.shard.stats()
            replica_rows.append(
                {
                    "replica": replica.replica_id,
                    "profile": replica.profile.name,
                    "down": replica.down,
                    "down_reason": replica.down_reason,
                    "behind": replica.behind,
                    "reads_routed": replica.reads_routed,
                    "cost_ewma_ns": {
                        kind: round(cost, 1)
                        for kind, cost in replica.cost_ewma.items()
                    },
                    "family": inner["family"],
                    "num_keys": inner["num_keys"],
                    "size_bytes": inner["size_bytes"],
                    "ops": inner["ops"],
                    "encoding_census": inner["encoding_census"],
                    "wal_lag": inner["wal_lag"],
                    "migrations": inner["migrations"],
                    "adaptation_phases": inner["adaptation_phases"],
                }
            )
        return {
            "shard_id": self.shard_id,
            "family": replica_rows[0]["family"],
            "thread_safe": False,
            "replication_factor": len(self.replicas),
            "replicas_up": len(self._alive()),
            "durable": (
                self.durable_log.stats() if self.durable_log is not None else None
            ),
            "wal_lag": self.wal_lag(),
            "num_keys": self.num_keys,
            "size_bytes": self.size_bytes(),
            "ops": self.ops,
            "encoding_census": self.encoding_census(),
            "adaptation_phases": sum(
                row["adaptation_phases"] for row in replica_rows
            ),
            "migrations": sum(row["migrations"] for row in replica_rows),
            "replicas": replica_rows,
            "routing": self.router.describe(self),
        }

    def verify(self) -> None:
        """Verify every live replica and their mutual consistency.

        Each live replica runs its family's structural checks, and all
        live replicas must agree on content — the acked-write invariant
        made checkable.
        """
        reference: Optional[List[Pair]] = None
        reference_id = -1
        for replica in self._alive():
            replica.shard.verify()
            content = replica.shard.items()
            if reference is None:
                reference = content
                reference_id = replica.replica_id
            elif content != reference:
                from repro.core.invariants import InvariantViolation

                raise InvariantViolation(
                    [
                        f"replica {replica.replica_id} of shard {self.shard_id} "
                        f"diverged in content from replica {reference_id}"
                    ]
                )


def build_replicated_shard(
    shard_id: int,
    pairs: Sequence[Pair],
    profiles: Sequence[ReplicaProfile],
    durability: Optional[Any] = None,
    epoch: int = 0,
    router: Optional[ReplicaRouter] = None,
) -> ReplicatedShard:
    """Bulk-load one replicated shard: one index (and log) per profile."""
    from repro.durability.manager import DurabilityManager

    group = list(pairs)
    replicas: List[Replica] = []
    for position, profile in enumerate(profiles):
        log = None
        if durability is not None:
            log = durability.create_log(
                DurabilityManager.replica_log_id(epoch, shard_id, position), group
            )
        inner = Shard(
            shard_id,
            profile.build_index(group),
            thread_safe=False,
            durable_log=log,
        )
        replicas.append(Replica(position, profile, inner))
    return ReplicatedShard(shard_id, replicas, router=router)
