"""Encoding-aware read routing across a shard's replicas.

The :class:`ReplicaRouter` answers one question per read batch: *which
replica prices this read class cheapest right now?*  Its score for a
replica is, in modeled nanoseconds per operation:

``score = measured_cost | census_prior  +  lag_penalty * behind``

* **measured_cost** — an EWMA of the replica's actual modeled cost for
  this read class, observed by pricing the replica's own structural
  counter deltas through the calibrated
  :class:`~repro.sim.costmodel.CostModel` on a skip-sampled subset of
  routed batches (every ``measure_every``-th).  This is the live
  ``repro.obs`` counter signal: the same events the metrics layer
  exports are what the router prices.
* **census_prior** — before any measurement exists, the replica's leaf
  encoding census priced per leaf visit (a Succinct-heavy copy is
  presumed slow, a Gapped-heavy copy fast), discounted once when the
  replica's profile declares an affinity for the class.  The prior only
  breaks the bootstrap symmetry; measurements take over immediately.
* **lag_penalty * behind** — a staleness penalty per write the replica
  missed while it was down, so a freshly revived copy is avoided until
  it has proven itself cheap again.

Down replicas are never candidates; a deterministic exploration rotation
(every ``explore_every``-th pick) keeps the EWMAs of non-best replicas
fresh so the router can notice when divergence shifts the ranking.
No wall-clock enters any decision — scores are pure functions of
counters and census state, which keeps routing deterministic and
RA002-clean.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from repro.obs.runtime import active_registry
from repro.sim.costmodel import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.replication.replica_set import Replica, ReplicatedShard

#: The read classes the router scores separately.
READ_CLASSES = ("point", "scan")

#: RA004: literal instrument names for the routing layer.
_COUNTERS = {
    "point": "replication.reads.point",
    "scan": "replication.reads.scan",
    "explorations": "replication.explorations",
    "fallbacks": "replication.fallbacks",
    "downs": "replication.replicas_marked_down",
}
_REPLICAS_UP_GAUGE = "replication.replicas_up"

#: RA004: census encoding -> the cost-model event that prices one leaf
#: visit under that encoding (literal table, never formatted).
_LEAF_VISIT_EVENTS = {
    "succinct": "leaf_visit:succinct",
    "packed": "leaf_visit:packed",
    "gapped": "leaf_visit:gapped",
}

#: RA004: the structural events that constitute *read service cost*.
#: EWMA measurement prices only these — a sampled batch that happens to
#: trigger an adaptation phase must not charge the migration work to the
#: read class that tripped it, or specialists would look expensive
#: exactly when they are investing in getting cheaper.
_READ_COST_EVENTS = (
    "leaf_visit:succinct",
    "leaf_visit:packed",
    "leaf_visit:gapped",
    "inner_visit",
)

#: Modeled inner-node descent depth assumed by the census prior.
_PRIOR_INNER_LEVELS = 2

#: Multiplier applied once to the census prior of a replica whose
#: profile declares an affinity for the scored class.
_AFFINITY_DISCOUNT = 0.5


class ReplicaRouter:
    """Scores and picks the cheapest live replica for each read class."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        ewma_alpha: float = 0.25,
        measure_every: int = 8,
        explore_every: int = 32,
        lag_penalty_ns: float = 5.0,
        policy: str = "cost",
    ) -> None:
        if policy not in ("cost", "round_robin"):
            raise ValueError(
                f"unknown routing policy {policy!r}; expected 'cost' or 'round_robin'"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.cost_model = cost_model or CostModel()
        self.ewma_alpha = ewma_alpha
        self.measure_every = max(1, measure_every)
        self.explore_every = explore_every
        self.lag_penalty_ns = lag_penalty_ns
        self.policy = policy
        #: Per-class pick counters (exploration cadence + round-robin).
        self._picks: Dict[str, int] = {cls: 0 for cls in READ_CLASSES}

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, replica: "Replica", kind: str) -> float:
        """Modeled ns/op this replica is expected to charge ``kind``.

        The affinity discount applies to the *measured* cost too, not
        just the bootstrap prior: a specialist only gets cheap for its
        class by receiving that class's traffic, so the discount is what
        keeps the divergence feedback loop from collapsing into one
        replica monopolizing every read class it happened to win first.
        """
        measured = replica.cost_ewma.get(kind)
        base = measured if measured is not None else self._census_prior(replica, kind)
        if replica.profile.affinity == kind:
            base *= _AFFINITY_DISCOUNT
        return base + self.lag_penalty_ns * replica.behind

    def _census_prior(self, replica: "Replica", kind: str) -> float:
        """Expected leaf cost from the replica's encoding mix alone."""
        census = replica.shard.encoding_census()
        total = 0
        weighted = 0.0
        for encoding, entry in census.items():
            event = _LEAF_VISIT_EVENTS.get(str(encoding))
            if event is None:
                continue
            count = int(entry.get("count", 0)) if isinstance(entry, Mapping) else 0
            total += count
            weighted += count * self.cost_model.costs_ns.get(event, 0.0)
        if total > 0:
            leaf_ns = weighted / total
        else:
            leaf_ns = self.cost_model.costs_ns[_LEAF_VISIT_EVENTS["succinct"]]
        inner_ns = _PRIOR_INNER_LEVELS * self.cost_model.costs_ns.get("inner_visit", 0.0)
        return inner_ns + leaf_ns

    # ------------------------------------------------------------------
    # Picking
    # ------------------------------------------------------------------
    def pick(self, shard: "ReplicatedShard", kind: str) -> "Replica":
        """The replica that should serve the next ``kind`` batch.

        Raises :class:`~repro.replication.replica_set
        .ReplicaSetUnavailableError` when every replica is down.
        """
        from repro.replication.replica_set import ReplicaSetUnavailableError

        alive = [replica for replica in shard.replicas if not replica.down]
        if not alive:
            raise ReplicaSetUnavailableError(
                f"all {len(shard.replicas)} replicas of shard "
                f"{shard.shard_id} are down"
            )
        self._picks[kind] = self._picks.get(kind, 0) + 1
        picks = self._picks[kind]
        explored = False
        if self.policy == "round_robin" or len(alive) == 1:
            choice = alive[picks % len(alive)]
        elif self.explore_every > 0 and picks % self.explore_every == 0:
            # Deterministic rotation over the non-best replicas keeps
            # their EWMAs fresh without a wall-clock or RNG.
            choice = alive[(picks // self.explore_every) % len(alive)]
            explored = True
        else:
            choice = min(alive, key=lambda replica: self.score(replica, kind))
        choice.routed_batches[kind] = choice.routed_batches.get(kind, 0) + 1
        self._publish_pick_metrics(kind, len(alive), explored)
        return choice

    def should_measure(self, replica: "Replica", kind: str) -> bool:
        """Skip-sampled measurement: price the first batch, then every
        ``measure_every``-th batch routed to this replica and class."""
        return replica.routed_batches.get(kind, 0) % self.measure_every == 1

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(
        self,
        replica: "Replica",
        kind: str,
        events: Mapping[str, int],
        operations: int,
    ) -> None:
        """Fold one measured batch into the replica's cost EWMA.

        Only read-service events are priced (see ``_READ_COST_EVENTS``);
        adaptation work that rode along in the delta is the replica's
        investment, not the read's cost.
        """
        if operations <= 0:
            return
        service = {name: events[name] for name in _READ_COST_EVENTS if name in events}
        cost = self.cost_model.price_per_op(service, operations)
        previous = replica.cost_ewma.get(kind)
        if previous is None:
            replica.cost_ewma[kind] = cost
        else:
            replica.cost_ewma[kind] = previous + self.ewma_alpha * (cost - previous)

    # ------------------------------------------------------------------
    # Introspection and metrics
    # ------------------------------------------------------------------
    def describe(self, shard: "ReplicatedShard") -> List[Dict[str, object]]:
        """Per-replica score table (for stats and the ops console)."""
        return [
            {
                "replica": replica.replica_id,
                "profile": replica.profile.name,
                "down": replica.down,
                "scores_ns": {
                    kind: round(self.score(replica, kind), 1)
                    for kind in READ_CLASSES
                },
            }
            for replica in shard.replicas
        ]

    def _publish_pick_metrics(self, kind: str, alive: int, explored: bool) -> None:
        registry = active_registry()
        if registry is None:
            return
        registry.counter(_COUNTERS[kind]).inc()
        if explored:
            registry.counter(_COUNTERS["explorations"]).inc()
        registry.gauge(_REPLICAS_UP_GAUGE).set(alive)
