"""Named divergence profiles for per-shard read replicas.

A :class:`ReplicaProfile` is the *policy* half of a replica: it decides
how that copy's adaptation manager is tuned — how much memory budget it
may spend on expansions, how patient its CSHF is before compacting cold
leaves, and which read class (point or scan) the replica router should
seed toward it before any cost has been measured.  The *mechanism*
(skip-sampling, classification, migration) is exactly the paper's
:class:`~repro.core.manager.AdaptationManager`; a profile only changes
its knobs, so every replica remains an ordinary adaptive B+-tree.

Profiles are registered by name in :data:`REPLICA_PROFILES` because the
names are persisted in the durability manifest: recovery must rebuild a
replica with the *same* divergence policy it crashed with, not a
generic one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bptree.hybrid import BTREE_ENCODING_ORDER, AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.core.budget import MemoryBudget
from repro.core.heuristics import make_threshold_heuristic
from repro.core.manager import ManagerConfig

Pair = Tuple[int, int]

#: Budget (relative, bits per key) that comfortably holds one read
#: class's hot leaves expanded to Gapped but not both classes at once —
#: the pressure that makes divergence pay on a mixed workload.  At the
#: default leaf geometry Succinct costs ~20 bits/key and Gapped ~196,
#: so this budget expands roughly a third of a shard's leaves.
_SPECIALIST_BITS_PER_KEY = 80.0

#: Budget so far below the all-Succinct floor that the CSHF can never
#: justify an expansion: the memory-squeezed replica stays compact.
_SQUEEZED_BITS_PER_KEY = 8.0


@dataclass(frozen=True)
class ReplicaProfile:
    """How one replica of a shard is allowed to adapt."""

    name: str
    description: str
    #: None = unbounded; otherwise a relative budget in bits per key.
    budget_bits_per_key: Optional[float]
    #: Read class ("point" or "scan") the router seeds toward this
    #: replica before measured costs exist; None = no prior preference.
    affinity: Optional[str] = None
    #: Consecutive cold phases before the CSHF compacts / evicts a leaf.
    cold_phases_to_compact: int = 2
    cold_phases_to_forget: int = 8
    #: Hotness classification weights for reads vs writes.
    read_weight: float = 1.0
    write_weight: float = 1.0
    #: Whether inserts eagerly expand the written leaf.
    eager_insert_expansion: bool = True
    #: Replica-scale sampling cadence.  A replica sees only the slice of
    #: the workload the router steers to it, so its phases are much
    #: shorter than a standalone index's statistically-derived default —
    #: divergence should show up within a few thousand routed reads,
    #: not hundreds of thousands.
    phase_sample_size: int = 256
    skip_length: int = 10

    def budget(self) -> MemoryBudget:
        """The memory budget this profile grants its manager."""
        if self.budget_bits_per_key is None:
            return MemoryBudget.unbounded()
        return MemoryBudget.relative(self.budget_bits_per_key)

    def manager_config(self) -> ManagerConfig:
        """A fresh ManagerConfig expressing this profile's policy."""
        return ManagerConfig(
            encoding_order=BTREE_ENCODING_ORDER,
            budget=self.budget(),
            heuristic=make_threshold_heuristic(
                LeafEncoding.GAPPED,
                LeafEncoding.SUCCINCT,
                cold_phases_to_compact=self.cold_phases_to_compact,
                cold_phases_to_forget=self.cold_phases_to_forget,
            ),
            read_weight=self.read_weight,
            write_weight=self.write_weight,
            initial_sample_size=self.phase_sample_size,
            initial_skip_length=self.skip_length,
            skip_min=self.skip_length,
        )

    def build_index(self, pairs: Sequence[Pair]) -> AdaptiveBPlusTree:
        """Bulk-load one replica's adaptive B+-tree under this policy."""
        return AdaptiveBPlusTree.bulk_load_adaptive(
            list(pairs),
            manager_config=self.manager_config(),
            eager_insert_expansion=self.eager_insert_expansion,
        )

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary for stats surfaces."""
        return {
            "name": self.name,
            "affinity": self.affinity,
            "budget_bits_per_key": self.budget_bits_per_key,
            "cold_phases_to_compact": self.cold_phases_to_compact,
        }


#: The registry of persistable profiles (names land in the manifest).
REPLICA_PROFILES: Dict[str, ReplicaProfile] = {
    "point": ReplicaProfile(
        name="point",
        description=(
            "Point-lookup specialist: spends its budget expanding the "
            "leaves that hot point reads land on."
        ),
        budget_bits_per_key=_SPECIALIST_BITS_PER_KEY,
        affinity="point",
    ),
    "scan": ReplicaProfile(
        name="scan",
        description=(
            "Range-scan specialist: holds scanned runs expanded longer "
            "(patient compaction) so sequential leaf visits stay cheap."
        ),
        budget_bits_per_key=_SPECIALIST_BITS_PER_KEY,
        affinity="scan",
        cold_phases_to_compact=4,
        cold_phases_to_forget=12,
        # Scans sample once per visited *leaf*, not per entry, so the
        # scan specialist needs a denser cadence to fill phases at the
        # same wall rate as the point specialist.
        phase_sample_size=128,
        skip_length=4,
    ),
    "squeezed": ReplicaProfile(
        name="squeezed",
        description=(
            "Memory-squeezed fallback: budget below the Succinct floor, "
            "so it never expands — the cheap-to-keep surviving copy."
        ),
        budget_bits_per_key=_SQUEEZED_BITS_PER_KEY,
        eager_insert_expansion=False,
    ),
    "balanced": ReplicaProfile(
        name="balanced",
        description=(
            "No divergence policy: the identical-replica baseline with "
            "the same budget as the specialists."
        ),
        budget_bits_per_key=_SPECIALIST_BITS_PER_KEY,
    ),
}

#: Default specialist line-up, in the order factors consume them.
_DEFAULT_ORDER = ("point", "scan", "squeezed")


def resolve_profiles(
    factor: int, names: Optional[Sequence[str]] = None
) -> List[ReplicaProfile]:
    """The profile per replica for a replication factor.

    Explicit ``names`` must match ``factor`` and resolve in
    :data:`REPLICA_PROFILES`.  The default line-up is point, scan,
    squeezed, then balanced fillers for larger factors.
    """
    if factor < 1:
        raise ValueError(f"replication factor must be >= 1, got {factor}")
    if names is not None:
        if len(names) != factor:
            raise ValueError(
                f"{len(names)} profiles given for replication factor {factor}"
            )
        missing = [name for name in names if name not in REPLICA_PROFILES]
        if missing:
            raise ValueError(
                f"unknown replica profiles {missing}; expected names from "
                f"{sorted(REPLICA_PROFILES)}"
            )
        return [REPLICA_PROFILES[name] for name in names]
    if factor == 1:
        return [REPLICA_PROFILES["balanced"]]
    chosen = list(_DEFAULT_ORDER[:factor])
    while len(chosen) < factor:
        chosen.append("balanced")
    return [REPLICA_PROFILES[name] for name in chosen]
