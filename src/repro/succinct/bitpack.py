"""Fixed-width bit-packed integer arrays.

The Succinct B+-tree leaf encoding (Figure 8 of the paper) stores key and
value deltas with exactly as many bits as the largest delta requires.  This
module provides that storage layer: a :class:`PackedIntArray` packs ``n``
non-negative integers of ``width`` bits each into a contiguous buffer and
supports random access, which is what keeps the succinct leaves
binary-searchable.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence


def bits_required(value: int) -> int:
    """Minimum bits needed to represent ``value`` (at least 1).

    ``bits_required(0) == 1`` so that an all-zero delta array still has a
    well-defined, nonzero width.
    """
    if value < 0:
        raise ValueError(f"bit packing requires non-negative values, got {value}")
    return max(1, value.bit_length())


class PackedIntArray:
    """An immutable array of ``width``-bit unsigned integers.

    The payload is held in a Python ``int`` used as a bit buffer, which
    mirrors a contiguous byte buffer in the modeled C++ layout; random
    access shifts and masks exactly like the C++ code would.
    """

    __slots__ = ("_width", "_length", "_buffer")

    def __init__(self, values: Sequence[int], width: int | None = None) -> None:
        if width is None:
            width = max((bits_required(v) for v in values), default=1)
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        limit = 1 << width
        buffer = 0
        for position, value in enumerate(values):
            if value < 0 or value >= limit:
                raise ValueError(f"value {value} does not fit in {width} bits")
            buffer |= value << (position * width)
        self._width = width
        self._length = len(values)
        self._buffer = buffer

    @property
    def width(self) -> int:
        """Bit width of each stored value."""
        return self._width

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range for length {self._length}")
        mask = (1 << self._width) - 1
        return (self._buffer >> (index * self._width)) & mask

    def __iter__(self) -> Iterator[int]:
        mask = (1 << self._width) - 1
        buffer = self._buffer
        for _ in range(self._length):
            yield buffer & mask
            buffer >>= self._width

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedIntArray):
            return NotImplemented
        return (
            self._width == other._width
            and self._length == other._length
            and self._buffer == other._buffer
        )

    def to_list(self) -> List[int]:
        """Decode to a plain list."""
        return list(self)

    def size_bytes(self) -> int:
        """Modeled storage footprint: payload bits rounded up to bytes."""
        return (self._length * self._width + 7) // 8

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PackedIntArray(len={self._length}, width={self._width})"


def pack(values: Iterable[int]) -> PackedIntArray:
    """Pack ``values`` with the minimal common width."""
    return PackedIntArray(list(values))
