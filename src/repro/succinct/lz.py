"""A from-scratch LZ77-style byte compressor.

Figure 3 of the paper compares access latencies to LZ4-compressed and
uncompressed B+-tree leaf pages across storage devices.  We cannot ship
LZ4, so this module implements a small greedy LZ77 variant with a
hash-chained match finder.  It is a real compressor (round-trips
losslessly) whose ratios on slotted leaf pages land in the same regime the
paper reports (~47% savings on 70%-occupancy pages), which is what the
Figure 3 reproduction needs.

Format: a stream of tokens.  Each token starts with a control byte:

* ``0x00..0x7F`` — literal run of ``control + 1`` bytes follows.
* ``0x80..0xFF`` — match: length ``(control & 0x7F) + MIN_MATCH``, then a
  2-byte little-endian distance.
"""

from __future__ import annotations

_MIN_MATCH = 4
_MAX_MATCH = 0x7F + _MIN_MATCH
_MAX_LITERAL = 0x80
_WINDOW = 0xFFFF
_HASH_BYTES = 4


def _hash(data: bytes, index: int) -> int:
    chunk = int.from_bytes(data[index : index + _HASH_BYTES], "little")
    return (chunk * 2654435761) & 0xFFFF


def lz_compress(data: bytes) -> bytes:
    """Compress ``data``; round-trips exactly through :func:`lz_decompress`."""
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"expected bytes, got {type(data).__name__}")
    data = bytes(data)
    output = bytearray()
    table: dict[int, int] = {}
    literal_start = 0
    index = 0
    size = len(data)

    def flush_literals(end: int) -> None:
        start = literal_start
        while start < end:
            run = min(_MAX_LITERAL, end - start)
            output.append(run - 1)
            output.extend(data[start : start + run])
            start += run

    while index + _HASH_BYTES <= size:
        key = _hash(data, index)
        candidate = table.get(key)
        table[key] = index
        if candidate is not None and index - candidate <= _WINDOW:
            length = 0
            limit = min(_MAX_MATCH, size - index)
            while length < limit and data[candidate + length] == data[index + length]:
                length += 1
            if length >= _MIN_MATCH:
                flush_literals(index)
                distance = index - candidate
                output.append(0x80 | (length - _MIN_MATCH))
                output.extend(distance.to_bytes(2, "little"))
                index += length
                literal_start = index
                continue
        index += 1
    flush_literals(size)
    # The last token is always a literal run covering the tail; update start
    # so an empty input produces an empty stream.
    return bytes(output)


def lz_decompress(blob: bytes) -> bytes:
    """Invert :func:`lz_compress`."""
    output = bytearray()
    index = 0
    size = len(blob)
    while index < size:
        control = blob[index]
        index += 1
        if control < 0x80:
            run = control + 1
            if index + run > size:
                raise ValueError("truncated literal run in LZ stream")
            output.extend(blob[index : index + run])
            index += run
        else:
            length = (control & 0x7F) + _MIN_MATCH
            if index + 2 > size:
                raise ValueError("truncated match token in LZ stream")
            distance = int.from_bytes(blob[index : index + 2], "little")
            index += 2
            if distance == 0 or distance > len(output):
                raise ValueError(f"invalid match distance {distance}")
            start = len(output) - distance
            # Byte-wise copy: matches may overlap their own output.
            for offset in range(length):
                output.append(output[start + offset])
    return bytes(output)
