"""Compact-encoding primitives shared by the succinct index substrates.

This package provides the low-level building blocks the paper's compact
encodings rest on:

* :class:`~repro.succinct.bitvector.BitVector` — an appendable bitvector
  with constant-time ``rank``/``select`` support (block-structured
  directories, as used by LOUDS tries).
* :class:`~repro.succinct.bitpack.PackedIntArray` — fixed-width bit-packed
  integer arrays (the storage layer of frame-of-reference encoded leaves).
* :mod:`~repro.succinct.for_codec` — frame-of-reference (FOR) encoding of
  sorted or unsorted integer sequences.
* :mod:`~repro.succinct.lz` — a from-scratch LZ77-style byte compressor
  standing in for LZ4 in the Figure 3 storage experiment.
"""

from repro.succinct.bitpack import PackedIntArray, bits_required
from repro.succinct.bitvector import BitVector
from repro.succinct.for_codec import ForBlock, for_decode, for_encode
from repro.succinct.lz import lz_compress, lz_decompress

__all__ = [
    "BitVector",
    "PackedIntArray",
    "bits_required",
    "ForBlock",
    "for_encode",
    "for_decode",
    "lz_compress",
    "lz_decompress",
]
