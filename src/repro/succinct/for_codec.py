"""Frame-of-reference (FOR) encoding for integer sequences.

The paper's Succinct leaf layout (Figure 8) stores the smallest key and
value separately and encodes the remaining entries as bit-packed deltas
against that frame of reference.  :func:`for_encode` produces that
representation; the result supports random access, so succinct leaves stay
binary-searchable without decompressing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.succinct.bitpack import PackedIntArray, bits_required


@dataclass(frozen=True)
class ForBlock:
    """A FOR-encoded integer sequence.

    ``base`` is the frame of reference (the minimum of the input), and
    ``deltas`` holds ``value - base`` for every element in input order.
    """

    base: int
    deltas: PackedIntArray

    def __len__(self) -> int:
        return len(self.deltas)

    def __getitem__(self, index: int) -> int:
        return self.base + self.deltas[index]

    def to_list(self) -> List[int]:
        """Decode to a plain list."""
        return [self.base + delta for delta in self.deltas]

    def size_bytes(self) -> int:
        """Modeled footprint: an 8-byte base plus the packed deltas."""
        return 8 + self.deltas.size_bytes()


def for_encode(values: Sequence[int]) -> ForBlock:
    """Encode ``values`` with frame-of-reference + bit packing.

    Works for any integer sequence (sorted or not); the frame is the
    minimum value so all deltas are non-negative.
    """
    if len(values) == 0:
        return ForBlock(base=0, deltas=PackedIntArray([], width=1))
    base = min(values)
    raw_deltas = [value - base for value in values]
    width = max(bits_required(delta) for delta in raw_deltas)
    return ForBlock(base=base, deltas=PackedIntArray(raw_deltas, width=width))


def for_decode(block: ForBlock) -> List[int]:
    """Decode a :class:`ForBlock` back to a plain list."""
    return block.to_list()
