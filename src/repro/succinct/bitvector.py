"""Appendable bitvector with rank/select directories.

LOUDS-encoded tries (:mod:`repro.fst`) navigate exclusively through
``rank``/``select`` queries over two bitmaps.  This module implements the
classic two-level directory: the bit payload lives in 64-bit words (an
``array('Q')``, so the payload is a real machine buffer rather than a
list of boxed ints), and a per-block popcount prefix array answers
``rank`` in O(1) word operations.

``select`` uses a *sampled select directory*: at seal time the word
index containing every :data:`SELECT_SAMPLE_RATE`-th set (and clear) bit
is recorded, so a query binary-searches only the handful of rank blocks
between two samples instead of the whole directory, then finishes with a
byte-stepping scan of one word.

The structure is append-only while *unsealed*; :meth:`BitVector.seal`
freezes it and builds the directories.  Sealed vectors are what the
succinct tries store.  Bulk construction should prefer
:meth:`BitVector.extend` / :meth:`BitVector.extend_from_word` over
per-bit :meth:`BitVector.append` — they move whole words at a time.
"""

from __future__ import annotations

import sys
from array import array
from typing import Iterable, Iterator, List

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1

#: One select sample per this many set (or clear) bits.  256 keeps the
#: directory tiny (one u32 per 256 bits of either kind) while bounding
#: the binary-search window to ~4 rank blocks.
SELECT_SAMPLE_RATE = 256

_NATIVE_LITTLE_ENDIAN = sys.byteorder == "little"


def _popcount(word: int) -> int:
    return word.bit_count()


def _select_in_word(word: int, remaining: int) -> int:
    """Bit offset of the ``remaining``-th set bit of ``word`` (1-based).

    Steps a byte at a time using popcounts, so the scan is at most 8 byte
    probes plus at most 8 bit probes instead of up to 64 bit probes.
    """
    offset = 0
    while True:
        byte = word & 0xFF
        ones = byte.bit_count()
        if remaining <= ones:
            break
        remaining -= ones
        word >>= 8
        offset += 8
    while True:
        if word & 1:
            remaining -= 1
            if remaining == 0:
                return offset
        word >>= 1
        offset += 1


class BitVector:
    """A bitvector supporting O(1) rank and near-O(1) select once sealed.

    Bits are addressed from 0.  ``rank1(i)`` counts set bits in ``[0, i)``
    (exclusive of ``i``), matching the convention used in the LOUDS
    navigation formulas.  ``select1(j)`` returns the position of the
    ``j``-th set bit, counting from ``j = 1``.
    """

    def __init__(self, bits: Iterable[int] = ()) -> None:
        self._words: array = array("Q")
        self._size = 0
        self._sealed = False
        self._rank_blocks: List[int] = []
        self._select1_samples: List[int] = []
        self._select0_samples: List[int] = []
        self._ones = 0
        if bits:
            self.extend(bits)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(self, bit: int) -> None:
        """Append one bit (any truthy value counts as 1)."""
        if self._sealed:
            raise ValueError("cannot append to a sealed BitVector")
        word_index, bit_index = divmod(self._size, _WORD_BITS)
        if bit_index == 0:
            self._words.append(0)
        if bit:
            self._words[word_index] |= 1 << bit_index
        self._size += 1

    def extend(self, bits: Iterable[int]) -> None:
        """Append each bit of ``bits`` in order.

        Bits are accumulated into 64-bit words locally and flushed through
        :meth:`extend_from_word`, avoiding the per-bit divmod/indexing of
        :meth:`append`.
        """
        if self._sealed:
            raise ValueError("cannot append to a sealed BitVector")
        word = 0
        pending = 0
        for bit in bits:
            if bit:
                word |= 1 << pending
            pending += 1
            if pending == _WORD_BITS:
                self.extend_from_word(word, _WORD_BITS)
                word = 0
                pending = 0
        if pending:
            self.extend_from_word(word, pending)

    def extend_from_word(self, word: int, length: int) -> None:
        """Append the low ``length`` bits of ``word`` (bit 0 first).

        ``length`` may exceed 64; the payload is consumed in 64-bit
        chunks.  This is the bulk construction path the LOUDS builders
        use for whole node bitmaps.
        """
        if self._sealed:
            raise ValueError("cannot append to a sealed BitVector")
        if length < 0:
            raise ValueError(f"bit count must be >= 0, got {length}")
        if length == 0:
            return
        word &= (1 << length) - 1
        words = self._words
        bit_index = self._size % _WORD_BITS
        remaining = length
        if bit_index:
            words[-1] |= (word << bit_index) & _WORD_MASK
            room = _WORD_BITS - bit_index
            word >>= room
            remaining -= room
        while remaining > 0:
            words.append(word & _WORD_MASK)
            word >>= _WORD_BITS
            remaining -= _WORD_BITS
        self._size += length

    def seal(self) -> "BitVector":
        """Freeze the vector and build the rank and select directories.

        Returns ``self`` so construction can be chained:
        ``bv = BitVector(bits).seal()``.
        """
        if self._sealed:
            return self
        blocks = [0]
        select1: List[int] = []
        select0: List[int] = []
        running = 0
        next_one = 1
        next_zero = 1
        size = self._size
        for word_index, word in enumerate(self._words):
            running += _popcount(word)
            blocks.append(running)
            while next_one <= running:
                select1.append(word_index)
                next_one += SELECT_SAMPLE_RATE
            zeros = min((word_index + 1) * _WORD_BITS, size) - running
            while next_zero <= zeros:
                select0.append(word_index)
                next_zero += SELECT_SAMPLE_RATE
        self._rank_blocks = blocks
        self._select1_samples = select1
        self._select0_samples = select0
        self._ones = running
        self._sealed = True
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError(f"bit index {index} out of range for size {self._size}")
        word_index, bit_index = divmod(index, _WORD_BITS)
        return (self._words[word_index] >> bit_index) & 1

    def __iter__(self) -> Iterator[int]:
        remaining = self._size
        for word in self._words:
            for _ in range(min(remaining, _WORD_BITS)):
                yield word & 1
                word >>= 1
            remaining -= _WORD_BITS

    @property
    def sealed(self) -> bool:
        """True once the rank directory has been built."""
        return self._sealed

    @property
    def ones(self) -> int:
        """Total number of set bits (requires a sealed vector)."""
        self._require_sealed()
        return self._ones

    def word_slice(self, start: int, length: int) -> int:
        """Bits ``[start, start + length)`` as an int (bit 0 = ``start``).

        A fast bulk accessor for consumers that scan whole node bitmaps
        (LOUDS-dense navigation) instead of one bit at a time.  The word
        run is materialized in one ``int.from_bytes`` call instead of a
        per-word shift-or loop.
        """
        if length <= 0:
            return 0
        if start < 0 or start + length > self._size:
            raise IndexError(
                f"slice [{start}, {start + length}) out of range for size {self._size}"
            )
        first_word, bit_offset = divmod(start, _WORD_BITS)
        last_word = (start + length - 1) // _WORD_BITS
        if _NATIVE_LITTLE_ENDIAN:
            combined = int.from_bytes(
                self._words[first_word : last_word + 1].tobytes(), "little"
            )
        else:  # pragma: no cover - big-endian fallback
            combined = 0
            for offset, word in enumerate(self._words[first_word : last_word + 1]):
                combined |= word << (offset * _WORD_BITS)
        combined >>= bit_offset
        return combined & ((1 << length) - 1)

    def rank1(self, index: int) -> int:
        """Number of set bits in ``[0, index)``.

        ``index`` may equal ``len(self)``, in which case the total
        popcount is returned.
        """
        self._require_sealed()
        if not 0 <= index <= self._size:
            raise IndexError(f"rank index {index} out of range for size {self._size}")
        word_index, bit_index = divmod(index, _WORD_BITS)
        count = self._rank_blocks[word_index]
        if bit_index:
            mask = (1 << bit_index) - 1
            count += _popcount(self._words[word_index] & mask)
        return count

    def rank0(self, index: int) -> int:
        """Number of clear bits in ``[0, index)``."""
        return index - self.rank1(index)

    def select1(self, count: int) -> int:
        """Position of the ``count``-th set bit, counting from 1.

        Raises :class:`ValueError` when fewer than ``count`` bits are set.
        """
        self._require_sealed()
        if count < 1 or count > self._ones:
            raise ValueError(f"select1({count}) out of range; vector has {self._ones} ones")
        # The sampled directory brackets the word; binary search only the
        # rank blocks between two adjacent samples.
        samples = self._select1_samples
        sample_index = (count - 1) // SELECT_SAMPLE_RATE
        lo = samples[sample_index]
        if sample_index + 1 < len(samples):
            hi = samples[sample_index + 1]
        else:
            hi = len(self._words) - 1
        blocks = self._rank_blocks
        while lo < hi:
            mid = (lo + hi) // 2
            if blocks[mid + 1] >= count:
                hi = mid
            else:
                lo = mid + 1
        remaining = count - blocks[lo]
        return lo * _WORD_BITS + _select_in_word(self._words[lo], remaining)

    def select0(self, count: int) -> int:
        """Position of the ``count``-th clear bit, counting from 1."""
        self._require_sealed()
        zeros = self._size - self._ones
        if count < 1 or count > zeros:
            raise ValueError(f"select0({count}) out of range; vector has {zeros} zeros")
        samples = self._select0_samples
        sample_index = (count - 1) // SELECT_SAMPLE_RATE
        lo = samples[sample_index]
        if sample_index + 1 < len(samples):
            hi = samples[sample_index + 1]
        else:
            hi = len(self._words) - 1
        blocks = self._rank_blocks
        size = self._size
        while lo < hi:
            mid = (lo + hi) // 2
            border = min((mid + 1) * _WORD_BITS, size)
            if border - blocks[mid + 1] >= count:
                hi = mid
            else:
                lo = mid + 1
        position = lo * _WORD_BITS
        remaining = count - (position - blocks[lo])
        inverted = ~self._words[lo] & _WORD_MASK
        position += _select_in_word(inverted, remaining)
        if position >= self._size:  # pragma: no cover - defended by the range check
            raise AssertionError("select0 directory inconsistent")
        return position

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Modeled storage footprint: payload words + rank directory.

        The C++ layout this models stores 64-bit payload words plus one
        32-bit cumulative popcount per word-block.  The sampled select
        directory is derived metadata (rebuildable from the payload) and
        is deliberately excluded so modeled sizes stay comparable with
        the paper's storage figures.
        """
        payload = len(self._words) * 8
        directory = len(self._rank_blocks) * 4 if self._sealed else 0
        return payload + directory

    def _require_sealed(self) -> None:
        if not self._sealed:
            raise ValueError("BitVector must be sealed before querying; call seal()")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "sealed" if self._sealed else "open"
        return f"BitVector(size={self._size}, ones={self._ones if self._sealed else '?'}, {state})"
