"""Appendable bitvector with rank/select directories.

LOUDS-encoded tries (:mod:`repro.fst`) navigate exclusively through
``rank``/``select`` queries over two bitmaps.  This module implements the
classic two-level directory: the bit payload lives in 64-bit words, and a
per-block popcount prefix array answers ``rank`` in O(1) word operations.
``select`` binary-searches the rank directory and then scans one word,
which is O(log n) worst case but effectively constant for index workloads.

The structure is append-only while *unsealed*; :meth:`BitVector.seal`
freezes it and builds the rank directory.  Sealed vectors are what the
succinct tries store.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1


def _popcount(word: int) -> int:
    return word.bit_count()


class BitVector:
    """A bitvector supporting O(1) rank and near-O(1) select once sealed.

    Bits are addressed from 0.  ``rank1(i)`` counts set bits in ``[0, i)``
    (exclusive of ``i``), matching the convention used in the LOUDS
    navigation formulas.  ``select1(j)`` returns the position of the
    ``j``-th set bit, counting from ``j = 1``.
    """

    def __init__(self, bits: Iterable[int] = ()) -> None:
        self._words: List[int] = []
        self._size = 0
        self._sealed = False
        self._rank_blocks: List[int] = []
        self._ones = 0
        for bit in bits:
            self.append(bit)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(self, bit: int) -> None:
        """Append one bit (any truthy value counts as 1)."""
        if self._sealed:
            raise ValueError("cannot append to a sealed BitVector")
        word_index, bit_index = divmod(self._size, _WORD_BITS)
        if bit_index == 0:
            self._words.append(0)
        if bit:
            self._words[word_index] |= 1 << bit_index
        self._size += 1

    def extend(self, bits: Iterable[int]) -> None:
        """Append each bit of ``bits`` in order."""
        for bit in bits:
            self.append(bit)

    def seal(self) -> "BitVector":
        """Freeze the vector and build the rank directory.

        Returns ``self`` so construction can be chained:
        ``bv = BitVector(bits).seal()``.
        """
        if self._sealed:
            return self
        blocks = [0]
        running = 0
        for word in self._words:
            running += _popcount(word)
            blocks.append(running)
        self._rank_blocks = blocks
        self._ones = running
        self._sealed = True
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError(f"bit index {index} out of range for size {self._size}")
        word_index, bit_index = divmod(index, _WORD_BITS)
        return (self._words[word_index] >> bit_index) & 1

    def __iter__(self) -> Iterator[int]:
        for index in range(self._size):
            yield self[index]

    @property
    def sealed(self) -> bool:
        """True once the rank directory has been built."""
        return self._sealed

    @property
    def ones(self) -> int:
        """Total number of set bits (requires a sealed vector)."""
        self._require_sealed()
        return self._ones

    def word_slice(self, start: int, length: int) -> int:
        """Bits ``[start, start + length)`` as an int (bit 0 = ``start``).

        A fast bulk accessor for consumers that scan whole node bitmaps
        (LOUDS-dense navigation) instead of one bit at a time.
        """
        if length <= 0:
            return 0
        if start < 0 or start + length > self._size:
            raise IndexError(
                f"slice [{start}, {start + length}) out of range for size {self._size}"
            )
        first_word, bit_offset = divmod(start, _WORD_BITS)
        words_needed = (bit_offset + length + _WORD_BITS - 1) // _WORD_BITS
        combined = 0
        for offset in range(words_needed):
            word_index = first_word + offset
            if word_index < len(self._words):
                combined |= self._words[word_index] << (offset * _WORD_BITS)
        combined >>= bit_offset
        return combined & ((1 << length) - 1)

    def rank1(self, index: int) -> int:
        """Number of set bits in ``[0, index)``.

        ``index`` may equal ``len(self)``, in which case the total
        popcount is returned.
        """
        self._require_sealed()
        if not 0 <= index <= self._size:
            raise IndexError(f"rank index {index} out of range for size {self._size}")
        word_index, bit_index = divmod(index, _WORD_BITS)
        count = self._rank_blocks[word_index]
        if bit_index:
            mask = (1 << bit_index) - 1
            count += _popcount(self._words[word_index] & mask)
        return count

    def rank0(self, index: int) -> int:
        """Number of clear bits in ``[0, index)``."""
        return index - self.rank1(index)

    def select1(self, count: int) -> int:
        """Position of the ``count``-th set bit, counting from 1.

        Raises :class:`ValueError` when fewer than ``count`` bits are set.
        """
        self._require_sealed()
        if count < 1 or count > self._ones:
            raise ValueError(f"select1({count}) out of range; vector has {self._ones} ones")
        # Binary search the first block whose prefix popcount reaches count.
        lo, hi = 0, len(self._words)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._rank_blocks[mid + 1] >= count:
                hi = mid
            else:
                lo = mid + 1
        remaining = count - self._rank_blocks[lo]
        word = self._words[lo]
        position = lo * _WORD_BITS
        while remaining:
            if word & 1:
                remaining -= 1
                if remaining == 0:
                    return position
            word >>= 1
            position += 1
        raise AssertionError("select directory inconsistent")  # pragma: no cover

    def select0(self, count: int) -> int:
        """Position of the ``count``-th clear bit, counting from 1."""
        self._require_sealed()
        zeros = self._size - self._ones
        if count < 1 or count > zeros:
            raise ValueError(f"select0({count}) out of range; vector has {zeros} zeros")
        # Binary search over rank0 = index - rank1(index) at block borders.
        lo, hi = 0, len(self._words)
        while lo < hi:
            mid = (lo + hi) // 2
            border = min((mid + 1) * _WORD_BITS, self._size)
            zeros_before = border - self._rank_blocks[mid + 1]
            # _rank_blocks counts full words; clamp to actual size.
            if zeros_before >= count:
                hi = mid
            else:
                lo = mid + 1
        position = lo * _WORD_BITS
        zeros_before = position - self._rank_blocks[lo]
        remaining = count - zeros_before
        word = self._words[lo] if lo < len(self._words) else 0
        while remaining:
            if position >= self._size:
                raise AssertionError("select0 directory inconsistent")  # pragma: no cover
            if not word & 1:
                remaining -= 1
                if remaining == 0:
                    return position
            word >>= 1
            position += 1
        raise AssertionError("select0 directory inconsistent")  # pragma: no cover

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Modeled storage footprint: payload words + rank directory.

        The C++ layout this models stores 64-bit payload words plus one
        32-bit cumulative popcount per word-block.
        """
        payload = len(self._words) * 8
        directory = len(self._rank_blocks) * 4 if self._sealed else 0
        return payload + directory

    def _require_sealed(self) -> None:
        if not self._sealed:
            raise ValueError("BitVector must be sealed before querying; call seal()")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "sealed" if self._sealed else "open"
        return f"BitVector(size={self._size}, ones={self._ones if self._sealed else '?'}, {state})"
