"""Workload specifications W1.1 - W6.2 (Table 3 of the paper).

A :class:`WorkloadSpec` is a named sequence of :class:`PhaseSpec` values;
each phase declares an operation mix (reads / scans / inserts / updates),
the key-selection distribution per operation kind, and scan-length
bounds.  The ``w11()`` .. ``w62()`` factories reproduce Table 3:

=====  =====================  ====================  ==================
name   reads                  scans                 inserts
=====  =====================  ====================  ==================
W1.1   49% Zipfian            49% Zipfian           2% Zipfian
W1.2   49% Normal             49% Normal            2% Zipfian
W1.3   49% Lognormal          49% Lognormal         2% Lognormal
W2     94% Uniform            ---                   (56% Lognormal +
                                                    20% Lognormal mix)
W3     100% prefix-random     ---                   ---
W4     75% Zipfian (YCSB)     25% Zipfian           ---
W5.1   20% Zipfian            ---                   80% Zipfian
W5.2   20% Zipfian            80% Zipfian           ---
W6.1   100% Zipfian           ---                   ---
W6.2   ---                    100% Zipfian          ---
=====  =====================  ====================  ==================

Scan lengths are uniform in [10, 50], for W4 in [100, 250].
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class OpKind(enum.Enum):
    """The operation kinds a workload mix may contain."""

    READ = "read"
    SCAN = "scan"
    INSERT = "insert"
    UPDATE = "update"


@dataclass(frozen=True)
class OpMix:
    """One operation kind's share and key distribution within a phase."""

    kind: OpKind
    fraction: float
    distribution: str  # 'zipf' | 'normal' | 'lognormal' | 'uniform' | 'prefix'
    params: Tuple[Tuple[str, float], ...] = ()

    def distribution_params(self) -> Dict[str, float]:
        """The distribution parameters as a dict."""
        return dict(self.params)


@dataclass(frozen=True)
class PhaseSpec:
    """One workload phase: total operations and the operation mix."""

    name: str
    num_ops: int
    mix: Tuple[OpMix, ...]
    scan_length: Tuple[int, int] = (10, 50)

    def __post_init__(self) -> None:
        total = sum(entry.fraction for entry in self.mix)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"phase {self.name!r} mix sums to {total}, expected 1.0")

    def scaled(self, num_ops: int) -> "PhaseSpec":
        """A copy with every phase resized to ``num_ops``."""
        return PhaseSpec(self.name, num_ops, self.mix, self.scan_length)


@dataclass(frozen=True)
class WorkloadSpec:
    """A named sequence of phases."""

    name: str
    phases: Tuple[PhaseSpec, ...]

    def scaled(self, ops_per_phase: int) -> "WorkloadSpec":
        """A copy with every phase resized to ``num_ops``."""
        return WorkloadSpec(
            self.name, tuple(phase.scaled(ops_per_phase) for phase in self.phases)
        )

    @property
    def total_ops(self) -> int:
        """Total operations across all phases."""
        return sum(phase.num_ops for phase in self.phases)


_DEFAULT_PHASE_OPS = 1_000_000


def _phase(name, mix, num_ops=_DEFAULT_PHASE_OPS, scan_length=(10, 50)):
    return PhaseSpec(name, num_ops, tuple(mix), scan_length)


def w11(alpha: float = 1.0, num_ops: int = _DEFAULT_PHASE_OPS) -> WorkloadSpec:
    """W1.1: 49% Zipf reads, 49% Zipf scans, 2% Zipf inserts."""
    mix = (
        OpMix(OpKind.READ, 0.49, "zipf", (("alpha", alpha),)),
        OpMix(OpKind.SCAN, 0.49, "zipf", (("alpha", alpha),)),
        OpMix(OpKind.INSERT, 0.02, "zipf", (("alpha", alpha),)),
    )
    return WorkloadSpec("W1.1", (_phase("zipfian", mix, num_ops),))


def w12(num_ops: int = _DEFAULT_PHASE_OPS) -> WorkloadSpec:
    """W1.2: 49% Normal reads, 49% Normal scans, 2% Zipf inserts."""
    mix = (
        OpMix(OpKind.READ, 0.49, "normal"),
        OpMix(OpKind.SCAN, 0.49, "normal"),
        OpMix(OpKind.INSERT, 0.02, "zipf", (("alpha", 1.0),)),
    )
    return WorkloadSpec("W1.2", (_phase("normal", mix, num_ops),))


def w13(num_ops: int = _DEFAULT_PHASE_OPS) -> WorkloadSpec:
    """W1.3: 49% Lognormal reads, 49% Lognormal scans, 2% Lognormal inserts."""
    mix = (
        OpMix(OpKind.READ, 0.49, "lognormal"),
        OpMix(OpKind.SCAN, 0.49, "lognormal"),
        OpMix(OpKind.INSERT, 0.02, "lognormal"),
    )
    return WorkloadSpec("W1.3", (_phase("lognormal", mix, num_ops),))


def w1_sequence(num_ops: int = _DEFAULT_PHASE_OPS, alpha: float = 1.0) -> WorkloadSpec:
    """The Figure 12 timeline: W1.1 then W1.2 then W1.3, back to back."""
    return WorkloadSpec(
        "W1",
        (
            w11(alpha, num_ops).phases[0],
            w12(num_ops).phases[0],
            w13(num_ops).phases[0],
        ),
    )


def w2(num_ops: int = _DEFAULT_PHASE_OPS) -> WorkloadSpec:
    """W2: 94% Uniform reads, 56%+20% Lognormal write mix scaled into 6%.

    Table 3 lists W2's write side as 56% Lognormal inserts with a 20%
    Lognormal component; combined with 94% uniform reads the write share
    is 6%, split 4.5% inserts / 1.5% updates here.
    """
    mix = (
        OpMix(OpKind.READ, 0.94, "uniform"),
        OpMix(OpKind.INSERT, 0.045, "lognormal"),
        OpMix(OpKind.UPDATE, 0.015, "lognormal"),
    )
    return WorkloadSpec("W2", (_phase("lognorm-uniform", mix, num_ops),))


def w3(num_ops: int = _DEFAULT_PHASE_OPS, num_phases: int = 2) -> WorkloadSpec:
    """W3: 100% prefix-random reads, in hot-range phases (Figure 20)."""
    phases = tuple(
        _phase(
            f"prefix-random-{index}",
            (OpMix(OpKind.READ, 1.0, "prefix", (("phase", float(index)),)),),
            num_ops,
        )
        for index in range(num_phases)
    )
    return WorkloadSpec("W3", phases)


def w4(
    num_ops: int = _DEFAULT_PHASE_OPS,
    hot_fraction: float = 0.01,
    hot_probability: float = 0.9,
) -> WorkloadSpec:
    """W4 (YCSB): 75% reads, 25% long scans over a 1% hot set.

    The paper uses "a custom read-only YCSB configuration with a hot set
    size of 1% of the dataset"; keys are drawn hotspot-style.
    """
    params = (("hot_fraction", hot_fraction), ("hot_probability", hot_probability))
    mix = (
        OpMix(OpKind.READ, 0.75, "hotspot", params),
        OpMix(OpKind.SCAN, 0.25, "hotspot", params),
    )
    return WorkloadSpec("W4", (_phase("ycsb", mix, num_ops, scan_length=(100, 250)),))


def w51(num_ops: int = _DEFAULT_PHASE_OPS, alpha: float = 1.0) -> WorkloadSpec:
    """W5.1: write-dominated — 20% Zipf reads, 80% Zipf inserts."""
    mix = (
        OpMix(OpKind.READ, 0.20, "zipf", (("alpha", alpha),)),
        OpMix(OpKind.INSERT, 0.80, "zipf", (("alpha", alpha),)),
    )
    return WorkloadSpec("W5.1", (_phase("writes", mix, num_ops),))


def w52(num_ops: int = _DEFAULT_PHASE_OPS, alpha: float = 1.0) -> WorkloadSpec:
    """W5.2: scan-dominated — 20% Zipf reads, 80% Zipf scans."""
    mix = (
        OpMix(OpKind.READ, 0.20, "zipf", (("alpha", alpha),)),
        OpMix(OpKind.SCAN, 0.80, "zipf", (("alpha", alpha),)),
    )
    return WorkloadSpec("W5.2", (_phase("scans", mix, num_ops),))


def w5_sequence(num_ops: int = _DEFAULT_PHASE_OPS, alpha: float = 1.0) -> WorkloadSpec:
    """The Figure 16 timeline: W5.1 then W5.2, back to back."""
    return WorkloadSpec("W5", (w51(num_ops, alpha).phases[0], w52(num_ops, alpha).phases[0]))


def w61(num_ops: int = _DEFAULT_PHASE_OPS, alpha: float = 1.0) -> WorkloadSpec:
    """W6.1: 100% Zipf point lookups (e-mail dataset)."""
    mix = (OpMix(OpKind.READ, 1.0, "zipf", (("alpha", alpha),)),)
    return WorkloadSpec("W6.1", (_phase("points", mix, num_ops),))


def w62(num_ops: int = _DEFAULT_PHASE_OPS, alpha: float = 1.0) -> WorkloadSpec:
    """W6.2: 100% Zipf range scans (e-mail dataset)."""
    mix = (OpMix(OpKind.SCAN, 1.0, "zipf", (("alpha", alpha),)),)
    return WorkloadSpec("W6.2", (_phase("scans", mix, num_ops),))
