"""Synthetic stand-ins for the paper's datasets (Section 5.1).

The paper's data is not shipped here, so each generator reproduces the
*statistical structure* that matters for the adaptation behaviour:

* :func:`osm_like_keys` — spatially clustered 64-bit integers mimicking
  S2 cell ids of uniformly sampled OpenStreetMap locations (clusters of
  near-consecutive ids separated by wide gaps).
* :func:`prefix_random_keys` — dbbench-style 64-bit user ids whose top
  44 bits come from a limited set of prefixes (Cao et al. 2020 found
  lookup frequency correlates with key prefix).
* :func:`ycsb_keys` — uniformly random 64-bit keys.
* :func:`consecutive_keys` — dense integer keys (Figures 15 and 17).
* :func:`email_keys` — host-reversed e-mail addresses (``com.foo@user``
  style), Zipf-weighted domains, as byte strings.
"""

from __future__ import annotations

import string
from typing import List

import numpy as np

_KEY_SPACE_BITS = 62  # keep keys comfortably inside signed 64-bit


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _dedupe_sorted(keys: np.ndarray, n: int) -> np.ndarray:
    unique = np.unique(keys)
    if len(unique) < n:
        raise ValueError(f"generator produced only {len(unique)} unique keys, need {n}")
    return unique[:n]


def osm_like_keys(n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Clustered 64-bit keys mimicking S2 cell ids.

    Roughly ``n / 64`` cluster centers are drawn uniformly; each cluster
    contributes a burst of nearby ids (geographic locality), yielding the
    dense-runs-with-gaps structure of real S2 data.
    """
    rng = _as_rng(rng)
    num_clusters = max(1, n // 64)
    centers = rng.integers(0, 1 << _KEY_SPACE_BITS, num_clusters, dtype=np.int64)
    per_cluster = (2 * n) // num_clusters + 1
    offsets = rng.integers(0, 1 << 20, (num_clusters, per_cluster), dtype=np.int64)
    keys = (centers[:, None] + offsets).ravel()
    return _dedupe_sorted(keys, n)


def consecutive_keys(n: int, start: int = 0) -> np.ndarray:
    """Dense integer keys ``start .. start + n - 1``."""
    return np.arange(start, start + n, dtype=np.int64)


def ycsb_keys(n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Uniformly random 64-bit keys (YCSB-style)."""
    rng = _as_rng(rng)
    keys = rng.integers(0, 1 << _KEY_SPACE_BITS, int(n * 1.1) + 16, dtype=np.int64)
    return _dedupe_sorted(keys, n)


def prefix_suffix_bits(n: int, num_prefixes: int = 64, density: float = 0.25) -> int:
    """Suffix width so each prefix range is ~``density``-saturated.

    The paper's dataset (172M user ids over 44-bit prefixes) has densely
    populated suffix spaces; at reduced scale the suffix width must shrink
    with it or the trie degenerates into single-child chains.
    """
    per_prefix = max(1, n // num_prefixes)
    bits = max(8, int(np.ceil(np.log2(per_prefix / density))))
    return min(bits, 40)


def prefix_random_keys(
    n: int,
    num_prefixes: int = 64,
    suffix_bits: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """dbbench-style user ids: a limited set of prefixes, random suffixes.

    The prefix ranges (the key bits above ``suffix_bits``) are what
    workload W3 assigns hot/cold phases to; the paper uses the 44 most
    significant bits of 64-bit ids, which :func:`prefix_suffix_bits`
    rescales to the generated key count.
    """
    rng = _as_rng(rng)
    if suffix_bits is None:
        suffix_bits = prefix_suffix_bits(n, num_prefixes)
    prefix_space_bits = _KEY_SPACE_BITS - suffix_bits
    prefixes = rng.integers(0, 1 << prefix_space_bits, num_prefixes, dtype=np.int64)
    per_prefix = (2 * n) // num_prefixes + 1
    suffixes = rng.integers(0, 1 << suffix_bits, (num_prefixes, per_prefix), dtype=np.int64)
    keys = ((prefixes[:, None] << suffix_bits) | suffixes).ravel()
    return _dedupe_sorted(keys, n)


def key_prefix(key: int, suffix_bits: int) -> int:
    """The prefix-range id of a :func:`prefix_random_keys` key."""
    return int(key) >> suffix_bits


_DOMAIN_WORDS = [
    "mail", "web", "net", "data", "cloud", "shop", "blue", "fast", "home",
    "tech", "info", "green", "alpha", "nova", "prime", "core", "link", "east",
    "west", "north", "south", "star", "open", "soft", "meta", "apex", "zen",
]
_TLDS = ["com", "org", "net", "de", "io", "edu"]


def email_keys(
    n: int,
    rng: np.random.Generator | int | None = None,
    max_local_length: int = 12,
) -> List[bytes]:
    """Host-reversed e-mail addresses as sorted unique byte strings.

    Mirrors the paper's real dataset shape: host-reversed form
    (``com.bluemail@alice``), Zipf-weighted domain popularity, average
    length around 22 bytes.  Callers append a terminator before handing
    these to the tries (:func:`repro.art.tree.terminated`).
    """
    rng = _as_rng(rng)
    # Build a domain pool with Zipf-ish popularity.
    domains = []
    for word_a in _DOMAIN_WORDS:
        for word_b in _DOMAIN_WORDS:
            for tld in _TLDS:
                domains.append(f"{tld}.{word_a}{word_b}")
    rng.shuffle(domains)
    domain_weights = np.arange(1, len(domains) + 1, dtype=np.float64) ** -1.0
    domain_cdf = np.cumsum(domain_weights)
    domain_cdf /= domain_cdf[-1]
    letters = np.array(list(string.ascii_lowercase + string.digits))

    emails = set()
    while len(emails) < n:
        batch = n - len(emails)
        domain_choices = np.searchsorted(domain_cdf, rng.random(batch))
        lengths = rng.integers(4, max_local_length + 1, batch)
        for domain_index, length in zip(domain_choices, lengths):
            local = "".join(rng.choice(letters, int(length)))
            emails.add(f"{domains[domain_index]}@{local}".encode("ascii"))
    return sorted(emails)
