"""Operation stream generation: spec + dataset -> concrete operations.

:func:`generate_phase` materializes one phase of a workload spec against
a sorted key array: every operation picks its key through the phase's
distribution; inserts derive *new* keys near a distribution-selected
existing key (so insert skew matches the paper's "2% Zipfian inserts");
scans carry a uniform length from the phase's range.

The 'prefix' distribution implements W3: keys are grouped into prefix
ranges (the 44 most significant bits), a subset of ranges is hot per
phase, and lookups draw ranges Zipf-weighted from that phase's hot set —
the structure Cao et al. extracted from Facebook's RocksDB workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.workloads.distributions import indices_for, zipf_indices
from repro.workloads.spec import OpKind, PhaseSpec, WorkloadSpec


@dataclass(frozen=True)
class Operation:
    """One index operation."""

    kind: OpKind
    key: int
    value: int = 0
    scan_length: int = 0


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _detect_suffix_bits(keys: np.ndarray, max_ranges: int = 256) -> int:
    """Smallest shift that groups ``keys`` into at most ``max_ranges``
    prefix ranges — recovers the generator's prefix structure."""
    for shift in range(8, 56):
        if len(np.unique(keys >> shift)) <= max_ranges:
            return shift
    return 56


def _prefix_phase_indices(
    keys: np.ndarray,
    size: int,
    phase: int,
    rng: np.random.Generator,
    hot_fraction: float = 0.1,
    suffix_bits: int | None = None,
) -> np.ndarray:
    """W3 key selection: Zipf over the phase's hot prefix ranges."""
    if suffix_bits is None:
        suffix_bits = _detect_suffix_bits(np.asarray(keys))
    prefixes = np.asarray(keys) >> suffix_bits
    boundaries = np.flatnonzero(np.diff(prefixes)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(keys)]))
    num_ranges = len(starts)
    hot_count = max(1, int(num_ranges * hot_fraction))
    # Deterministic per-phase hot assignment: shuffle ranges once, then
    # slice a disjoint window per phase so phases have different hot sets.
    order = np.random.default_rng(num_ranges).permutation(num_ranges)
    offset = (phase * hot_count) % num_ranges
    hot_ranges = order[offset : offset + hot_count]
    if len(hot_ranges) < hot_count:  # wrap around
        hot_ranges = np.concatenate((hot_ranges, order[: hot_count - len(hot_ranges)]))
    range_choice = hot_ranges[zipf_indices(len(hot_ranges), size, alpha=1.0, rng=rng)]
    lo = starts[range_choice]
    hi = ends[range_choice]
    return (lo + (rng.random(size) * (hi - lo)).astype(np.int64)).clip(0, len(keys) - 1)


def generate_phase(
    keys: Sequence[int] | np.ndarray,
    phase: PhaseSpec,
    rng: np.random.Generator | int | None = None,
    phase_index: int = 0,
) -> List[Operation]:
    """Materialize one phase against a sorted key array."""
    rng = _as_rng(rng)
    keys = np.asarray(keys, dtype=np.int64)
    n = len(keys)
    if n == 0:
        raise ValueError("cannot generate a workload over an empty key set")

    # Assign each operation slot a kind according to the mix fractions.
    fractions = np.array([entry.fraction for entry in phase.mix])
    kinds = rng.choice(len(phase.mix), size=phase.num_ops, p=fractions / fractions.sum())

    # Draw the key indices for each mix entry in one vectorized batch.
    indices = np.empty(phase.num_ops, dtype=np.int64)
    for mix_position, entry in enumerate(phase.mix):
        mask = kinds == mix_position
        count = int(mask.sum())
        if count == 0:
            continue
        params = entry.distribution_params()
        if entry.distribution == "prefix":
            selected_phase = int(params.get("phase", phase_index))
            suffix_bits = params.get("suffix_bits")
            indices[mask] = _prefix_phase_indices(
                keys,
                count,
                selected_phase,
                rng,
                suffix_bits=int(suffix_bits) if suffix_bits is not None else None,
            )
        else:
            indices[mask] = indices_for(entry.distribution, n, count, rng=rng, **params)

    scan_lo, scan_hi = phase.scan_length
    scan_lengths = rng.integers(scan_lo, scan_hi + 1, phase.num_ops)
    insert_offsets = rng.integers(1, 1 << 12, phase.num_ops)

    operations: List[Operation] = []
    for position in range(phase.num_ops):
        entry = phase.mix[kinds[position]]
        base_key = int(keys[indices[position]])
        if entry.kind is OpKind.INSERT:
            # New key adjacent to a distribution-chosen existing key, so
            # insert skew follows the same hot regions as the reads.
            key = base_key + int(insert_offsets[position])
            operations.append(Operation(OpKind.INSERT, key, value=key ^ 0x5BD1E995))
        elif entry.kind is OpKind.UPDATE:
            operations.append(Operation(OpKind.UPDATE, base_key, value=position))
        elif entry.kind is OpKind.SCAN:
            operations.append(
                Operation(OpKind.SCAN, base_key, scan_length=int(scan_lengths[position]))
            )
        else:
            operations.append(Operation(OpKind.READ, base_key))
    return operations


def generate_operations(
    keys: Sequence[int] | np.ndarray,
    workload: WorkloadSpec,
    rng: np.random.Generator | int | None = None,
) -> Iterator[List[Operation]]:
    """Yield one operation list per phase of ``workload``."""
    rng = _as_rng(rng)
    for phase_index, phase in enumerate(workload.phases):
        yield generate_phase(keys, phase, rng=rng, phase_index=phase_index)
