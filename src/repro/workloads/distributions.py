"""Key-rank selection distributions (Table 3 / Figure 11).

Every function returns an array of integer indices into a sorted key
array of size ``n``.  The parameters default to the paper's: Zipf with
``alpha`` in (0, 1.6], Normal with relative mu = 0.5 and sigma = 0.03,
Lognormal with mu = 0 and sigma = 0.1, and Uniform.

Zipf indices are rank-contiguous by default (rank r -> index r), as in
YCSB and the paper's Figure 11 CDFs: the hot keys form contiguous key
ranges, which is precisely the locality hybrid indexes exploit at node
granularity.  Pass ``permute=True`` to scatter the hot ranks across the
key space instead (an adversarial setting for per-node adaptation).
"""

from __future__ import annotations

import numpy as np

DEFAULT_ZIPF_ALPHA = 1.0
DEFAULT_NORMAL_MU = 0.5
DEFAULT_NORMAL_SIGMA = 0.03
DEFAULT_LOGNORMAL_MU = 0.0
DEFAULT_LOGNORMAL_SIGMA = 0.1


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def zipf_cdf(n: int, alpha: float) -> np.ndarray:
    """Cumulative Zipf(alpha) probabilities over ranks 1..n."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    weights = np.arange(1, n + 1, dtype=np.float64) ** -alpha
    cumulative = np.cumsum(weights)
    return cumulative / cumulative[-1]


def zipf_indices(
    n: int,
    size: int,
    alpha: float = DEFAULT_ZIPF_ALPHA,
    rng: np.random.Generator | int | None = None,
    permute: bool = False,
) -> np.ndarray:
    """Zipf(alpha)-distributed indices into ``n`` keys."""
    rng = _as_rng(rng)
    cdf = zipf_cdf(n, alpha)
    ranks = np.searchsorted(cdf, rng.random(size), side="left")
    if not permute:
        return ranks
    permutation = np.random.default_rng(n * 2654435761 % (2**63)).permutation(n)
    return permutation[ranks]


def normal_indices(
    n: int,
    size: int,
    mu: float = DEFAULT_NORMAL_MU,
    sigma: float = DEFAULT_NORMAL_SIGMA,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Normally distributed indices (mu, sigma relative to ``n``)."""
    rng = _as_rng(rng)
    samples = rng.normal(mu * n, sigma * n, size)
    return np.clip(np.rint(samples), 0, n - 1).astype(np.int64)


def lognormal_indices(
    n: int,
    size: int,
    mu: float = DEFAULT_LOGNORMAL_MU,
    sigma: float = DEFAULT_LOGNORMAL_SIGMA,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Lognormal(mu, sigma)-distributed indices.

    Samples are mapped onto [0, n) by scaling with the distribution's
    ~99.9th percentile ``exp(mu + 3.3 sigma)``; with the paper's tight
    sigma = 0.1 this concentrates the mass on a narrow hot band — the
    steep-step CDF of Figure 11.
    """
    rng = _as_rng(rng)
    samples = rng.lognormal(mu, sigma, size)
    scale = np.exp(mu + 3.3 * sigma)
    indices = np.floor(samples / scale * n)
    return np.clip(indices, 0, n - 1).astype(np.int64)


def hotspot_indices(
    n: int,
    size: int,
    hot_fraction: float = 0.01,
    hot_probability: float = 0.9,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """YCSB-style hotspot selection (the paper's W4 configuration).

    With probability ``hot_probability`` an access goes uniformly into the
    hot set — the first ``hot_fraction`` of the key ranks (the paper uses
    a hot set of 1% of the dataset) — otherwise uniformly into the rest.
    """
    rng = _as_rng(rng)
    if not 0 < hot_fraction < 1:
        raise ValueError(f"hot_fraction must be in (0, 1), got {hot_fraction}")
    if not 0 <= hot_probability <= 1:
        raise ValueError(f"hot_probability must be in [0, 1], got {hot_probability}")
    hot_count = max(1, int(n * hot_fraction))
    in_hot = rng.random(size) < hot_probability
    indices = np.empty(size, dtype=np.int64)
    hot_draws = int(in_hot.sum())
    indices[in_hot] = rng.integers(0, hot_count, hot_draws, dtype=np.int64)
    if size - hot_draws:
        indices[~in_hot] = rng.integers(
            hot_count, max(hot_count + 1, n), size - hot_draws, dtype=np.int64
        )
    return np.clip(indices, 0, n - 1)


def uniform_indices(
    n: int,
    size: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Uniformly distributed indices."""
    rng = _as_rng(rng)
    return rng.integers(0, n, size, dtype=np.int64)


def indices_for(
    distribution: str,
    n: int,
    size: int,
    rng: np.random.Generator | int | None = None,
    **params,
) -> np.ndarray:
    """Dispatch by distribution name ('zipf'/'normal'/'lognormal'/'uniform')."""
    dispatch = {
        "zipf": zipf_indices,
        "normal": normal_indices,
        "lognormal": lognormal_indices,
        "uniform": uniform_indices,
        "hotspot": hotspot_indices,
    }
    if distribution not in dispatch:
        raise ValueError(
            f"unknown distribution {distribution!r}; expected one of {sorted(dispatch)}"
        )
    return dispatch[distribution](n, size, rng=rng, **params)
