"""Datasets and query workloads of the paper's evaluation (Section 5.1).

:mod:`~repro.workloads.distributions` implements the four key-selection
distributions (Zipf, Normal, Lognormal, Uniform) over key ranks;
:mod:`~repro.workloads.datasets` generates synthetic stand-ins for the
paper's datasets (OSM S2 cells, dbbench user ids, YCSB, e-mail
addresses); :mod:`~repro.workloads.spec` declares the workload mixes
W1.1-W6.2 of Table 3; and :mod:`~repro.workloads.stream` turns a spec
plus a dataset into a concrete operation stream.
"""

from repro.workloads.datasets import (
    consecutive_keys,
    email_keys,
    osm_like_keys,
    prefix_random_keys,
    ycsb_keys,
)
from repro.workloads.distributions import (
    hotspot_indices,
    lognormal_indices,
    normal_indices,
    uniform_indices,
    zipf_indices,
)
from repro.workloads.spec import (
    OpKind,
    PhaseSpec,
    WorkloadSpec,
    w11,
    w12,
    w13,
    w2,
    w3,
    w4,
    w51,
    w52,
    w61,
    w62,
)
from repro.workloads.stream import Operation, generate_operations, generate_phase

__all__ = [
    "consecutive_keys",
    "email_keys",
    "osm_like_keys",
    "prefix_random_keys",
    "ycsb_keys",
    "hotspot_indices",
    "lognormal_indices",
    "normal_indices",
    "uniform_indices",
    "zipf_indices",
    "OpKind",
    "PhaseSpec",
    "WorkloadSpec",
    "w11",
    "w12",
    "w13",
    "w2",
    "w3",
    "w4",
    "w51",
    "w52",
    "w61",
    "w62",
    "Operation",
    "generate_operations",
    "generate_phase",
]
