"""Hybrid B+-tree experiments: Figures 12, 13, 14, 15, 16, 17.

Shared plumbing: an OSM-like (or consecutive) dataset, the index variants
of Section 5.2 (Gapped / Packed / Succinct single-encoding baselines, the
adaptive AHI-BTree, the offline pre-trained tree, and the Dual-Stage
baseline), and the interval runner.  Every experiment returns both the
paper-shaped rows/series and the raw :class:`RunResult` objects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.core.access import AccessType
from repro.core.budget import MemoryBudget
from repro.core.trained import train_offline
from repro.dualstage.index import DualStageIndex, StaticEncoding
from repro.harness.runner import IntKeyIndexAdapter, RunResult, run_operations
from repro.sim.costmodel import CostModel
from repro.workloads.datasets import consecutive_keys, osm_like_keys
from repro.workloads.distributions import zipf_indices
from repro.workloads.spec import WorkloadSpec, w1_sequence, w2, w4, w5_sequence, w11, w12, w13
from repro.workloads.stream import generate_phase

DEFAULT_LEAF_CAPACITY = 64  # smaller leaves -> more leaves at laptop scale


def scaled_manager_config(
    budget: Optional[MemoryBudget] = None,
    skip_min: int = 5,
    skip_max: int = 100,
    max_sample_size: int = 1_500,
    epsilon: float = 0.10,
    delta: float = 0.10,
) -> "ManagerConfig":
    """Adaptation-manager knobs rescaled to laptop-size experiments.

    The paper's defaults (skip in [50, 500], epsilon = delta = 5%) are
    tuned for 2M-leaf indexes and 50M-query phases; at 10^5 keys per
    phase they would never complete a single sampling phase.  This keeps
    the control loop identical but shortens the phases proportionally.
    """
    from repro.bptree.hybrid import BTREE_ENCODING_ORDER
    from repro.core.manager import ManagerConfig

    return ManagerConfig(
        encoding_order=BTREE_ENCODING_ORDER,
        budget=budget or MemoryBudget.unbounded(),
        initial_skip_length=skip_min,
        skip_min=skip_min,
        skip_max=skip_max,
        max_sample_size=max_sample_size,
        epsilon=epsilon,
        delta=delta,
    )


def _pairs_from(keys: np.ndarray) -> List[Tuple[int, int]]:
    return [(int(key), index) for index, key in enumerate(keys)]


def _pretrain(
    tree: AdaptiveBPlusTree,
    training_keys: Sequence[int],
    budget: Optional[MemoryBudget],
) -> int:
    """Offline training (Section 3.2): replay a historic key trace, rank
    the touched leaves, expand best-first under the budget.

    Without an explicit budget, training may expand at most up to twice
    the compacted size — an unbounded trained tree would simply converge
    to the all-Gapped tree on broad traces.
    """
    tree.manager.disable()
    if budget is None:
        budget = MemoryBudget.absolute(2 * tree.size_bytes())
    trace = []
    for key in training_keys:
        leaf, _ = tree.find_leaf(int(key))
        trace.append((leaf, AccessType.READ))
    return train_offline(tree, trace, LeafEncoding.GAPPED, budget)


def build_btree_variants(
    pairs: List[Tuple[int, int]],
    training_keys: Optional[Sequence[int]] = None,
    budget: Optional[MemoryBudget] = None,
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    include: Sequence[str] = ("gapped", "packed", "succinct", "ahi", "pretrained"),
    config_kwargs: Optional[Dict] = None,
) -> Dict[str, object]:
    """The Section 5.2 index lineup over one dataset.

    ``config_kwargs`` forwards extra knobs to :func:`scaled_manager_config`
    (experiments with very short phases shrink the sampling loop further).
    """
    config_kwargs = config_kwargs or {}
    variants: Dict[str, object] = {}
    for name in include:
        if name == "gapped":
            variants[name] = BPlusTree.bulk_load(
                pairs, LeafEncoding.GAPPED, leaf_capacity=leaf_capacity
            )
        elif name == "packed":
            variants[name] = BPlusTree.bulk_load(
                pairs, LeafEncoding.PACKED, leaf_capacity=leaf_capacity
            )
        elif name == "succinct":
            variants[name] = BPlusTree.bulk_load(
                pairs, LeafEncoding.SUCCINCT, leaf_capacity=leaf_capacity
            )
        elif name == "ahi":
            variants[name] = AdaptiveBPlusTree.bulk_load_adaptive(
                pairs,
                leaf_capacity=leaf_capacity,
                manager_config=scaled_manager_config(budget, **config_kwargs),
            )
        elif name == "pretrained":
            tree = AdaptiveBPlusTree.bulk_load_adaptive(
                pairs,
                leaf_capacity=leaf_capacity,
                manager_config=scaled_manager_config(budget, **config_kwargs),
            )
            if training_keys is not None:
                _pretrain(tree, training_keys, budget)
            else:
                tree.manager.disable()
            variants[name] = tree
        elif name in ("dualstage-succinct", "dualstage-packed"):
            encoding = (
                StaticEncoding.SUCCINCT
                if name == "dualstage-succinct"
                else StaticEncoding.PACKED
            )
            # The paper's Figure 17 setup: the dynamic stage holds the
            # latest-inserted 5% of all data; merges trigger above that.
            split = max(1, int(len(pairs) * 0.95))
            index = DualStageIndex.bulk_load(
                pairs[:split], encoding, merge_ratio=0.10
            )
            for key, value in pairs[split:]:
                index.insert(key, value)
            variants[name] = index
        else:
            raise ValueError(f"unknown index variant {name!r}")
    return variants


def _run_workload_over_variants(
    variants: Dict[str, object],
    keys: np.ndarray,
    workload: WorkloadSpec,
    interval_ops: int,
    cost_model: Optional[CostModel] = None,
    seed: int = 1,
) -> Dict[str, RunResult]:
    """Run the same pre-generated operation stream against every variant."""
    cost_model = cost_model or CostModel()
    phase_operations = [
        generate_phase(keys, phase, rng=np.random.default_rng(seed + index), phase_index=index)
        for index, phase in enumerate(workload.phases)
    ]
    results: Dict[str, RunResult] = {}
    for name, index in variants.items():
        adapter = IntKeyIndexAdapter(index)
        result = RunResult()
        for operations in phase_operations:
            run_operations(adapter, operations, cost_model, interval_ops, result)
        results[name] = result
    return results


# ----------------------------------------------------------------------
# Figure 12: latency over time across W1.1 -> W1.2 -> W1.3 (+ final sizes)
# ----------------------------------------------------------------------
def experiment_fig12(
    num_keys: int = 100_000,
    ops_per_phase: int = 120_000,
    interval_ops: int = 10_000,
    training_ops: int = 30_000,
    seed: int = 0,
) -> Dict:
    """The headline timeline: adaptive vs single-encoding trees over the
    three-phase W1 workload on the OSM dataset."""
    rng = np.random.default_rng(seed)
    keys = osm_like_keys(num_keys, rng)
    pairs = _pairs_from(keys)
    training_keys = keys[zipf_indices(num_keys, training_ops, alpha=1.0, rng=rng)]
    variants = build_btree_variants(pairs, training_keys=training_keys)
    workload = w1_sequence(num_ops=ops_per_phase)
    results = _run_workload_over_variants(variants, keys, workload, interval_ops, seed=seed + 1)
    return {
        "series": {name: result.series("modeled_ns_per_op") for name, result in results.items()},
        "sizes": {
            name: (result.final_index_bytes, result.final_aux_bytes)
            for name, result in results.items()
        },
        "results": results,
        "adaptation_events": variants["ahi"].manager.events.as_dicts(),
        "intervals_per_phase": ops_per_phase // interval_ops,
    }


# ----------------------------------------------------------------------
# Figure 13: space-performance trade-off under C = P * S
# ----------------------------------------------------------------------
def experiment_fig13(
    num_keys: int = 100_000,
    num_ops: int = 120_000,
    interval_ops: int = 20_000,
    r_exponent: float = 1.0,
    seed: int = 0,
) -> Dict:
    """Average latency, final size, and the cost function C = P * S^r for
    W1.2 and W1.3 across the index lineup."""
    rng = np.random.default_rng(seed)
    keys = osm_like_keys(num_keys, rng)
    pairs = _pairs_from(keys)
    rows = []
    for workload_factory, label in ((w12, "W1.2"), (w13, "W1.3")):
        # Train the offline variant on the *same* distribution it will be
        # evaluated under (the paper's trained tree knows its workload).
        workload = workload_factory(num_ops)
        read_mix = workload.phases[0].mix[0]
        from repro.workloads.distributions import indices_for

        training_keys = keys[
            indices_for(
                read_mix.distribution,
                num_keys,
                num_ops // 4,
                rng=rng,
                **read_mix.distribution_params(),
            )
        ]
        variants = build_btree_variants(pairs, training_keys=training_keys)
        results = _run_workload_over_variants(
            variants, keys, workload_factory(num_ops), interval_ops, seed=seed + 2
        )
        for name, result in results.items():
            latency = result.modeled_ns_per_op
            size = result.final_total_bytes
            cost = latency * (size ** r_exponent)
            rows.append((label, name, round(latency, 1), size, round(cost / 1e9, 3)))
    return {
        "headers": ["workload", "index", "modeled_ns_per_op", "total_bytes", "cost_C/1e9"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Figure 14: skew sweep over the Zipf parameter alpha
# ----------------------------------------------------------------------
def experiment_fig14(
    num_keys: int = 60_000,
    num_ops: int = 60_000,
    alphas: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6),
    interval_ops: int = 20_000,
    include: Sequence[str] = ("gapped", "packed", "succinct", "ahi", "pretrained"),
    seed: int = 0,
) -> Dict:
    """Latency and size vs workload skew; the adaptive tree's win grows
    with alpha and a break-even against Succinct appears at low skew."""
    rng = np.random.default_rng(seed)
    keys = osm_like_keys(num_keys, rng)
    pairs = _pairs_from(keys)
    rows = []
    for alpha in alphas:
        training_keys = keys[zipf_indices(num_keys, num_ops // 4, alpha=alpha, rng=rng)]
        variants = build_btree_variants(pairs, training_keys=training_keys, include=include)
        results = _run_workload_over_variants(
            variants, keys, w11(alpha=alpha, num_ops=num_ops), interval_ops, seed=seed + 3
        )
        for name, result in results.items():
            rows.append(
                (
                    round(alpha, 2),
                    name,
                    round(result.modeled_ns_per_op, 1),
                    result.final_total_bytes,
                )
            )
    return {
        "headers": ["alpha", "index", "modeled_ns_per_op", "total_bytes"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Figure 15: memory-budget sweep
# ----------------------------------------------------------------------
def experiment_fig15(
    num_keys: int = 50_000,
    num_ops: int = 100_000,
    budget_fractions: Sequence[float] = (0.35, 0.45, 0.55, 0.70, 0.85, 1.0),
    interval_ops: int = 20_000,
    seed: int = 0,
) -> Dict:
    """AHI-BTree under increasing absolute memory budgets on consecutive
    keys (the paper's Figure 15 uses 50M consecutive 64-bit keys).

    Budgets are expressed as fractions of the all-Gapped tree size; the
    rows report modeled latency, final size, and the share of leaves that
    ended up expanded."""
    keys = consecutive_keys(num_keys)
    pairs = _pairs_from(keys)
    gapped_size = BPlusTree.bulk_load(
        pairs, LeafEncoding.GAPPED, leaf_capacity=DEFAULT_LEAF_CAPACITY
    ).size_bytes()
    succinct_size = BPlusTree.bulk_load(
        pairs, LeafEncoding.SUCCINCT, leaf_capacity=DEFAULT_LEAF_CAPACITY
    ).size_bytes()
    workload = w11(alpha=1.0, num_ops=num_ops)
    rows = []
    for fraction in budget_fractions:
        budget_bytes = int(gapped_size * fraction)
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs,
            leaf_capacity=DEFAULT_LEAF_CAPACITY,
            manager_config=scaled_manager_config(MemoryBudget.absolute(budget_bytes)),
        )
        results = _run_workload_over_variants(
            {"ahi": tree}, keys, workload, interval_ops, seed=seed + 4
        )
        result = results["ahi"]
        counts = tree.encoding_counts()
        expanded = counts.get(LeafEncoding.GAPPED, 0) + counts.get(LeafEncoding.PACKED, 0)
        rows.append(
            (
                budget_bytes,
                round(result.modeled_ns_per_op, 1),
                result.final_index_bytes,
                round(expanded / max(1, tree.num_leaves), 3),
            )
        )
    return {
        "headers": ["budget_bytes", "modeled_ns_per_op", "index_bytes", "expanded_leaf_share"],
        "rows": rows,
        "gapped_bytes": gapped_size,
        "succinct_bytes": succinct_size,
    }


# ----------------------------------------------------------------------
# Figure 16: write-dominated then scan-dominated phases
# ----------------------------------------------------------------------
def experiment_fig16(
    num_keys: int = 60_000,
    ops_per_phase: int = 80_000,
    interval_ops: int = 10_000,
    seed: int = 0,
) -> Dict:
    """W5.1 (80% inserts) then W5.2 (80% scans) on the OSM dataset:
    eager expansions during the write phase, compactions afterwards."""
    rng = np.random.default_rng(seed)
    keys = osm_like_keys(num_keys, rng)
    pairs = _pairs_from(keys)
    # Figure 16 plots very short intervals (100k queries in the paper),
    # so the sampling loop is tightened further for responsiveness.
    variants = build_btree_variants(
        pairs,
        include=("gapped", "packed", "succinct", "ahi"),
        config_kwargs={"skip_min": 2, "skip_max": 40, "max_sample_size": 800},
    )
    workload = w5_sequence(num_ops=ops_per_phase)
    results = _run_workload_over_variants(variants, keys, workload, interval_ops, seed=seed + 5)
    ahi = results["ahi"]
    return {
        "series": {name: result.series("modeled_ns_per_op") for name, result in results.items()},
        "size_series": {
            name: result.series("index_bytes") for name, result in results.items()
        },
        "expansions": ahi.series("expansions"),
        "compactions": ahi.series("compactions"),
        "results": results,
        "adaptation_events": variants["ahi"].manager.events.as_dicts(),
        "intervals_per_phase": ops_per_phase // interval_ops,
    }


# ----------------------------------------------------------------------
# Figure 17: AHI-BTree vs the Dual-Stage baseline
# ----------------------------------------------------------------------
def experiment_fig17(
    num_keys: int = 100_000,
    num_ops: int = 100_000,
    interval_ops: int = 20_000,
    seed: int = 0,
) -> Dict:
    """Space and performance of AHI-BTree vs Dual-Stage under W2
    (lognormal writes + uniform reads) and W4 (YCSB zipf read/scan)."""
    keys = consecutive_keys(num_keys)
    pairs = _pairs_from(keys)
    rows = []
    for workload_factory, label in ((w2, "W2"), (w4, "W4")):
        variants = build_btree_variants(
            pairs,
            include=(
                "gapped",
                "packed",
                "succinct",
                "ahi",
                "dualstage-succinct",
                "dualstage-packed",
            ),
        )
        results = _run_workload_over_variants(
            variants, keys, workload_factory(num_ops), interval_ops, seed=seed + 6
        )
        for name, result in results.items():
            rows.append(
                (
                    label,
                    name,
                    round(result.modeled_ns_per_op, 1),
                    result.final_total_bytes,
                )
            )
    return {
        "headers": ["workload", "index", "modeled_ns_per_op", "total_bytes"],
        "rows": rows,
    }
