"""Experiment harness: run workloads, collect series, render paper tables.

:mod:`~repro.harness.runner` executes an operation stream against any
index (through a small adapter), snapshotting modeled latency, sizes, and
migration counts per interval — the raw material of the paper's timeline
figures.  :mod:`~repro.harness.experiments` has one entry point per paper
table/figure; :mod:`~repro.harness.report` renders their results in the
paper's row/series shape.
"""

from repro.harness.runner import (
    ByteKeyIndexAdapter,
    IntKeyIndexAdapter,
    IntervalStats,
    RunResult,
    run_operations,
)

__all__ = [
    "ByteKeyIndexAdapter",
    "IntKeyIndexAdapter",
    "IntervalStats",
    "RunResult",
    "run_operations",
]
