"""Workload execution and interval-series collection.

``run_operations`` drives an operation stream against an index adapter
and snapshots, every ``interval_ops`` operations:

* modeled ns/op — the cost model priced over the counter events of the
  interval (structural work of real executed operations, including
  sampling, classification, and migration overhead, exactly as the
  paper's measurements include them);
* wall-clock ns/op — honest Python time, reported alongside;
* index and sampling-framework sizes, and cumulative migrations.

Adapters bridge key conventions: :class:`IntKeyIndexAdapter` for the
integer-keyed B+-trees and the dual-stage baseline,
:class:`ByteKeyIndexAdapter` for the tries (operations then carry key
*ranks* into a byte-key array).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.manager import AdaptationManager
from repro.obs.metrics import COST_NS_BUCKETS, SIZE_BUCKETS
from repro.obs.runtime import active_registry, active_tracer
from repro.sim.costmodel import CostModel
from repro.workloads.spec import OpKind
from repro.workloads.stream import Operation


@dataclass(frozen=True)
class IntervalStats:
    """One measurement interval."""

    interval: int
    operations: int
    modeled_ns_per_op: float
    wall_ns_per_op: float
    index_bytes: int
    aux_bytes: int          # sampling framework footprint
    expansions: int         # cumulative
    compactions: int        # cumulative
    skip_length: Optional[int] = None
    adaptation_phases: int = 0


@dataclass
class RunResult:
    """Full run: interval series plus totals."""

    intervals: List[IntervalStats] = field(default_factory=list)
    total_operations: int = 0
    total_modeled_ns: float = 0.0
    total_wall_ns: float = 0.0
    final_index_bytes: int = 0
    final_aux_bytes: int = 0

    @property
    def modeled_ns_per_op(self) -> float:
        """Average modeled nanoseconds per operation."""
        if self.total_operations == 0:
            return 0.0
        return self.total_modeled_ns / self.total_operations

    @property
    def wall_ns_per_op(self) -> float:
        """Average wall-clock nanoseconds per operation."""
        if self.total_operations == 0:
            return 0.0
        return self.total_wall_ns / self.total_operations

    @property
    def final_total_bytes(self) -> int:
        """Final index plus sampling-framework bytes."""
        return self.final_index_bytes + self.final_aux_bytes

    def series(self, attribute: str) -> List[float]:
        """One interval-series attribute as a list."""
        return [getattr(stats, attribute) for stats in self.intervals]


class _BaseAdapter:
    """Counter plumbing shared by the adapters."""

    def __init__(self, index) -> None:
        self.index = index
        self._manager: Optional[AdaptationManager] = getattr(index, "manager", None)

    # -- counters -------------------------------------------------------
    def counter_snapshot(self) -> Dict[str, int]:
        """All counter events as a dict (tree + manager)."""
        events = self.index.counters.snapshot()
        if self._manager is not None:
            managed = self._manager.counters
            events["heap_op"] = events.get("heap_op", 0) + managed.heap_operations
            events["classify_item"] = (
                events.get("classify_item", 0) + managed.classified_items
            )
            events["sample_track"] = events.get("sample_track", 0) + managed.map_updates
            if self._manager.config.use_bloom_filter:
                events["bloom_check"] = events.get("bloom_check", 0) + managed.sampled
        return events

    # -- sizes and migrations --------------------------------------------
    def index_bytes(self) -> int:
        """Modeled index size in bytes."""
        return self.index.size_bytes()

    def aux_bytes(self) -> int:
        """Modeled sampling-framework size in bytes."""
        return self._manager.size_bytes() if self._manager is not None else 0

    def expansions(self) -> int:
        """Manager-driven expansions plus the tree's eager insert
        expansions — both are encoding migrations toward the fast end."""
        eager = sum(
            count
            for event, count in self.index.counters.snapshot().items()
            if event.startswith("eager_expansion:")
        )
        managed = self._manager.counters.expansions if self._manager is not None else 0
        return managed + eager

    def compactions(self) -> int:
        """Cumulative compactions."""
        return self._manager.counters.compactions if self._manager is not None else 0

    def skip_length(self) -> Optional[int]:
        """The current skip length."""
        return self._manager.skip_length if self._manager is not None else None

    def adaptation_phases(self) -> int:
        """Adaptation phases completed so far."""
        return (
            self._manager.counters.adaptation_phases if self._manager is not None else 0
        )

    @property
    def manager(self) -> Optional[AdaptationManager]:
        """The adaptation manager, if this index has one."""
        return self._manager


class IntKeyIndexAdapter(_BaseAdapter):
    """Adapter for integer-keyed indexes (B+-trees, dual-stage)."""

    def execute(self, op: Operation) -> None:
        """Run one operation against the wrapped index."""
        if op.kind is OpKind.READ:
            self.index.lookup(op.key)
        elif op.kind is OpKind.SCAN:
            self.index.scan(op.key, op.scan_length)
        elif op.kind is OpKind.INSERT:
            self.index.insert(op.key, op.value)
        elif op.kind is OpKind.UPDATE:
            if not self.index.update(op.key, op.value):
                self.index.insert(op.key, op.value)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unsupported operation kind {op.kind}")


class ByteKeyIndexAdapter(_BaseAdapter):
    """Adapter for byte-keyed tries; operation keys are ranks into
    ``byte_keys`` (read-only workloads: the tries are static)."""

    def __init__(self, index, byte_keys: Sequence[bytes]) -> None:
        super().__init__(index)
        self.byte_keys = byte_keys

    def execute(self, op: Operation) -> None:
        """Run one operation against the wrapped index."""
        key = self.byte_keys[op.key % len(self.byte_keys)]
        if op.kind is OpKind.READ:
            self.index.lookup(key)
        elif op.kind is OpKind.SCAN:
            self.index.scan(key, op.scan_length)
        else:
            raise ValueError(f"tries do not support {op.kind} operations")


def run_operations(
    adapter: _BaseAdapter,
    operations: Sequence[Operation],
    cost_model: Optional[CostModel] = None,
    interval_ops: int = 10_000,
    result: Optional[RunResult] = None,
) -> RunResult:
    """Execute ``operations``; append interval stats to ``result``.

    Pass the same ``result`` across phases to build multi-phase
    timelines (Figures 12, 16, 20).
    """
    cost_model = cost_model or CostModel()
    result = result if result is not None else RunResult()
    interval_index = len(result.intervals)
    position = 0
    total = len(operations)
    tracer = active_tracer()
    registry = active_registry()
    while position < total:
        chunk = operations[position : position + interval_ops]
        span = (
            tracer.start(
                "harness.interval", interval=interval_index, operations=len(chunk)
            )
            if tracer is not None
            else None
        )
        before = adapter.counter_snapshot()
        wall_start = time.perf_counter_ns()
        for op in chunk:
            adapter.execute(op)
        wall_ns = time.perf_counter_ns() - wall_start
        after = adapter.counter_snapshot()
        events = _diff(after, before)
        modeled_ns = cost_model.price(events)
        stats = IntervalStats(
            interval=interval_index,
            operations=len(chunk),
            modeled_ns_per_op=modeled_ns / len(chunk),
            wall_ns_per_op=wall_ns / len(chunk),
            index_bytes=adapter.index_bytes(),
            aux_bytes=adapter.aux_bytes(),
            expansions=adapter.expansions(),
            compactions=adapter.compactions(),
            skip_length=adapter.skip_length(),
            adaptation_phases=adapter.adaptation_phases(),
        )
        if span is not None:
            tracer.end(
                span,
                modeled_ns_per_op=round(stats.modeled_ns_per_op, 1),
                index_bytes=stats.index_bytes,
                expansions=stats.expansions,
                compactions=stats.compactions,
            )
        if registry is not None:
            # Hot-path OpCounters are pulled, not pushed: one publish per
            # interval instead of a registry call per event.  Interval
            # *deltas* are added (not absolute totals) so several adapters
            # sharing one registry aggregate instead of clashing.
            for event, delta in events.items():
                # repro: ignore[RA004] -- republishing helper: event names come
                # from index OpCounters, so the set is open-ended by design.
                registry.counter(f"ops.{event}").inc(delta)
            registry.counter("harness.operations").inc(len(chunk))
            registry.gauge("harness.index_bytes").set(stats.index_bytes)
            registry.gauge("harness.aux_bytes").set(stats.aux_bytes)
            registry.histogram("harness.interval_ops", SIZE_BUCKETS).record(
                len(chunk)
            )
            registry.histogram(
                "harness.modeled_ns_per_op", COST_NS_BUCKETS
            ).record(stats.modeled_ns_per_op)
        result.intervals.append(stats)
        result.total_operations += len(chunk)
        result.total_modeled_ns += modeled_ns
        result.total_wall_ns += wall_ns
        interval_index += 1
        position += interval_ops
    result.final_index_bytes = adapter.index_bytes()
    result.final_aux_bytes = adapter.aux_bytes()
    return result


def _diff(after: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
    events = {}
    for name, count in after.items():
        delta = count - before.get(name, 0)
        if delta:
            events[name] = delta
    return events
