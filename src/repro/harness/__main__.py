"""Command-line experiment runner.

Regenerate any paper table/figure from the shell::

    python -m repro.harness list               # show available experiments
    python -m repro.harness fig12              # run one at default scale
    python -m repro.harness tab1 fig9          # run several
    python -m repro.harness all                # run everything (minutes)
    python -m repro.harness fig14 --scale 0.5  # shrink the default sizes
    python -m repro.harness fig13 --trace out.jsonl --metrics out.prom

``--scale`` multiplies every integer size parameter (key counts,
operation counts) of the chosen experiments; 1.0 is the benchmark
default.  ``--trace``/``--metrics`` install the :mod:`repro.obs`
telemetry layer around the run and export a JSONL span trace and a
Prometheus snapshot; ``--trace-ops N`` additionally samples every N-th
per-operation span (off by default — phase-level spans only).
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Callable, Dict

from repro.harness import experiments as exp
from repro.harness.report import format_series, format_table, human_bytes

EXPERIMENTS: Dict[str, Callable] = {
    "fig2": exp.experiment_fig2,
    "fig3": exp.experiment_fig3,
    "fig5": exp.experiment_fig5,
    "fig6": exp.experiment_fig6,
    "fig9": exp.experiment_fig9,
    "fig12": exp.experiment_fig12,
    "fig13": exp.experiment_fig13,
    "fig14": exp.experiment_fig14,
    "fig15": exp.experiment_fig15,
    "fig16": exp.experiment_fig16,
    "fig17": exp.experiment_fig17,
    "fig18": exp.experiment_fig18,
    "fig19": exp.experiment_fig19,
    "fig20": exp.experiment_fig20,
    "faults": exp.experiment_fault_campaign,
    "net-bench": exp.experiment_net_bench,
    "replication-bench": exp.experiment_replication_bench,
    "service-bench": exp.experiment_service_bench,
    "tab1": exp.experiment_table1,
    "tab2": exp.experiment_table2,
    "tab4": exp.experiment_table4,
}

_SCALABLE_PARAMS = (
    "num_items", "workload_size", "num_keys", "num_lookups", "num_ops",
    "ops_per_phase", "ops_per_thread", "training_ops", "small_keys",
    "large_keys", "migrations_per_pair",
)


def _scaled_kwargs(function: Callable, scale: float) -> Dict[str, int]:
    if scale == 1.0:
        return {}
    kwargs: Dict[str, int] = {}
    signature = inspect.signature(function)
    for name, parameter in signature.parameters.items():
        if name in _SCALABLE_PARAMS and isinstance(parameter.default, int):
            kwargs[name] = max(64, int(parameter.default * scale))
    return kwargs


def _render(name: str, result: Dict) -> None:
    line = "=" * 68
    print(f"\n{line}\n  {name}\n{line}")
    if "rows" in result:
        print(format_table(result["headers"], result["rows"]))
    if "series" in result:
        for series_name, series in result["series"].items():
            print("  " + format_series(series_name.ljust(11), series, unit="ns"))
    if "sizes" in result:
        print("final sizes:")
        for index_name, (index_bytes, aux_bytes) in result["sizes"].items():
            print(f"  {index_name:<12} {human_bytes(index_bytes):>10} (+{human_bytes(aux_bytes)})")
    for extra in ("expansions", "compactions", "skip_lengths"):
        if extra in result:
            print(f"{extra} (cumulative per interval): {result[extra]}")
    for extra in (
        "total_faults", "total_violations", "total_lost_keys",
        "quarantine_events", "disable_events",
    ):
        if extra in result:
            print(f"{extra}: {result[extra]}")
    if "compression_ratio" in result:
        print(f"compression ratio: {result['compression_ratio']:.1%}")


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (fig2..fig20, tab1/tab2/tab4, faults, "
        "service-bench), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply default size parameters (default 1.0)",
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="also write each result as JSON/CSV under DIR",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a JSONL span trace of the run to FILE",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write a Prometheus text-exposition snapshot to FILE",
    )
    parser.add_argument(
        "--trace-ops",
        metavar="N",
        type=int,
        default=0,
        help="sample every N-th per-operation span into the trace "
        "(0 = phase-level spans only, the default)",
    )
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for name, function in EXPERIMENTS.items():
            summary = (inspect.getdoc(function) or "").splitlines()[0]
            print(f"{name:<6} {summary}")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)} (try 'list')")

    telemetry = None
    if args.trace or args.metrics:
        from repro.obs import JsonlTraceSink, MetricsRegistry, Telemetry, Tracer

        tracer = None
        if args.trace:
            tracer = Tracer(
                JsonlTraceSink(args.trace), op_sample_every=max(0, args.trace_ops)
            )
        telemetry = Telemetry(registry=MetricsRegistry(), tracer=tracer)
        telemetry.install()

    try:
        for name in names:
            function = EXPERIMENTS[name]
            root_span = None
            if telemetry is not None and telemetry.tracer is not None:
                # repro: ignore[RA004] -- one root span per experiment run;
                # names are bounded by the EXPERIMENTS registry, not per-op.
                root_span = telemetry.tracer.start(
                    f"experiment:{name}", scale=args.scale
                )
            started = time.perf_counter()
            result = function(**_scaled_kwargs(function, args.scale))
            elapsed = time.perf_counter() - started
            if root_span is not None:
                telemetry.tracer.end(root_span)
            _render(f"{name}  ({elapsed:.1f}s)", result)
            if args.export:
                from repro.harness.export import write_result

                written = write_result(result, args.export, name)
                print("exported: " + ", ".join(str(path) for path in written.values()))
    finally:
        if telemetry is not None:
            telemetry.uninstall()

    if telemetry is not None:
        from repro.obs import render_telemetry

        if args.metrics:
            from pathlib import Path

            Path(args.metrics).write_text(telemetry.registry.to_prometheus())
            print(f"metrics: {args.metrics}")
        if args.trace:
            print(f"trace: {args.trace}")
        print(render_telemetry(telemetry, title=", ".join(names)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
