"""Service bench: sharded-router scalability — wall vs modeled throughput.

Partitions one key space across N shards behind a :class:`ShardRouter`
and replays the same batched lookup/scan workload at every shard count.
Two throughput figures are reported per row:

* ``wall_Mops`` — honest wall-clock throughput.  Python's GIL caps real
  parallel speedup, so this stays roughly flat as shards are added.
* ``modeled_Mops`` — each shard's structural counter events priced by
  the :class:`~repro.sim.costmodel.CostModel`; the aggregate modeled
  time is the **max over shards** (shards run in parallel in the
  model), the same idiom the Figure-18 concurrency experiment uses.

With a balanced hash partitioning the modeled speedup approaches the
shard count; the CI gate (``benchmarks/bench_service.py``) requires at
least 2x at 4 OLC shards.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Mapping, Sequence

from repro.service.router import ShardRouter
from repro.sim.costmodel import CostModel


def _priced_max_shard_ns(
    cost_model: CostModel,
    before: Mapping[int, Mapping[str, int]],
    after: Mapping[int, Mapping[str, int]],
) -> float:
    """Price each shard's counter delta; return the slowest shard's ns."""
    worst = 0.0
    for shard_id, events in after.items():
        base = before.get(shard_id, {})
        delta = {name: count - base.get(name, 0) for name, count in events.items()}
        worst = max(worst, cost_model.price(delta))
    return worst


def experiment_service_bench(
    num_keys: int = 40_000,
    num_lookups: int = 60_000,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    family: str = "olc",
    partitioning: str = "hash",
    batch_size: int = 512,
    num_scans: int = 200,
    scan_length: int = 100,
    seed: int = 0,
) -> Dict:
    """Batched lookup + scan throughput of the sharded service across
    shard counts, with modeled (parallel) and wall-clock figures."""
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(num_keys * 4), num_keys))
    pairs = [(key, key * 3 + 1) for key in keys]
    probes = [
        rng.choice(keys) if rng.random() < 0.9 else rng.randrange(num_keys * 4)
        for _ in range(num_lookups)
    ]
    batches = [
        probes[start : start + batch_size]
        for start in range(0, len(probes), batch_size)
    ]
    scan_starts = [rng.choice(keys) for _ in range(num_scans)]
    cost_model = CostModel()
    rows = []
    baseline_modeled = None
    for num_shards in shard_counts:
        router = ShardRouter.build(
            pairs, family=family, num_shards=num_shards, partitioning=partitioning
        )
        try:
            before = router.counter_snapshots()
            start = time.perf_counter()
            for batch in batches:
                router.get_many(batch)
            wall_seconds = time.perf_counter() - start
            lookup_ns = _priced_max_shard_ns(
                cost_model, before, router.counter_snapshots()
            )
            scan_start = time.perf_counter()
            for scan_key in scan_starts:
                router.scan(scan_key, scan_length)
            scan_seconds = time.perf_counter() - scan_start
            wall_mops = num_lookups / wall_seconds / 1e6
            modeled_mops = num_lookups / lookup_ns * 1000.0 if lookup_ns else 0.0
            if baseline_modeled is None:
                if modeled_mops <= 0.0:
                    raise RuntimeError(
                        f"service bench baseline ({num_shards} shard(s), "
                        f"family={family!r}) priced zero counter events; "
                        "modeled speedups would be meaningless — the family "
                        "must publish structural counters"
                    )
                baseline_modeled = modeled_mops
            rows.append(
                (
                    num_shards,
                    round(wall_mops, 3),
                    round(modeled_mops, 2),
                    round(modeled_mops / baseline_modeled, 2),
                    round(router.imbalance(), 2),
                    round(num_scans * scan_length / scan_seconds / 1e6, 3),
                )
            )
        finally:
            router.close()
    return {
        "headers": [
            "shards",
            "wall_Mops",
            "modeled_Mops",
            "modeled_speedup",
            "imbalance",
            "scan_wall_Mops",
        ],
        "rows": rows,
    }
