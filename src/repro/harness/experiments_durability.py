"""The crash-recovery fault campaign for the durable service.

One long-lived on-disk store is hammered by rounds of writes, deletes,
checkpoints, and online split/merge while a seeded
:class:`~repro.faults.injector.FaultInjector` arms one crash site per
round — cycling through every durability fault point
(``durability.wal.append`` / ``.apply`` / ``.snapshot.swap`` /
``.truncate`` / ``.manifest.swap``) and the ``service.split.*`` /
``service.merge.*`` admin sites.  An injected fault is treated as a
**kill**: the live router is abandoned mid-operation (some rounds with
writer threads and an admin thread racing at the moment of death), the
store is recovered from disk, and the recovered state is checked three
ways:

1. ``ShardRouter.verify()`` — structural invariants plus the routing
   discipline on every key;
2. **model comparison** — a plain dict tracks every *acknowledged*
   write; after recovery, every acked key must hold exactly its acked
   value (anything else is a lost write), and every recovered key must
   be explainable (anything else is a phantom);
3. **in-flight resolution** — keys whose op faulted before
   acknowledgment may legally land either way (the record may or may
   not have reached the WAL); recovery resolves them and the recovered
   value becomes the model's truth, exactly the contract a client that
   never got an ack must assume.

Some recoveries are themselves killed (the injector armed over the
``durability.wal.apply`` replay site) and then retried — recovery must
be idempotent under its own crashes.  Torn final frames are simulated
honestly: the WAL's ``tear_rng`` writes a random *prefix* of the dying
group commit, which recovery must skip and count.

The campaign's acceptance bar (ISSUE 6): ≥1000 injected crashes, every
named durability site crashed at least once, crashes during concurrent
split/merge included, and **zero** lost acknowledged writes.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.durability import FAULT_SITES, DurabilityManager, WalPoisonedError
from repro.faults.injector import FaultInjector, InjectedFault
from repro.service.partition import PartitionError
from repro.service.router import ShardRouter

#: What kills a campaign thread: the armed fault itself, or the fence a
#: sibling's torn append left on a shared shard's WAL.  Either way the
#: op was never acknowledged, so its keys become in-flight uncertainty.
_CRASH_ERRORS = (InjectedFault, WalPoisonedError)

#: The sites the campaign cycles through, one armed per round.  The
#: trailing broad patterns shake out interleavings a single-site arm
#: cannot reach (e.g. a fault on the second of two checkpoints).
CAMPAIGN_SITES: Tuple[str, ...] = FAULT_SITES + (
    "service.split.*",
    "service.merge.*",
    "durability.*",
)

#: Sites the acceptance criteria require to have crashed at least once.
REQUIRED_CRASH_SITES: Tuple[str, ...] = (
    "durability.wal.append",
    "durability.wal.apply",
    "durability.snapshot.swap",
    "durability.wal.truncate",
)

#: Marker for "key not present" in model/recovered comparisons.
_ABSENT = object()

_MAX_SHARDS = 6


class CampaignFailure(AssertionError):
    """The durability contract was violated (lost/phantom write or a
    failed post-recovery verification)."""


def _recovered_state(router: ShardRouter) -> Dict[Any, int]:
    state: Dict[Any, int] = {}
    for shard in router.table.shards:
        state.update(dict(shard.items()))
    return state


class _WriterOutcome:
    """What one writer thread acked (in order) and what was in flight."""

    def __init__(self) -> None:
        self.acked: List[Tuple[Any, Optional[int]]] = []  # value None = delete
        self.uncertain: Dict[Any, Set[int]] = {}
        self.uncertain_deletes: Set[Any] = set()
        self.crashed = False


def _run_writer(
    router: ShardRouter,
    rng: random.Random,
    key_lo: int,
    key_hi: int,
    version_base: int,
    bursts: int,
    outcome: _WriterOutcome,
) -> None:
    """Issue write bursts until done or the armed fault kills this thread.

    The faulting op is always the thread's last (the injector is the
    kill), so acked ops happen-before every uncertain one — which is
    what lets the campaign apply acked ops first and mark uncertainty
    afterwards.
    """
    version = version_base
    for burst in range(bursts):
        batch = [
            (rng.randrange(key_lo, key_hi), version + offset)
            for offset in range(rng.randrange(8, 40))
        ]
        version += len(batch)
        try:
            router.put_many(batch)
        except _CRASH_ERRORS:
            for key, value in batch:
                outcome.uncertain.setdefault(key, set()).add(value)
            outcome.crashed = True
            return
        for key, value in batch:
            outcome.acked.append((key, value))
        if burst % 3 == 2:
            key = rng.randrange(key_lo, key_hi)
            try:
                router.delete(key)
            except _CRASH_ERRORS:
                outcome.uncertain_deletes.add(key)
                outcome.crashed = True
                return
            outcome.acked.append((key, None))


def _run_admin(router: ShardRouter, rng: random.Random, outcome: _WriterOutcome) -> None:
    """Checkpoints and split/merge on the admin path; faults kill it."""
    try:
        for _ in range(2):
            router.checkpoint()
            num_shards = router.num_shards
            if num_shards >= _MAX_SHARDS or (num_shards > 2 and rng.random() < 0.4):
                router.merge_shards(rng.randrange(num_shards - 1))
            else:
                table = router.table
                sizes = [shard.num_keys for shard in table.shards]
                target = max(range(len(sizes)), key=sizes.__getitem__)
                router.split_shard(target)
    except _CRASH_ERRORS:
        outcome.crashed = True
    except PartitionError:
        # Too few keys / no interior split key this round; not a crash.
        pass


def _apply_outcome(
    model: Dict[Any, int],
    uncertain: Dict[Any, Set[Any]],
    outcome: _WriterOutcome,
) -> None:
    for key, value in outcome.acked:
        uncertain.pop(key, None)
        if value is None:
            model.pop(key, None)
        else:
            model[key] = value
    for key, values in outcome.uncertain.items():
        uncertain.setdefault(key, set()).update(values)
    for key in outcome.uncertain_deletes:
        uncertain.setdefault(key, set()).add(_ABSENT)


def _check_recovery(
    recovered: Dict[Any, int],
    model: Dict[Any, int],
    uncertain: Dict[Any, Set[Any]],
    crash_number: int,
) -> None:
    """Lost/phantom detection, then in-flight resolution into the model."""
    for key, value in model.items():
        actual = recovered.get(key, _ABSENT)
        if key in uncertain:
            if actual is not _ABSENT and actual == value:
                continue
            if actual in uncertain[key]:
                continue
            raise CampaignFailure(
                f"crash #{crash_number}: key {key!r} recovered as {actual!r}, "
                f"expected acked {value!r} or in-flight {sorted(map(repr, uncertain[key]))}"
            )
        if actual != value:
            raise CampaignFailure(
                f"crash #{crash_number}: LOST acknowledged write — key {key!r} "
                f"acked as {value!r} but recovered as {actual!r}"
            )
    for key, actual in recovered.items():
        if key in model:
            continue
        if key in uncertain and actual in uncertain[key]:
            continue
        raise CampaignFailure(
            f"crash #{crash_number}: PHANTOM key {key!r} = {actual!r} recovered "
            "but never written"
        )
    # In-flight ops are now resolved: what recovery materialized is what
    # the store durably committed, and becomes the model's truth.
    for key in uncertain:
        actual = recovered.get(key, _ABSENT)
        if actual is _ABSENT:
            model.pop(key, None)
        else:
            model[key] = int(actual)
    uncertain.clear()


def experiment_crash_campaign(
    num_crashes: int = 1000,
    num_keys: int = 1200,
    seed: int = 0,
    sync: str = "batch",
    family: str = "olc",
    concurrent_every: int = 4,
    recovery_crash_every: int = 7,
    root: Optional[Path] = None,
    assert_coverage: bool = True,
) -> Dict[str, Any]:
    """Run the crash-recovery campaign; returns its summary dict.

    Raises :class:`CampaignFailure` the moment a lost acknowledged
    write, phantom key, or post-recovery verification failure appears.
    With ``assert_coverage`` (and ``num_crashes`` ≥ 100), also requires
    every :data:`REQUIRED_CRASH_SITES` entry to have produced at least
    one crash and at least one crash to have hit a concurrent round.
    """
    rng = random.Random(seed)
    own_root = root is None
    store_root = Path(tempfile.mkdtemp(prefix="repro-crash-campaign-")) if own_root else root
    assert store_root is not None
    key_space = num_keys * 4
    try:
        durability = DurabilityManager(
            store_root, sync=sync, retain=2, tear_rng=random.Random(seed + 1)
        )
        initial = [(key, key) for key in range(0, key_space, 4)][:num_keys]
        router = ShardRouter.build(
            initial,
            family=family,
            num_shards=2,
            partitioning="range",
            durability=durability,
            max_workers=4,
        )
        model: Dict[Any, int] = dict(initial)
        uncertain: Dict[Any, Set[Any]] = {}

        crashes = 0
        rounds = 0
        concurrent_crashes = 0
        recovery_crashes = 0
        torn_tails_recovered = 0
        snapshots_skipped = 0
        frames_replayed = 0
        crashes_by_site: Dict[str, int] = {}
        version = 1_000_000

        while crashes < num_crashes:
            rounds += 1
            site = CAMPAIGN_SITES[rounds % len(CAMPAIGN_SITES)]
            concurrent = rounds % concurrent_every == 0
            injector = FaultInjector(
                site=site, rate=0.35, seed=rng.randrange(1 << 30), max_failures=1
            )
            outcomes: List[_WriterOutcome] = []
            with injector.install():
                if concurrent:
                    # Two writers on disjoint key ranges plus an admin
                    # thread, so the armed site can fire mid split/merge
                    # with acknowledgments racing it.
                    writer_outcomes = [_WriterOutcome(), _WriterOutcome()]
                    admin_outcome = _WriterOutcome()
                    half = key_space // 2
                    threads = [
                        threading.Thread(
                            target=_run_writer,
                            args=(
                                router,
                                random.Random(rng.randrange(1 << 30)),
                                0,
                                half,
                                version,
                                6,
                                writer_outcomes[0],
                            ),
                        ),
                        threading.Thread(
                            target=_run_writer,
                            args=(
                                router,
                                random.Random(rng.randrange(1 << 30)),
                                half,
                                key_space,
                                version + 1_000,
                                6,
                                writer_outcomes[1],
                            ),
                        ),
                        threading.Thread(
                            target=_run_admin,
                            args=(router, random.Random(rng.randrange(1 << 30)), admin_outcome),
                        ),
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                    outcomes = [*writer_outcomes, admin_outcome]
                    version += 2_000
                else:
                    outcome = _WriterOutcome()
                    _run_writer(router, rng, 0, key_space, version, 4, outcome)
                    version += 1_000
                    if not outcome.crashed:
                        _run_admin(router, rng, outcome)
                    outcomes = [outcome]
            for outcome in outcomes:
                _apply_outcome(model, uncertain, outcome)
            if not any(outcome.crashed for outcome in outcomes):
                continue

            # --- the kill -------------------------------------------------
            crashes += 1
            if concurrent:
                concurrent_crashes += 1
            for fault_site, count in injector.failures_by_site.items():
                crashes_by_site[fault_site] = crashes_by_site.get(fault_site, 0) + count
            router.close()

            # --- recovery (occasionally killed and retried) ---------------
            recovered_router: Optional[ShardRouter] = None
            if crashes % recovery_crash_every == 0:
                replay_injector = FaultInjector(
                    site="durability.wal.apply",
                    rate=0.5,
                    seed=rng.randrange(1 << 30),
                    max_failures=1,
                )
                try:
                    with replay_injector.install():
                        recovered_router = ShardRouter.recover(durability, family=family)
                except InjectedFault:
                    recovery_crashes += 1
                    recovered_router = None
            if recovered_router is None:
                recovered_router = ShardRouter.recover(durability, family=family)
            router = recovered_router
            summary = router.last_recovery or {}
            frames_replayed += int(summary.get("frames_replayed", 0))
            snapshots_skipped += int(summary.get("snapshots_skipped", 0))
            if int(summary.get("torn_bytes", 0)) > 0:
                torn_tails_recovered += 1

            # --- the three checks -----------------------------------------
            try:
                router.verify()
            except Exception as error:
                raise CampaignFailure(
                    f"crash #{crashes}: post-recovery verify() failed: {error}"
                ) from error
            _check_recovery(_recovered_state(router), model, uncertain, crashes)

        router.close()
        summary_dict: Dict[str, Any] = {
            "crashes": crashes,
            "rounds": rounds,
            "concurrent_crashes": concurrent_crashes,
            "recovery_crashes": recovery_crashes,
            "torn_tails_recovered": torn_tails_recovered,
            "frames_replayed": frames_replayed,
            "snapshots_skipped": snapshots_skipped,
            "crashes_by_site": dict(sorted(crashes_by_site.items())),
            "lost_writes": 0,
            "phantom_writes": 0,
            "final_keys": len(model),
            "final_shards": router.num_shards,
            "sync": sync,
            "family": family,
            "seed": seed,
        }
        if assert_coverage and num_crashes >= 100:
            missing = [
                site for site in REQUIRED_CRASH_SITES if crashes_by_site.get(site, 0) == 0
            ]
            if missing:
                raise CampaignFailure(
                    f"campaign never crashed at required sites {missing}; "
                    f"observed {sorted(crashes_by_site)}"
                )
            if concurrent_crashes == 0:
                raise CampaignFailure("campaign produced no crash in a concurrent round")
        return summary_dict
    finally:
        if own_root:
            shutil.rmtree(store_root, ignore_errors=True)
