"""One entry point per paper table and figure (see DESIGN.md §4).

Re-exports the experiment functions from their topic modules so callers
(benchmarks, examples, EXPERIMENTS.md regeneration) can import everything
from one place.
"""

from repro.harness.experiments_btree import (
    build_btree_variants,
    experiment_fig12,
    experiment_fig13,
    experiment_fig14,
    experiment_fig15,
    experiment_fig16,
    experiment_fig17,
    scaled_manager_config,
)
from repro.harness.experiments_concurrency import experiment_fig18
from repro.harness.experiments_durability import experiment_crash_campaign
from repro.harness.experiments_faults import experiment_fault_campaign
from repro.harness.experiments_micro import (
    experiment_appendix_fig2_distributions,
    experiment_appendix_fig5_workloads,
    experiment_fig2,
    experiment_fig3,
    experiment_fig5,
    experiment_fig6,
    experiment_fig9,
    experiment_table1,
    experiment_table2,
    experiment_table4,
)
from repro.harness.experiments_net import experiment_net_bench
from repro.harness.experiments_replication import experiment_replication_bench
from repro.harness.experiments_service import experiment_service_bench
from repro.harness.experiments_trie import (
    build_trie_variants,
    experiment_fig19,
    experiment_fig20,
    scaled_trie_manager_config,
)

__all__ = [
    "build_btree_variants",
    "build_trie_variants",
    "scaled_manager_config",
    "scaled_trie_manager_config",
    "experiment_appendix_fig2_distributions",
    "experiment_appendix_fig5_workloads",
    "experiment_crash_campaign",
    "experiment_fault_campaign",
    "experiment_fig2",
    "experiment_fig3",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_fig9",
    "experiment_fig12",
    "experiment_fig13",
    "experiment_fig14",
    "experiment_fig15",
    "experiment_fig16",
    "experiment_fig17",
    "experiment_fig18",
    "experiment_fig19",
    "experiment_fig20",
    "experiment_net_bench",
    "experiment_replication_bench",
    "experiment_service_bench",
    "experiment_table1",
    "experiment_table2",
    "experiment_table4",
]
