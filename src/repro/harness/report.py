"""Rendering experiment results in the paper's row/series shape.

Plain-text tables and series printers; every benchmark target prints
through these so the regenerated "figures" are directly comparable with
the paper's (EXPERIMENTS.md records the side-by-side).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """A fixed-width text table."""
    materialized: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in materialized:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def format_series(
    name: str,
    values: Sequence[float],
    max_points: int = 24,
    unit: str = "",
) -> str:
    """One named series, downsampled, with a small ASCII sparkline."""
    if not values:
        return f"{name}: (empty)"
    step = max(1, len(values) // max_points)
    sampled = list(values[::step])
    low, high = min(sampled), max(sampled)
    blocks = " .:-=+*#%@"
    if high > low:
        spark = "".join(
            blocks[min(len(blocks) - 1, int((v - low) / (high - low) * (len(blocks) - 1)))]
            for v in sampled
        )
    else:
        spark = blocks[0] * len(sampled)
    return (
        f"{name}: min={low:.1f}{unit} max={high:.1f}{unit} "
        f"first={sampled[0]:.1f}{unit} last={sampled[-1]:.1f}{unit}  [{spark}]"
    )


def _cell(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def human_bytes(num_bytes: float) -> str:
    """1536 -> '1.5KiB' etc."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{value:.0f}B"
        value /= 1024
    return f"{value:.1f}GiB"  # pragma: no cover
