"""Micro-experiments: Figures 2, 3, 5, 6, 9 and Tables 1, 2, 4.

Each function returns ``{"headers": [...], "rows": [...]}`` (plus extras)
so benchmarks can both print paper-shaped tables and assert on the
numbers.  Scales default to laptop-friendly sizes; the paper's sizes are
noted per function.
"""

from __future__ import annotations

import inspect
import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.art.tree import ART
from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.migrate import migrate_leaf
from repro.bptree.tree import BPlusTree
from repro.core.heuristics import HeuristicDecision
from repro.core.manager import ManagerConfig
from repro.core.sampling import required_sample_size
from repro.core.topk import TopKClassifier
from repro.fst.trie import FST
from repro.sim.costmodel import CostModel, StorageDevice, storage_access_latency_us
from repro.sim.counters import OpCounters
from repro.succinct.lz import lz_compress, lz_decompress
from repro.workloads.datasets import osm_like_keys, prefix_random_keys
from repro.workloads.distributions import lognormal_indices, uniform_indices


# ----------------------------------------------------------------------
# Figure 2: Equation (1) sample sizes and top-k precision vs epsilon
# ----------------------------------------------------------------------
def experiment_fig2(
    num_items: int = 1_000_000,
    workload_size: int = 400_000,
    ks: Sequence[int] = (250, 1000),
    epsilons: Sequence[float] = (0.02, 0.04, 0.05, 0.06, 0.08, 0.10),
    delta: float = 0.05,
    sigma: float = 0.002,
    seed: int = 0,
) -> Dict:
    """Sample sizes from Equation (1) and the top-k frequency mass they
    recover, for a Lognormal workload over ``num_items`` items.

    ``sigma`` controls the hot-band width; the default concentrates the
    workload so the top-1000 of 1M items carry ~70% of the accesses,
    matching the mass scale of the paper's Figure 2.
    """
    rng = np.random.default_rng(seed)
    accesses = lognormal_indices(num_items, workload_size, sigma=sigma, rng=rng)
    items, counts = np.unique(accesses, return_counts=True)
    order = np.argsort(counts)[::-1]
    true_frequency = dict(zip(items[order].tolist(), (counts[order] / workload_size).tolist()))

    rows: List[Tuple] = []
    for k in ks:
        sorted_true = sorted(true_frequency.values(), reverse=True)
        true_mass = sum(sorted_true[:k])
        for epsilon in epsilons:
            sample_size = required_sample_size(num_items, k, epsilon, delta)
            draw = min(sample_size, workload_size)
            sample = accesses[rng.choice(workload_size, draw, replace=False)]
            sample_items, sample_counts = np.unique(sample, return_counts=True)
            top = sample_items[np.argsort(sample_counts)[::-1][:k]]
            sampled_mass = sum(true_frequency.get(int(item), 0.0) for item in top)
            rows.append(
                (f"{epsilon:.0%}", k, sample_size, 100 * true_mass, 100 * sampled_mass)
            )
    return {
        "headers": ["epsilon", "k", "sample_size", "true_topk_mass_%", "sampled_topk_mass_%"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Figure 3: storage-device latencies for (un)compressed leaf pages
# ----------------------------------------------------------------------
def experiment_fig3(
    leaf_capacity: int = 255,
    occupancy: float = 0.70,
    seed: int = 0,
) -> Dict:
    """Read/write latency of one 70%-occupancy leaf page per device,
    compressed (our LZ codec) vs uncompressed."""
    rng = np.random.default_rng(seed)
    num_entries = int(leaf_capacity * occupancy)
    keys = np.sort(rng.integers(0, 1 << 40, num_entries * 2, dtype=np.int64))
    keys = np.unique(keys)[:num_entries]
    # Serialize the gapped page image: used slots then empty (zero) slots.
    page = bytearray()
    for key in keys:
        page += int(key).to_bytes(8, "little") + int(key ^ 0xABCD).to_bytes(8, "little")
    page += b"\x00" * ((leaf_capacity - num_entries) * 16)
    page = bytes(page)
    compressed = lz_compress(page)
    assert lz_decompress(compressed) == page
    ratio = 1.0 - len(compressed) / len(page)

    # The figure's five bars: page accesses on the three slow tiers, then
    # DRAM with and without on-the-fly (de)compression.
    devices = [
        ("Samsung 870 SSD", StorageDevice.SATA_SSD, False),
        ("Samsung 970 NVMe", StorageDevice.NVME_SSD, False),
        ("PMEM", StorageDevice.PMEM, False),
        ("DRAM compressed", StorageDevice.DRAM, True),
        ("DRAM uncompressed", StorageDevice.DRAM, False),
    ]
    rows = []
    for label, device, compressed_mode in devices:
        read_us = storage_access_latency_us(
            device, write=False, compressed=compressed_mode,
            uncompressed_bytes=len(page), compressed_bytes=len(compressed),
        )
        write_us = storage_access_latency_us(
            device, write=True, compressed=compressed_mode,
            uncompressed_bytes=len(page), compressed_bytes=len(compressed),
        )
        rows.append((label, round(read_us, 3), round(write_us, 3)))
    return {
        "headers": ["device", "random_read_us", "random_write_us"],
        "rows": rows,
        "compression_ratio": ratio,
        "page_bytes": len(page),
        "compressed_bytes": len(compressed),
    }


# ----------------------------------------------------------------------
# Figure 5: sampling overhead vs skip length (with/without Bloom filter)
# ----------------------------------------------------------------------
def _keep_everything(info) -> HeuristicDecision:
    """A no-op CSHF so Figure 5 isolates pure sampling overhead."""
    return HeuristicDecision.keep()


def experiment_fig5(
    num_keys: int = 100_000,
    num_lookups: int = 200_000,
    skip_lengths: Sequence[int] = (0, 1, 2, 3, 4, 5, 10, 15, 20),
    leaf_capacity: int = 32,
    seed: int = 0,
) -> Dict:
    """Relative tracking overhead vs skip length; baseline = the plain
    Gapped tree (the paper's STX-B+-tree stand-in).

    ``leaf_capacity`` is deliberately small so the leaf population is
    large relative to one sampling phase — at the paper's scale (400M
    keys, 2.2M leaves) one-off cold-leaf visits are the norm, and they
    are exactly what the Bloom filter keeps out of the sample map."""
    rng = np.random.default_rng(seed)
    keys = osm_like_keys(num_keys, rng)
    pairs = [(int(key), int(key) % 1_000_003) for key in keys]
    # Half lognormal (hot band), half uniform (cold one-off accesses) —
    # the cold tail is what the Bloom filter keeps out of the sample map.
    hot = keys[lognormal_indices(num_keys, num_lookups // 2, rng=rng)]
    cold = keys[np.random.default_rng(seed + 1).integers(0, num_keys, num_lookups // 2)]
    queries = np.concatenate((hot, cold))
    rng.shuffle(queries)
    cost_model = CostModel()

    def modeled_ns(tree) -> float:
        from repro.harness.runner import IntKeyIndexAdapter

        adapter = IntKeyIndexAdapter(tree)
        before = adapter.counter_snapshot()
        for key in queries:
            tree.lookup(int(key))
        events = {
            name: count - before.get(name, 0)
            for name, count in adapter.counter_snapshot().items()
        }
        return cost_model.price(events) / len(queries)

    baseline_tree = BPlusTree.bulk_load(pairs, LeafEncoding.GAPPED, leaf_capacity=leaf_capacity)
    baseline = modeled_ns(baseline_tree)

    rows = []
    for skip in skip_lengths:
        per_arm = []
        for use_bloom in (False, True):
            config = ManagerConfig(
                encoding_order=(LeafEncoding.SUCCINCT, LeafEncoding.PACKED, LeafEncoding.GAPPED),
                heuristic=_keep_everything,
                initial_skip_length=skip,
                skip_min=skip,
                skip_max=skip,
                adaptive_skip=False,
                use_bloom_filter=use_bloom,
            )
            tree = AdaptiveBPlusTree.bulk_load_adaptive(
                pairs,
                leaf_capacity=leaf_capacity,
                cold_encoding=LeafEncoding.GAPPED,
                manager_config=config,
            )
            per_arm.append(modeled_ns(tree))
        no_bloom, with_bloom = per_arm
        rows.append(
            (
                skip,
                100 * (no_bloom - baseline) / baseline,
                100 * (with_bloom - baseline) / baseline,
            )
        )
    return {
        "headers": ["skip_length", "overhead_%_no_filter", "overhead_%_with_filter"],
        "rows": rows,
        "baseline_ns": baseline,
    }


# ----------------------------------------------------------------------
# Figure 6: classification cost per sample and sample-map size
# ----------------------------------------------------------------------
def experiment_fig6(
    unique_sample_counts: Sequence[int] = (1_000, 2_000, 5_000, 10_000),
    ks: Sequence[int] = (250, 500, 1_000, 2_000, 4_000, 6_000),
    repetitions: int = 5,
    seed: int = 0,
) -> Dict:
    """Wall-clock classification latency per sample for varying k, plus
    the modeled hash-map size per unique-sample count."""
    rng = np.random.default_rng(seed)
    rows = []
    for unique in unique_sample_counts:
        frequencies = rng.zipf(1.2, unique).astype(float)
        items = list(range(unique))
        for k in ks:
            if k > unique:
                continue
            best_ns = float("inf")
            heap_ops = 0
            for _ in range(repetitions):
                classifier = TopKClassifier(k)
                start = time.perf_counter_ns()
                for item, frequency in zip(items, frequencies):
                    classifier.offer(item, frequency)
                elapsed = time.perf_counter_ns() - start
                best_ns = min(best_ns, elapsed / unique)
                heap_ops = classifier.heap_operations
            map_bytes = unique * (8 + 8 + 21)  # key + bucket + AccessStats
            rows.append((unique, k, round(best_ns, 1), heap_ops, map_bytes))
    return {
        "headers": ["unique_samples", "k", "ns_per_sample", "heap_ops", "map_bytes"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Table 1: leaf encodings — size and lookup latency
# ----------------------------------------------------------------------
def experiment_table1(
    num_keys: int = 100_000,
    num_lookups: int = 50_000,
    occupancy: float = 0.70,
    seed: int = 0,
) -> Dict:
    """Average leaf size and modeled/wall lookup latency per encoding for
    uniform lookups on OSM-like keys at 70% occupancy."""
    rng = np.random.default_rng(seed)
    keys = osm_like_keys(num_keys, rng)
    pairs = [(int(key), int(key) >> 3) for key in keys]
    queries = keys[uniform_indices(num_keys, num_lookups, rng=rng)]
    cost_model = CostModel()
    rows = []
    for encoding in (LeafEncoding.GAPPED, LeafEncoding.PACKED, LeafEncoding.SUCCINCT):
        tree = BPlusTree.bulk_load(pairs, encoding, fill_factor=occupancy)
        leaf_sizes = [leaf.size_bytes() for leaf in tree.leaves()]
        before = tree.counters.snapshot()
        start = time.perf_counter_ns()
        for key in queries:
            tree.lookup(int(key))
        wall_ns = (time.perf_counter_ns() - start) / num_lookups
        modeled_ns = cost_model.price(tree.counters.diff(before)) / num_lookups
        rows.append(
            (
                str(encoding),
                round(sum(leaf_sizes) / len(leaf_sizes)),
                round(modeled_ns, 1),
                round(wall_ns),
            )
        )
    return {
        "headers": ["leaf_encoding", "avg_leaf_bytes", "modeled_lookup_ns", "wall_lookup_ns"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Figure 9: migration costs between leaf encodings, two index sizes
# ----------------------------------------------------------------------
def experiment_fig9(
    small_keys: int = 20_000,
    large_keys: int = 200_000,
    migrations_per_pair: int = 200,
    seed: int = 0,
) -> Dict:
    """Modeled + wall cost of each of the six encoding migrations."""
    cost_model = CostModel()
    rng = np.random.default_rng(seed)
    pairs_order = [
        (LeafEncoding.GAPPED, LeafEncoding.PACKED),
        (LeafEncoding.PACKED, LeafEncoding.GAPPED),
        (LeafEncoding.SUCCINCT, LeafEncoding.PACKED),
        (LeafEncoding.SUCCINCT, LeafEncoding.GAPPED),
        (LeafEncoding.GAPPED, LeafEncoding.SUCCINCT),
        (LeafEncoding.PACKED, LeafEncoding.SUCCINCT),
    ]
    rows = []
    for label, num_keys in (("small", small_keys), ("large", large_keys)):
        keys = osm_like_keys(num_keys, rng)
        tree = BPlusTree.bulk_load([(int(k), int(k)) for k in keys], LeafEncoding.GAPPED)
        leaves = list(tree.leaves())
        for source, target in pairs_order:
            sample = [leaves[i] for i in rng.choice(len(leaves), migrations_per_pair)]
            counters = OpCounters()
            start = time.perf_counter_ns()
            migrated = 0
            for leaf in sample:
                migrate_leaf(leaf, source, None)  # stage the source encoding
                counters_before = counters.snapshot()
                if migrate_leaf(leaf, target, counters):
                    migrated += 1
            wall_ns = (time.perf_counter_ns() - start) / max(1, migrated)
            modeled_ns = cost_model.price(counters.snapshot()) / max(1, migrated)
            rows.append((label, f"{source}->{target}", round(modeled_ns), round(wall_ns)))
            for leaf in sample:  # restore
                migrate_leaf(leaf, LeafEncoding.GAPPED, None)
    return {
        "headers": ["index_size", "migration", "modeled_ns", "wall_ns"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Table 2: ART vs FST-dense vs FST-sparse
# ----------------------------------------------------------------------
def experiment_table2(
    num_keys: int = 100_000,
    num_lookups: int = 30_000,
    seed: int = 0,
) -> Dict:
    """Size and lookup cost of the three trie variants on the
    prefix-random dataset."""
    rng = np.random.default_rng(seed)
    keys = prefix_random_keys(num_keys, rng=rng)
    byte_keys = [int(key).to_bytes(8, "big") for key in keys]
    pairs = [(key, index) for index, key in enumerate(byte_keys)]
    query_indices = uniform_indices(num_keys, num_lookups, rng=rng)
    cost_model = CostModel()

    variants = [
        ("ART", ART.from_sorted(pairs)),
        ("FST-dense", FST(pairs, dense_levels=64)),
        ("FST-sparse", FST(pairs, dense_levels=0)),
    ]
    rows = []
    for name, index in variants:
        before = index.counters.snapshot()
        start = time.perf_counter_ns()
        for rank in query_indices:
            index.lookup(byte_keys[rank])
        wall_ns = (time.perf_counter_ns() - start) / num_lookups
        modeled_ns = cost_model.price(index.counters.diff(before)) / num_lookups
        rows.append((name, index.size_bytes(), round(modeled_ns, 1), round(wall_ns)))
    return {
        "headers": ["index", "size_bytes", "modeled_lookup_ns", "wall_lookup_ns"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Table 4: lines of code, logic vs tracking
# ----------------------------------------------------------------------
_TRACKING_MARKERS = ("manager", "sample", "track", "adapt")


def _loc_split(function) -> Tuple[int, int]:
    """(logic_lines, tracking_lines) of a function's source.

    Counts non-blank, non-comment, non-docstring lines; a line mentioning
    the sampling framework (manager / sample / track / adapt) counts as
    tracking code, everything else as index logic — the paper's Table 4
    split.
    """
    import ast
    import textwrap

    source = textwrap.dedent(inspect.getsource(function))
    tree = ast.parse(source)
    function_node = tree.body[0]
    body = function_node.body
    skip_lines: set = set()
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        skip_lines = set(range(body[0].lineno, body[0].end_lineno + 1))
    logic = 0
    tracking = 0
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        if line_number <= function_node.body[0].lineno - 1 and line_number > 1:
            continue  # decorator / signature continuation lines
        if line_number in skip_lines or line_number == 1:
            continue
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if any(marker in line.lower() for marker in _TRACKING_MARKERS):
            tracking += 1
        else:
            logic += 1
    return logic, tracking


def experiment_table4() -> Dict:
    """LoC of lookup/insert implementations, logic vs tracking code —
    the reproduction's analogue of the paper's Table 4."""
    from repro.bptree.hybrid import AdaptiveBPlusTree as _AHI
    from repro.bptree.tree import BPlusTree as _BT
    from repro.hybridtrie.tree import HybridTrie as _HT

    rows = []
    for name, lookup_fn, insert_fn in (
        ("B+-tree", _BT.lookup, _BT.insert),
        ("AHI-BTree", _AHI.lookup, _AHI.insert),
        ("ART", ART.lookup, ART.insert),
        ("AHI-Trie", _HT.lookup, None),
        ("FST", FST.lookup_from, None),
    ):
        lookup_logic, lookup_tracking = _loc_split(lookup_fn)
        if insert_fn is not None:
            insert_logic, insert_tracking = _loc_split(insert_fn)
        else:
            insert_logic = insert_tracking = 0
        rows.append(
            (name, lookup_logic, lookup_tracking, insert_logic, insert_tracking)
        )
    return {
        "headers": ["index", "lookup_logic", "lookup_tracking", "insert_logic", "insert_tracking"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Online-appendix experiments the paper references
# ----------------------------------------------------------------------
def experiment_appendix_fig2_distributions(
    num_items: int = 200_000,
    workload_size: int = 200_000,
    k: int = 500,
    epsilons: Sequence[float] = (0.02, 0.05, 0.10),
    seed: int = 0,
) -> Dict:
    """Figure 2 across all four distributions.

    The paper: "Experiments using other distributions show similar
    results and can be found in the online appendix."  This regenerates
    that appendix: per distribution, the recovered top-k mass approaches
    the true mass as epsilon shrinks.
    """
    from repro.core.sampling import required_sample_size as _sample_size
    from repro.workloads.distributions import indices_for

    rng = np.random.default_rng(seed)
    rows: List[Tuple] = []
    distribution_params = {
        "zipf": {"alpha": 1.0},
        "normal": {},
        "lognormal": {"sigma": 0.002},
        "uniform": {},
    }
    for distribution, params in distribution_params.items():
        accesses = indices_for(distribution, num_items, workload_size, rng=rng, **params)
        items, counts = np.unique(accesses, return_counts=True)
        frequencies = counts / workload_size
        order = np.argsort(counts)[::-1]
        true_frequency = dict(zip(items[order].tolist(), frequencies[order].tolist()))
        true_mass = float(np.sort(frequencies)[::-1][:k].sum())
        for epsilon in epsilons:
            size = _sample_size(num_items, k, epsilon)
            draw = min(size, workload_size)
            sample = accesses[rng.choice(workload_size, draw, replace=False)]
            sample_items, sample_counts = np.unique(sample, return_counts=True)
            top = sample_items[np.argsort(sample_counts)[::-1][:k]]
            sampled_mass = sum(true_frequency.get(int(item), 0.0) for item in top)
            rows.append(
                (
                    distribution,
                    f"{epsilon:.0%}",
                    draw,
                    round(100 * true_mass, 2),
                    round(100 * sampled_mass, 2),
                )
            )
    return {
        "headers": ["distribution", "epsilon", "sample_drawn", "true_topk_%", "sampled_topk_%"],
        "rows": rows,
    }


def experiment_appendix_fig5_workloads(
    num_keys: int = 40_000,
    num_lookups: int = 100_000,
    skip_lengths: Sequence[int] = (0, 5, 20),
    leaf_capacity: int = 32,
    seed: int = 0,
) -> Dict:
    """Figure 5's overhead measurement across workload distributions.

    The paper: "While this experiment shows results for the log-normal
    workload, other workloads show similar overhead."
    """
    from repro.harness.runner import IntKeyIndexAdapter
    from repro.workloads.distributions import indices_for

    rng = np.random.default_rng(seed)
    keys = osm_like_keys(num_keys, rng)
    pairs = [(int(key), int(key) % 1_000_003) for key in keys]
    cost_model = CostModel()
    rows: List[Tuple] = []
    for distribution in ("zipf", "normal", "lognormal", "uniform"):
        queries = keys[indices_for(distribution, num_keys, num_lookups, rng=rng)]
        baseline_tree = BPlusTree.bulk_load(
            pairs, LeafEncoding.GAPPED, leaf_capacity=leaf_capacity
        )
        adapter = IntKeyIndexAdapter(baseline_tree)
        before = adapter.counter_snapshot()
        for key in queries:
            baseline_tree.lookup(int(key))
        baseline_ns = cost_model.price(
            {k: v - before.get(k, 0) for k, v in adapter.counter_snapshot().items()}
        ) / num_lookups
        for skip in skip_lengths:
            config = ManagerConfig(
                encoding_order=(LeafEncoding.SUCCINCT, LeafEncoding.PACKED, LeafEncoding.GAPPED),
                heuristic=_keep_everything,
                initial_skip_length=skip,
                skip_min=skip,
                skip_max=skip,
                adaptive_skip=False,
            )
            tree = AdaptiveBPlusTree.bulk_load_adaptive(
                pairs,
                leaf_capacity=leaf_capacity,
                cold_encoding=LeafEncoding.GAPPED,
                manager_config=config,
            )
            adapter = IntKeyIndexAdapter(tree)
            before = adapter.counter_snapshot()
            for key in queries:
                tree.lookup(int(key))
            tracked_ns = cost_model.price(
                {k: v - before.get(k, 0) for k, v in adapter.counter_snapshot().items()}
            ) / num_lookups
            rows.append(
                (
                    distribution,
                    skip,
                    round(100 * (tracked_ns - baseline_ns) / baseline_ns, 2),
                )
            )
    return {"headers": ["distribution", "skip_length", "overhead_%"], "rows": rows}
