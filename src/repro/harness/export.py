"""Exporting experiment results to CSV and JSON.

The experiment functions return plain dicts (``headers``/``rows`` for
tables, ``series`` for timelines).  These helpers write them in formats
external tooling can plot: one CSV per table, one JSON document per full
result.  The CLI (`python -m repro.harness ... --export DIR`) uses them.
"""

from __future__ import annotations

import csv
import enum
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Dict


def _jsonable(value):
    """Recursively convert experiment payloads to JSON-safe values."""
    if isinstance(value, enum.Enum):
        return value.value
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(entry) for entry in value]
    if isinstance(value, bytes):
        return value.hex()
    if hasattr(value, "intervals"):  # RunResult: keep the series, drop the object
        return {
            "total_operations": value.total_operations,
            "modeled_ns_per_op": value.modeled_ns_per_op,
            "final_index_bytes": value.final_index_bytes,
            "final_aux_bytes": value.final_aux_bytes,
        }
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def result_to_json(result: Dict) -> str:
    """One experiment result as a JSON document."""
    return json.dumps(_jsonable(result), indent=2, sort_keys=True)


def write_result(result: Dict, directory: Path, name: str) -> Dict[str, Path]:
    """Write ``result`` under ``directory`` as JSON (always) and CSV
    (when the result has table rows).  Returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}

    json_path = directory / f"{name}.json"
    json_path.write_text(result_to_json(result))
    written["json"] = json_path

    if "headers" in result and "rows" in result:
        csv_path = directory / f"{name}.csv"
        with csv_path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(result["headers"])
            for row in result["rows"]:
                writer.writerow([_jsonable(cell) for cell in row])
        written["csv"] = csv_path

    if "series" in result:
        series_path = directory / f"{name}_series.csv"
        series = result["series"]
        names = sorted(series)
        length = max((len(series[key]) for key in names), default=0)
        with series_path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["interval", *names])
            for index in range(length):
                writer.writerow(
                    [index]
                    + [
                        series[key][index] if index < len(series[key]) else ""
                        for key in names
                    ]
                )
        written["series_csv"] = series_path
    return written
