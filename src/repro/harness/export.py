"""Exporting experiment results to CSV and JSON.

The experiment functions return plain dicts (``headers``/``rows`` for
tables, ``series`` for timelines).  These helpers write them in formats
external tooling can plot: one CSV per table, one JSON document per full
result.  The CLI (`python -m repro.harness ... --export DIR`) uses them.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict

from repro.obs.jsonable import to_jsonable


def _summarize_run_result(value):
    """``default`` hook: collapse a RunResult to its totals.

    Full interval series already live in the experiment's ``series``
    keys, so the embedded RunResult objects export as summaries instead
    of duplicating every interval.  Everything else is declined and
    handled by :func:`repro.obs.jsonable.to_jsonable`'s standard rules
    (dataclasses, Counters, bytes keys included).
    """
    if hasattr(value, "intervals") and hasattr(value, "total_operations"):
        return {
            "total_operations": value.total_operations,
            "modeled_ns_per_op": value.modeled_ns_per_op,
            "final_index_bytes": value.final_index_bytes,
            "final_aux_bytes": value.final_aux_bytes,
        }
    return NotImplemented


def _jsonable(value):
    """Recursively convert experiment payloads to JSON-safe values."""
    return to_jsonable(value, default=_summarize_run_result)


def result_to_json(result: Dict) -> str:
    """One experiment result as a JSON document."""
    return json.dumps(_jsonable(result), indent=2, sort_keys=True)


def write_result(result: Dict, directory: Path, name: str) -> Dict[str, Path]:
    """Write ``result`` under ``directory`` as JSON (always) and CSV
    (when the result has table rows).  Returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}

    json_path = directory / f"{name}.json"
    json_path.write_text(result_to_json(result))
    written["json"] = json_path

    if "headers" in result and "rows" in result:
        csv_path = directory / f"{name}.csv"
        with csv_path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(result["headers"])
            for row in result["rows"]:
                writer.writerow([_jsonable(cell) for cell in row])
        written["csv"] = csv_path

    if "series" in result:
        series_path = directory / f"{name}_series.csv"
        series = result["series"]
        names = sorted(series)
        length = max((len(series[key]) for key in names), default=0)
        with series_path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["interval", *names])
            for index in range(length):
                writer.writerow(
                    [index]
                    + [
                        series[key][index] if index < len(series[key]) else ""
                        for key in names
                    ]
                )
        written["series_csv"] = series_path
    return written
