"""Network front-end bench: tail latency under open-loop overload.

Two phases, four legs, every offered rate placed relative to a
capacity probe of the machine under test (ratios travel across
machines; absolute ops/sec do not):

**Coalescing** — the same open-loop Zipf workload at ~1.35x the
per-request closed-loop capacity, served once with per-request
dispatch (``max_batch=1``) and once with the coalescer merging
in-flight requests into the shard routers' batch paths.  Above
per-request capacity the uncoalesced server's queue grows without
bound, so its p99 is the queueing collapse the open-loop generator is
designed to expose; the coalesced server amortizes dispatch across
batches and stays ahead of the same arrival stream.

**Admission** — the same workload at 2x capacity, served once with
admission control disabled (unbounded queueing: p999 runs away to the
drain deadline) and once with per-tenant token buckets and bounded
inflight queues (excess arrivals get backpressure *responses*; the
accepted work's p999 stays bounded by the inflight cap).

Latency is measured from each request's *scheduled arrival* and
unanswered requests are censored at the drain deadline — an overloaded
server cannot flatter its tail by throttling the generator or by not
answering.  Quantiles come from ``Histogram.quantile``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro.core.budget import TenantQuota
from repro.net.loadgen import LoadgenConfig, LoadgenResult, measure_capacity, run_loadgen
from repro.net.server import NetServer
from repro.net.tenancy import TenantDirectory, demo_directory


def _leg_summary(result: LoadgenResult, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    summary = result.summary()
    summary["p50_s"] = summary["latency"]["p50"]
    summary["p99_s"] = summary["latency"]["p99"]
    summary["p999_s"] = summary["latency"]["p999"]
    if extra:
        summary.update(extra)
    return summary


async def _run_leg(
    directory: TenantDirectory,
    config: LoadgenConfig,
    max_batch: int,
    max_delay: float,
    admission: bool,
) -> Dict[str, Any]:
    try:
        async with NetServer(
            directory, max_batch=max_batch, max_delay=max_delay, admission=admission
        ) as server:
            result = await run_loadgen("127.0.0.1", server.port, config)
            coalescer = server.coalescer
            batches = coalescer.batches_flushed
            merged = coalescer.requests_coalesced
    finally:
        directory.close()
    return _leg_summary(
        result,
        {
            "batches": batches,
            "mean_batch": round(merged / batches, 2) if batches else 0.0,
        },
    )


def experiment_net_bench(
    keys_per_tenant: int = 5_000,
    num_tenants: int = 4,
    num_shards: int = 2,
    duration: float = 1.5,
    drain_timeout: float = 8.0,
    probe_duration: float = 0.8,
    probe_concurrency: int = 64,
    max_batch: int = 128,
    max_delay: float = 0.001,
    coalesce_overload: float = 1.35,
    admission_overload: float = 2.0,
    quota_fraction: float = 0.5,
    burst_fraction: float = 0.125,
    max_inflight: int = 64,
    get_fraction: float = 0.9,
    seed: int = 7,
) -> Dict:
    """Tail latency of the network front end: coalescing on/off at the
    same offered load, then 2x overload with/without admission control."""
    tenants = [f"t{i}" for i in range(num_tenants)]

    def fresh_directory(quota: Optional[TenantQuota] = None) -> TenantDirectory:
        return demo_directory(
            tenants,
            keys_per_tenant=keys_per_tenant,
            num_shards=num_shards,
            quota=quota,
        )

    def config(rate: float) -> LoadgenConfig:
        return LoadgenConfig(
            rate=rate,
            duration=duration,
            tenants=tenants,
            key_space=keys_per_tenant,
            get_fraction=get_fraction,
            seed=seed,
            drain_timeout=drain_timeout,
        )

    async def bench() -> Dict[str, Any]:
        # Capacity probe: closed-loop per-request throughput anchors
        # every offered rate to this machine's actual speed.
        directory = fresh_directory()
        try:
            async with NetServer(directory, max_batch=1) as server:
                capacity = await measure_capacity(
                    "127.0.0.1",
                    server.port,
                    tenants,
                    keys_per_tenant,
                    concurrency=probe_concurrency,
                    duration=probe_duration,
                    seed=seed + 1,
                )
        finally:
            directory.close()

        rate_a = coalesce_overload * capacity
        legs: Dict[str, Dict[str, Any]] = {}
        legs["coalesce_off"] = await _run_leg(
            fresh_directory(), config(rate_a), max_batch=1, max_delay=0.0, admission=False
        )
        legs["coalesce_on"] = await _run_leg(
            fresh_directory(), config(rate_a), max_batch=max_batch,
            max_delay=max_delay, admission=False,
        )

        rate_b = admission_overload * capacity
        quota = TenantQuota(
            ops_per_sec=quota_fraction * capacity / num_tenants,
            burst_ops=max(1.0, burst_fraction * capacity / num_tenants),
            max_inflight=max_inflight,
        )
        legs["overload_no_admission"] = await _run_leg(
            fresh_directory(), config(rate_b), max_batch=1, max_delay=0.0, admission=False
        )
        legs["overload_admission"] = await _run_leg(
            fresh_directory(quota), config(rate_b), max_batch=1, max_delay=0.0,
            admission=True,
        )
        return {"capacity_rps": capacity, "rate_a": rate_a, "rate_b": rate_b, "legs": legs}

    outcome = asyncio.run(bench())
    legs = outcome["legs"]

    def row(phase: str, mode: str, leg: Dict[str, Any], offered_rps: float):
        return (
            phase,
            mode,
            int(round(offered_rps)),
            leg["ok"],
            leg["shed_throttled"] + leg["shed_overloaded"],
            leg["unanswered"],
            round(leg["p50_s"] * 1e3, 2),
            round(leg["p99_s"] * 1e3, 2),
            round(leg["p999_s"] * 1e3, 2),
            leg["mean_batch"],
        )

    p99_on = max(legs["coalesce_on"]["p99_s"], 1e-9)
    p999_admitted = max(legs["overload_admission"]["p999_s"], 1e-9)
    return {
        "headers": [
            "phase", "mode", "offered_rps", "ok", "shed", "unanswered",
            "p50_ms", "p99_ms", "p999_ms", "mean_batch",
        ],
        "rows": [
            row("coalesce", "off", legs["coalesce_off"], outcome["rate_a"]),
            row("coalesce", "on", legs["coalesce_on"], outcome["rate_a"]),
            row("overload", "no-admission", legs["overload_no_admission"], outcome["rate_b"]),
            row("overload", "admission", legs["overload_admission"], outcome["rate_b"]),
        ],
        "capacity_rps": round(outcome["capacity_rps"], 1),
        "offered_rps": {
            "coalesce": round(outcome["rate_a"], 1),
            "overload": round(outcome["rate_b"], 1),
        },
        "coalescing_p99_ratio": round(legs["coalesce_off"]["p99_s"] / p99_on, 2),
        "admission_p999_ratio": round(
            legs["overload_no_admission"]["p999_s"] / p999_admitted, 2
        ),
        "admission_sheds": legs["overload_admission"]["shed_throttled"]
        + legs["overload_admission"]["shed_overloaded"],
        "admission_p999_s": round(legs["overload_admission"]["p999_s"], 4),
        "legs": legs,
    }
