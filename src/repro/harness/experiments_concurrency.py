"""Figure 18: concurrent workload adaptation — GS vs TLS.

Worker threads execute a Zipf workload against a shared Hybrid B+-tree
while sampling into either a **global** map (GS: one lock, taken on every
record and for the whole adaptation phase) or **thread-local** maps (TLS:
lock-free recording, one merge per phase).  Tree mutations are guarded by
a single tree lock in both arms (identical cost), so the measured
difference isolates the sampling strategy — the contrast the paper's
Figure 18 draws.

Python's GIL caps real parallel speedup; both the wall-clock throughput
(honest) and a modeled throughput including priced contention events are
reported.  The TLS-over-GS ordering is a synchronization-structure
property that survives the GIL.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Sequence

import numpy as np

from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.core.access import AccessType
from repro.core.concurrency import (
    ConcurrentSampler,
    CuckooGlobalSampling,
    GlobalSampling,
    SamplingStrategy,
    ThreadLocalSampling,
)
from repro.core.topk import TopKClassifier
from repro.bptree.migrate import migrate_leaf
from repro.sim.costmodel import CostModel
from repro.workloads.datasets import osm_like_keys
from repro.workloads.distributions import zipf_indices
from repro.workloads.spec import OpKind
from repro.workloads.stream import Operation


class ConcurrentAdaptiveRun:
    """One multi-threaded run of a workload with a sampling strategy."""

    def __init__(
        self,
        tree: BPlusTree,
        strategy: SamplingStrategy,
        skip_length: int = 10,
        sample_size: int = 300,
        hot_k: int = 64,
    ) -> None:
        self.tree = tree
        self.strategy = strategy
        self.sampler = ConcurrentSampler(skip_length)
        self.sample_size = sample_size
        self.hot_k = hot_k
        self.tree_lock = threading.Lock()
        self.adaptation_lock = threading.Lock()
        self.epoch = 1
        self.adaptations = 0
        self.migrations = 0

    def _execute(self, op: Operation) -> None:
        if op.kind is OpKind.READ:
            try:
                # Optimistic read (the paper uses optimistic lock coupling):
                # concurrent splits can force a retry under the lock.
                leaf, _ = self.tree.find_leaf(op.key)
                leaf.lookup(op.key)
            except (IndexError, KeyError):
                with self.tree_lock:
                    leaf, _ = self.tree.find_leaf(op.key)
                    leaf.lookup(op.key)
        elif op.kind is OpKind.SCAN:
            with self.tree_lock:
                self.tree.scan(op.key, op.scan_length)
            return
        else:  # insert / update
            with self.tree_lock:
                self.tree.insert(op.key, op.value)
            leaf, _ = self.tree.find_leaf(op.key)
        if self.sampler.is_sample():
            access = AccessType.READ if op.kind is OpKind.READ else AccessType.INSERT
            self.strategy.record(leaf, access, self.epoch)
            if self.strategy.sampled_count() >= self.sample_size:
                self._adapt()

    def _adapt(self) -> None:
        # One worker runs the adaptation; the rest keep sampling (TLS) or
        # block on the strategy's own lock (GS drain).
        if not self.adaptation_lock.acquire(blocking=False):
            return
        try:
            samples = self.strategy.drain()
            classifier = TopKClassifier(self.hot_k)
            for leaf, stats in samples.items():
                classifier.offer(leaf, stats.frequency())
            hot = classifier.hot_items()
            with self.tree_lock:
                for leaf in samples:
                    target = (
                        LeafEncoding.GAPPED if leaf in hot else LeafEncoding.SUCCINCT
                    )
                    if leaf.encoding is not target and migrate_leaf(
                        leaf, target, self.tree.counters
                    ):
                        self.migrations += 1
            self.epoch += 1
            self.adaptations += 1
        finally:
            self.adaptation_lock.release()

    def run(self, per_thread_ops: List[List[Operation]]) -> float:
        """Execute; returns wall seconds."""
        threads = [
            threading.Thread(target=self._worker, args=(operations,), daemon=True)
            for operations in per_thread_ops
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - start

    def _worker(self, operations: List[Operation]) -> None:
        for op in operations:
            self._execute(op)


def experiment_fig18(
    num_keys: int = 30_000,
    ops_per_thread: int = 8_000,
    thread_counts: Sequence[int] = (1, 2, 4, 8, 16),
    write_fraction_w51: float = 0.80,
    seed: int = 0,
) -> Dict:
    """GS vs TLS throughput for the write-heavy W5.1 and the read/scan
    W5.2 mixes, across worker-thread counts."""
    rng = np.random.default_rng(seed)
    keys = osm_like_keys(num_keys, rng)
    pairs = [(int(key), rank) for rank, key in enumerate(keys)]
    cost_model = CostModel()
    rows = []
    for workload_label, write_fraction in (("W5.1 writes", write_fraction_w51), ("W5.2 reads", 0.0)):
        for threads in thread_counts:
            for strategy_name in ("GS", "GS-cuckoo", "TLS"):
                per_thread_ops = []
                for thread_index in range(threads):
                    thread_rng = np.random.default_rng(seed + 13 * thread_index + 1)
                    indices = zipf_indices(num_keys, ops_per_thread, alpha=1.0, rng=thread_rng)
                    writes = thread_rng.random(ops_per_thread) < write_fraction
                    operations = []
                    for position in range(ops_per_thread):
                        key = int(keys[indices[position]])
                        if writes[position]:
                            operations.append(
                                Operation(OpKind.INSERT, key + int(thread_rng.integers(1, 512)), value=position)
                            )
                        else:
                            operations.append(Operation(OpKind.READ, key))
                    per_thread_ops.append(operations)
                tree = BPlusTree.bulk_load(pairs, LeafEncoding.SUCCINCT, leaf_capacity=64)
                if strategy_name == "GS":
                    strategy = GlobalSampling()
                elif strategy_name == "GS-cuckoo":
                    strategy = CuckooGlobalSampling()
                else:
                    strategy = ThreadLocalSampling()
                run = ConcurrentAdaptiveRun(tree, strategy)
                wall_seconds = run.run(per_thread_ops)
                total_ops = threads * ops_per_thread
                wall_mops = total_ops / wall_seconds / 1e6
                # Modeled throughput: price tree events + contention events.
                events = dict(tree.counters.snapshot())
                counters = strategy.counters
                events["lock_acquire"] = counters.lock_acquisitions
                events["lock_blocked"] = counters.blocked_acquisitions
                # Contention scales with how many *other* threads hammer
                # the same lock; the cuckoo map's 16 stripes divide it,
                # and TLS takes its lock ~once per thread so the term is
                # negligible there by construction.
                stripes = 16 if strategy_name == "GS-cuckoo" else 1
                events["lock_contention_pair"] = (
                    counters.lock_acquisitions * max(0, threads - 1) // stripes
                )
                events["map_merge_entry"] = counters.merges * run.sample_size
                modeled_ns = cost_model.price(events) / total_ops
                modeled_mops = threads * (1000.0 / modeled_ns) if modeled_ns else 0.0
                rows.append(
                    (
                        workload_label,
                        threads,
                        strategy_name,
                        round(wall_mops, 3),
                        round(modeled_mops, 2),
                        strategy.memory_bytes(),
                        run.adaptations,
                    )
                )
    return {
        "headers": [
            "workload",
            "threads",
            "strategy",
            "wall_Mops",
            "modeled_Mops",
            "sampling_bytes",
            "adaptations",
        ],
        "rows": rows,
    }
