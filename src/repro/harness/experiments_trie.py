"""Hybrid Trie experiments: Figures 19 and 20.

Figure 19 compares ART, FST, the adaptive Hybrid Trie (AHI-Trie), and a
pre-trained Hybrid Trie on e-mail keys for point lookups (W6.1) and range
scans (W6.2).  Figure 20 runs the prefix-random workload W3 (two phases
with disjoint hot prefix ranges) over user-id keys and charts latency,
size, and the expansion/compaction timeline.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.art.tree import ART, terminated
from repro.core.budget import MemoryBudget
from repro.core.manager import ManagerConfig
from repro.fst.trie import FST
from repro.harness.runner import ByteKeyIndexAdapter, RunResult, run_operations
from repro.hybridtrie.tree import TRIE_ENCODING_ORDER, HybridTrie
from repro.sim.costmodel import CostModel
from repro.workloads.datasets import email_keys, prefix_random_keys
from repro.workloads.distributions import zipf_indices
from repro.workloads.spec import WorkloadSpec, w3, w61, w62
from repro.workloads.stream import generate_phase


def scaled_trie_manager_config(
    budget: Optional[MemoryBudget] = None,
    skip_min: int = 5,
    skip_max: int = 100,
    max_sample_size: int = 1_000,
    epsilon: float = 0.10,
    delta: float = 0.10,
) -> ManagerConfig:
    """Laptop-scaled adaptation knobs for the Hybrid Trie (see
    ``scaled_manager_config`` in the B+-tree experiments)."""
    return ManagerConfig(
        encoding_order=TRIE_ENCODING_ORDER,
        budget=budget or MemoryBudget.unbounded(),
        initial_skip_length=skip_min,
        skip_min=skip_min,
        skip_max=skip_max,
        max_sample_size=max_sample_size,
        epsilon=epsilon,
        delta=delta,
    )


def build_trie_variants(
    byte_keys: Sequence[bytes],
    art_levels: int = 2,
    training_ranks: Optional[np.ndarray] = None,
    budget: Optional[MemoryBudget] = None,
    include: Sequence[str] = ("art", "fst", "ahi-trie", "pretrained"),
) -> Dict[str, object]:
    """The Section 5.3 trie lineup over one sorted byte-key set."""
    pairs = [(key, rank) for rank, key in enumerate(byte_keys)]
    variants: Dict[str, object] = {}
    for name in include:
        if name == "art":
            variants[name] = ART.from_sorted(pairs)
        elif name == "fst":
            variants[name] = FST(pairs)
        elif name == "ahi-trie":
            variants[name] = HybridTrie(
                pairs,
                art_levels=art_levels,
                manager_config=scaled_trie_manager_config(budget),
            )
        elif name == "pretrained":
            trie = HybridTrie(
                pairs,
                art_levels=art_levels,
                adaptive=False,
                manager_config=scaled_trie_manager_config(budget),
            )
            if training_ranks is not None:
                training_budget = budget or MemoryBudget.absolute(2 * trie.size_bytes())
                trie.train(
                    [byte_keys[rank] for rank in training_ranks], training_budget
                )
            variants[name] = trie
        else:
            raise ValueError(f"unknown trie variant {name!r}")
    return variants


def _run_over_variants(
    variants: Dict[str, object],
    byte_keys: Sequence[bytes],
    workload: WorkloadSpec,
    interval_ops: int,
    cost_model: Optional[CostModel] = None,
    seed: int = 1,
) -> Dict[str, RunResult]:
    """Run the same rank-keyed operation stream against every variant."""
    cost_model = cost_model or CostModel()
    ranks = np.arange(len(byte_keys), dtype=np.int64)
    phase_operations = [
        generate_phase(ranks, phase, rng=np.random.default_rng(seed + index), phase_index=index)
        for index, phase in enumerate(workload.phases)
    ]
    results: Dict[str, RunResult] = {}
    for name, index in variants.items():
        adapter = ByteKeyIndexAdapter(index, byte_keys)
        result = RunResult()
        for operations in phase_operations:
            run_operations(adapter, operations, cost_model, interval_ops, result)
        results[name] = result
    return results


# ----------------------------------------------------------------------
# Figure 19: point lookups and scans on e-mail keys
# ----------------------------------------------------------------------
def experiment_fig19(
    num_keys: int = 30_000,
    num_ops: int = 60_000,
    interval_ops: int = 10_000,
    art_levels: int = 8,
    alpha: float = 1.0,
    seed: int = 0,
) -> Dict:
    """Size and throughput of the trie lineup on e-mail addresses, for
    the point workload W6.1 and the scan workload W6.2."""
    rng = np.random.default_rng(seed)
    byte_keys = [terminated(key) for key in email_keys(num_keys, rng)]
    training_ranks = zipf_indices(num_keys, num_ops // 4, alpha=alpha, rng=rng)
    rows = []
    throughput: Dict[str, Dict[str, float]] = {}
    for workload_factory, label in ((w61, "W6.1 points"), (w62, "W6.2 scans")):
        variants = build_trie_variants(
            byte_keys, art_levels=art_levels, training_ranks=training_ranks
        )
        results = _run_over_variants(
            variants, byte_keys, workload_factory(num_ops, alpha), interval_ops, seed=seed + 1
        )
        for name, result in results.items():
            modeled_mops = 1000.0 / max(1e-9, result.modeled_ns_per_op)
            rows.append(
                (
                    label,
                    name,
                    round(result.modeled_ns_per_op, 1),
                    round(modeled_mops, 2),
                    result.final_total_bytes,
                )
            )
            throughput.setdefault(label, {})[name] = modeled_mops
    return {
        "headers": ["workload", "index", "modeled_ns_per_op", "modeled_Mops", "total_bytes"],
        "rows": rows,
        "throughput": throughput,
    }


# ----------------------------------------------------------------------
# Figure 20: the prefix-random adaptation timeline
# ----------------------------------------------------------------------
def experiment_fig20(
    num_keys: int = 80_000,
    ops_per_phase: int = 100_000,
    interval_ops: int = 5_000,
    art_levels: int = 2,
    num_phases: int = 2,
    seed: int = 0,
) -> Dict:
    """W3 over user-id keys: two phases with disjoint hot prefix ranges;
    the adaptive trie expands in phase 1, then compacts/re-expands as the
    hot set moves in phase 2."""
    rng = np.random.default_rng(seed)
    keys = prefix_random_keys(num_keys, rng=rng)
    byte_keys = [int(key).to_bytes(8, "big") for key in keys]
    # Train the offline variant on phase-0 accesses only: in phase 1 its
    # choices are stale, which is the contrast the figure draws.
    workload = w3(num_ops=ops_per_phase, num_phases=num_phases)
    phase0_ops = generate_phase(
        np.arange(num_keys), workload.phases[0], rng=np.random.default_rng(seed + 7), phase_index=0
    )
    training_ranks = np.array([op.key for op in phase0_ops[: ops_per_phase // 4]])
    variants = build_trie_variants(
        byte_keys, art_levels=art_levels, training_ranks=training_ranks
    )
    results = _run_over_variants(
        variants, byte_keys, workload, interval_ops, seed=seed + 7
    )
    ahi: RunResult = results["ahi-trie"]
    trie: HybridTrie = variants["ahi-trie"]  # type: ignore[assignment]
    return {
        "series": {name: result.series("modeled_ns_per_op") for name, result in results.items()},
        "size_series": {name: result.series("index_bytes") for name, result in results.items()},
        "expansions": ahi.series("expansions"),
        "compactions": ahi.series("compactions"),
        "skip_lengths": ahi.series("skip_length"),
        "adaptation_phases": ahi.series("adaptation_phases"),
        "results": results,
        "adaptation_events": trie.manager.events.as_dicts(),
        "final_expanded_branches": trie.expanded_branch_count(),
        "intervals_per_phase": ops_per_phase // interval_ops,
    }
