"""Fault-injection campaign: robustness evidence for every index family.

Not a paper figure — this experiment exercises the robustness layer the
repository adds on top of the paper: transactional migrations
(:mod:`repro.faults`), manager-side degradation (retry / backoff /
quarantine / disable), and checksummed serialization.  It runs mixed
workloads while a :class:`~repro.faults.FaultInjector` makes migration
and serialization steps raise, then proves that

* every structural invariant still holds (:func:`repro.core.invariants
  .violations_of` returns nothing),
* no key was lost or invented relative to a dict oracle, and
* the manager surfaced the failures through its :class:`EventLog`
  (retries, quarantined units, and — in the degradation campaign —
  adaptation shutting itself off).

``experiment_fault_campaign(faults=N)`` keeps injecting until at least
``N`` faults fired across all campaigns, so callers can demand "at least
a thousand faults, zero damage" and have the claim hold by construction.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Tuple

import numpy as np

from repro.bptree.hybrid import BTREE_ENCODING_ORDER, AdaptiveBPlusTree
from repro.core.invariants import violations_of
from repro.core.manager import ManagerConfig
from repro.dualstage.index import DualStageIndex
from repro.faults.injector import FaultInjector, InjectedFault
from repro.fst.serialize import (
    CorruptSerializationError,
    fst_from_bytes,
    fst_to_bytes,
)
from repro.fst.trie import FST
from repro.hybridtrie.tree import TRIE_ENCODING_ORDER, HybridTrie


def _campaign_config(encoding_order, disable_after: int) -> ManagerConfig:
    """Aggressive sampling so adaptation phases (and thus migration
    attempts) happen every few dozen operations."""
    return ManagerConfig(
        encoding_order=encoding_order,
        initial_skip_length=0,
        skip_min=0,
        skip_max=4,
        initial_sample_size=96,
        max_sample_size=96,
        disable_after_failures=disable_after,
    )


def _oracle_damage(items, oracle: Dict) -> Tuple[int, int]:
    """(lost_or_wrong, invented) between index contents and the oracle."""
    got = dict(items)
    lost = sum(1 for key, value in oracle.items() if got.get(key) != value)
    invented = sum(1 for key in got if key not in oracle)
    return lost, invented


def _btree_campaign(
    num_keys: int,
    fault_rate: float,
    fault_quota: int,
    seed: int,
    degradation: bool,
    max_batches: int,
) -> Dict:
    """Mixed B+-tree workload under migration faults.

    ``degradation=True`` makes *every* migration fail (rate 1.0 on the
    swap point) with a low disable threshold, so the run must end with
    quarantined leaves and adaptation switched off; otherwise the faults
    are flaky (``fault_rate``) and the manager recovers via retries.
    """
    rng = np.random.default_rng(seed)
    pairs = [(key, key * 7 + 1) for key in range(0, num_keys * 2, 2)]
    tree = AdaptiveBPlusTree.bulk_load_adaptive(
        pairs,
        leaf_capacity=64,
        # In the degradation run the threshold sits above 3x the
        # quarantine streak, so leaves demonstrably quarantine *before*
        # the total-failure count shuts adaptation off.
        manager_config=_campaign_config(
            BTREE_ENCODING_ORDER, disable_after=40 if degradation else 100_000
        ),
    )
    oracle = dict(pairs)
    # Degradation wants the *same few* leaves failing repeatedly (streaks
    # -> quarantine) before the total-failure disable threshold trips;
    # the flaky run spreads heat wide so many leaves migrate.
    hot_size = 8 if degradation else max(8, num_keys // 20)
    hot = rng.choice([key for key, _ in pairs], size=hot_size)
    injector = FaultInjector(
        site="bptree.migrate.swap" if degradation else "bptree.*",
        rate=1.0 if degradation else fault_rate,
        seed=seed,
    )
    operations = 0
    next_key = num_keys * 2 + 1
    with injector:
        for _ in range(max_batches):
            for _ in range(200):
                tree.lookup(int(rng.choice(hot)))
            for _ in range(100):
                tree.insert(next_key, next_key)
                oracle[next_key] = next_key
                next_key += 2
            for _ in range(20):
                victim = next_key - 2 * int(rng.integers(1, 40))
                if tree.delete(victim):
                    oracle.pop(victim, None)
            operations += 320
            if degradation:
                if tree.manager.adaptation_degraded and tree.manager.quarantined_units:
                    break
            elif injector.failures_injected >= fault_quota:
                break
    violations = violations_of(tree)
    lost, invented = _oracle_damage(tree.items(), oracle)
    manager = tree.manager
    return {
        "name": "btree-degradation" if degradation else "btree-flaky",
        "operations": operations,
        "faults": injector.failures_injected,
        "failures": manager.total_migration_failures,
        "retries": manager.counters.migration_retries,
        "quarantined": manager.quarantined_units,
        "degraded": manager.adaptation_degraded,
        "violations": len(violations),
        "lost": lost + invented,
        "events": manager.events,
    }


def _trie_campaign(
    num_keys: int,
    fault_rate: float,
    fault_quota: int,
    seed: int,
    max_batches: int,
) -> Dict:
    """Hot-range lookups on the AHI-Trie under expand/compact faults."""
    rng = np.random.default_rng(seed)
    keys = sorted(
        int(value).to_bytes(4, "big")
        for value in rng.choice(1 << 28, size=num_keys, replace=False)
    )
    pairs = [(key, position) for position, key in enumerate(keys)]
    trie = HybridTrie(
        pairs,
        art_levels=1,
        manager_config=_campaign_config(TRIE_ENCODING_ORDER, disable_after=100_000),
    )
    oracle = dict(pairs)
    injector = FaultInjector(site="trie.*", rate=fault_rate, seed=seed + 1)
    operations = 0
    with injector:
        for batch in range(max_batches):
            # Rotate the hot range so branches heat up, expand, cool
            # down, and compact again — both migration directions fire.
            hot = keys[(batch * 97) % max(1, num_keys - 256) :][:256]
            for _ in range(300):
                trie.lookup(hot[int(rng.integers(0, len(hot)))])
            operations += 300
            if injector.failures_injected >= fault_quota:
                break
    violations = violations_of(trie)
    lost, invented = _oracle_damage(trie.items(), oracle)
    manager = trie.manager
    return {
        "name": "trie-flaky",
        "operations": operations,
        "faults": injector.failures_injected,
        "failures": manager.total_migration_failures,
        "retries": manager.counters.migration_retries,
        "quarantined": manager.quarantined_units,
        "degraded": manager.adaptation_degraded,
        "violations": len(violations),
        "lost": lost + invented,
        "events": manager.events,
    }


def _dualstage_campaign(
    num_keys: int,
    fault_rate: float,
    fault_quota: int,
    seed: int,
    max_batches: int,
) -> Dict:
    """Insert-heavy Dual-Stage workload under merge faults.

    The merge runs inline with inserts, so an injected fault surfaces to
    the caller — but the transactional rebuild means the insert itself
    already landed in the dynamic stage and both stages stay intact; the
    next insert simply retries the merge.
    """
    rng = np.random.default_rng(seed)
    index = DualStageIndex(merge_ratio=0.10)
    oracle: Dict[int, int] = {}
    injector = FaultInjector(site="dualstage.merge.*", rate=fault_rate, seed=seed + 2)
    operations = 0
    faulted_inserts = 0
    with injector:
        for _ in range(max_batches):
            for _ in range(150):
                key = int(rng.integers(0, num_keys * 4))
                try:
                    index.insert(key, key + 3)
                except InjectedFault:
                    faulted_inserts += 1  # insert landed; only the merge failed
                oracle[key] = key + 3
            for _ in range(20):
                key = int(rng.integers(0, num_keys * 4))
                try:
                    removed = index.delete(key)
                except InjectedFault:  # pragma: no cover - delete has no merge
                    removed = True
                if removed:
                    oracle.pop(key, None)
            operations += 170
            if injector.failures_injected >= fault_quota:
                break
    violations = violations_of(index)
    span = max(oracle) + 1 if oracle else 1
    lost, invented = _oracle_damage(index.scan(0, len(oracle) + span), oracle)
    return {
        "name": "dualstage-merge",
        "operations": operations,
        "faults": injector.failures_injected,
        "failures": faulted_inserts,
        "retries": 0,
        "quarantined": 0,
        "degraded": False,
        "violations": len(violations),
        "lost": lost + invented,
        "events": None,
    }


def _serialization_campaign(num_keys: int, fault_quota: int, seed: int) -> Dict:
    """Checksummed FST serialization under injected faults and corruption.

    Every single-bit flip and every truncation of the blob must raise
    :class:`CorruptSerializationError` — decoding silently succeeding on
    damaged bytes counts as a violation.  Runs until ``fault_quota``
    faults fired, so this campaign absorbs whatever quota the structural
    campaigns left over.
    """
    rng = np.random.default_rng(seed)
    keys = sorted(
        int(value).to_bytes(4, "big")
        for value in rng.choice(1 << 24, size=num_keys, replace=False)
    )
    pairs = [(key, position) for position, key in enumerate(keys)]
    fst = FST(pairs)
    blob = fst_to_bytes(fst)
    faults = 0
    violations = 0
    # Injector-driven faults on the (de)serialization paths themselves.
    for site, action in (
        ("fst.serialize.encode", lambda: fst_to_bytes(fst)),
        ("fst.serialize.decode", lambda: fst_from_bytes(blob)),
    ):
        injector = FaultInjector(site=site, fail_at=1)
        with injector, contextlib.suppress(InjectedFault):
            action()
        faults += injector.failures_injected
    # Truncations: every prefix cut must be rejected.
    for cut in (0, 4, 11, len(blob) // 3, len(blob) // 2, len(blob) - 1):
        try:
            fst_from_bytes(blob[:cut])
            violations += 1
        except CorruptSerializationError:
            faults += 1
    # Bit flips spread deterministically across the whole blob.
    total_bits = len(blob) * 8
    trial = 0
    while faults < fault_quota:
        bit = (trial * 7919) % total_bits  # prime stride covers the blob
        corrupted = bytearray(blob)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        try:
            fst_from_bytes(bytes(corrupted))
            violations += 1
        except CorruptSerializationError:
            faults += 1
        trial += 1
    # The pristine blob must still round-trip after all that.
    restored = fst_from_bytes(blob)
    lost = sum(1 for key, value in pairs if restored.lookup(key) != value)
    violations += len(violations_of(restored))
    return {
        "name": "fst-serialization",
        "operations": trial,
        "faults": faults,
        "failures": 0,
        "retries": 0,
        "quarantined": 0,
        "degraded": False,
        "violations": violations,
        "lost": lost,
        "events": None,
    }


def experiment_fault_campaign(
    faults: int = 1200,
    num_keys: int = 4_000,
    fault_rate: float = 0.15,
    seed: int = 0,
    max_batches: int = 400,
) -> Dict:
    """Inject at least ``faults`` faults across every index family and
    prove zero invariant violations and zero lost keys.

    Campaigns: a B+-tree run where every migration fails (must end
    quarantined + degraded), a flaky B+-tree run (must recover), an
    AHI-Trie expand/compact run, a Dual-Stage merge run, and a
    serialization run that also absorbs any remaining fault quota.
    """
    structural_quota = faults // 5
    campaigns: List[Dict] = [
        _btree_campaign(
            num_keys, fault_rate, structural_quota, seed,
            degradation=True, max_batches=max_batches,
        ),
        _btree_campaign(
            num_keys, fault_rate, structural_quota, seed + 10,
            degradation=False, max_batches=max_batches,
        ),
        _trie_campaign(num_keys, fault_rate, structural_quota, seed + 20, max_batches),
        _dualstage_campaign(
            num_keys, fault_rate, structural_quota, seed + 30, max_batches
        ),
    ]
    structural_faults = sum(campaign["faults"] for campaign in campaigns)
    campaigns.append(
        _serialization_campaign(
            min(num_keys, 2_000), max(64, faults - structural_faults), seed + 40
        )
    )

    rows = [
        (
            campaign["name"],
            campaign["operations"],
            campaign["faults"],
            campaign["failures"],
            campaign["retries"],
            campaign["quarantined"],
            "yes" if campaign["degraded"] else "no",
            campaign["violations"],
            campaign["lost"],
        )
        for campaign in campaigns
    ]
    quarantine_events = sum(
        campaign["events"].total_quarantined
        for campaign in campaigns
        if campaign["events"] is not None
    )
    disable_events = sum(
        1
        for campaign in campaigns
        if campaign["events"] is not None
        for event in campaign["events"]
        if event.adaptation_disabled
    )
    return {
        "headers": [
            "campaign", "ops", "faults", "failures", "retries",
            "quarantined", "degraded", "violations", "lost_keys",
        ],
        "rows": rows,
        "total_faults": sum(campaign["faults"] for campaign in campaigns),
        "total_violations": sum(campaign["violations"] for campaign in campaigns),
        "total_lost_keys": sum(campaign["lost"] for campaign in campaigns),
        "quarantine_events": quarantine_events,
        "disable_events": disable_events,
        "degradation_campaign_degraded": campaigns[0]["degraded"],
        "degradation_campaign_quarantined": campaigns[0]["quarantined"],
    }
