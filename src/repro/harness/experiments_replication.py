"""Replication bench: divergent per-replica adaptation vs identical copies.

One key space, two replicated shard groups with the same replication
factor, the same data, and the same mixed point/scan workload:

* **divergent** — the default specialist line-up (point-tuned,
  scan-tuned, memory-squeezed) behind the cost-scoring
  :class:`~repro.replication.routing.ReplicaRouter`.  Routing feeds each
  replica mostly one read class, so each copy's
  :class:`~repro.core.manager.AdaptationManager` spends its budget on
  *that* class's hot leaves.
* **identical** — the same factor of ``balanced`` replicas (same budget
  as the specialists) behind round-robin routing: every copy sees the
  full mix and must split its budget across both hot regions.

The workload keeps a point-hot key region and a disjoint scan region,
each too large for one budget to cover both — the pressure that makes
divergence pay.  After warmup passes (adaptation converges, the router's
EWMAs fill in), one measured pass prices each leg's summed replica
counter deltas through the calibrated
:class:`~repro.sim.costmodel.CostModel`; the headline is the ratio of
modeled ns/read, identical over divergent.  Wall-clock figures ride
along but are not gated (same policy as every other bench here).
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.service.router import ShardRouter
from repro.sim.costmodel import CostModel

Pair = Tuple[int, int]
#: One workload step: ("point", probe keys) or ("scan", start key).
Step = Tuple[str, Any]

#: Hot-region geometry, as fractions of the key space.  The two regions
#: are disjoint and together oversubscribe the specialist budget (which
#: covers roughly a third of a shard's leaves) — a balanced replica
#: cannot hold both expanded at once.
_POINT_REGION = (0.00, 0.30)
_SCAN_REGION = (0.55, 0.85)


def build_mixed_workload(
    keys: Sequence[int],
    num_batches: int,
    batch_size: int,
    num_scans: int,
    scan_length: int,
    seed: int = 0,
) -> List[Step]:
    """Interleaved point batches and scans over disjoint hot regions."""
    rng = random.Random(seed)
    point_lo = int(len(keys) * _POINT_REGION[0])
    point_hi = max(point_lo + 1, int(len(keys) * _POINT_REGION[1]))
    scan_lo = int(len(keys) * _SCAN_REGION[0])
    scan_hi = max(scan_lo + 1, int(len(keys) * _SCAN_REGION[1]) - scan_length)
    steps: List[Step] = []
    for _ in range(num_batches):
        steps.append(
            (
                "point",
                [keys[rng.randrange(point_lo, point_hi)] for _ in range(batch_size)],
            )
        )
    for _ in range(num_scans):
        steps.append(("scan", keys[rng.randrange(scan_lo, scan_hi)]))
    rng.shuffle(steps)
    return steps


def replay(router: ShardRouter, steps: Sequence[Step], scan_length: int) -> int:
    """Run one pass of the workload; returns the read units served
    (point lookups plus scanned entries — the per-read normalizer)."""
    units = 0
    for kind, payload in steps:
        if kind == "point":
            router.get_many(payload)
            units += len(payload)
        else:
            units += len(router.scan(payload, scan_length))
    return units


def _priced_total_ns(
    cost_model: CostModel,
    before: Mapping[int, Mapping[str, int]],
    after: Mapping[int, Mapping[str, int]],
) -> float:
    """Price every shard's counter delta; return the summed ns.

    Replication is a *cost-efficiency* comparison (same parallelism on
    both legs), so the figure is total work, not the max-shard parallel
    idiom the scalability bench uses.
    """
    total = 0.0
    for shard_id, events in after.items():
        base = before.get(shard_id, {})
        delta = {name: count - base.get(name, 0) for name, count in events.items()}
        total += cost_model.price(delta)
    return total


def _replica_summary(router: ShardRouter) -> List[Dict[str, Any]]:
    """Per-replica divergence evidence across the group's shards."""
    rows: List[Dict[str, Any]] = []
    for stats in router.stats()["shards"]:
        for row in stats.get("replicas", []):
            rows.append(
                {
                    "shard": stats["shard_id"],
                    "replica": row["replica"],
                    "profile": row["profile"],
                    "reads_routed": row["reads_routed"],
                    "migrations": row["migrations"],
                    "encoding_census": {
                        name: entry.get("count", 0)
                        for name, entry in row["encoding_census"].items()
                    },
                }
            )
    return rows


def run_replication_leg(
    pairs: Sequence[Pair],
    steps: Sequence[Step],
    scan_length: int,
    factor: int,
    num_shards: int,
    profiles: Optional[Sequence[str]],
    routing: str,
    warmup_passes: int = 2,
) -> Dict[str, Any]:
    """Build one replicated group, warm it up, measure one priced pass."""
    router = ShardRouter.build(
        list(pairs),
        family="adaptive",
        num_shards=num_shards,
        replication_factor=factor,
        replica_profiles=profiles,
        replica_routing=routing,
    )
    try:
        for _ in range(warmup_passes):
            replay(router, steps, scan_length)
        cost_model = CostModel()
        before = router.counter_snapshots()
        start = time.perf_counter()
        units = replay(router, steps, scan_length)
        wall_seconds = time.perf_counter() - start
        total_ns = _priced_total_ns(cost_model, before, router.counter_snapshots())
        if total_ns <= 0.0:
            raise RuntimeError(
                f"replication leg (routing={routing!r}) priced zero counter "
                "events; the adaptive family must publish structural counters"
            )
        return {
            "routing": routing,
            "profiles": sorted(
                {row["profile"] for row in _replica_summary(router)}
            ),
            "read_units": units,
            "modeled_ns_per_read": round(total_ns / units, 2),
            "wall_reads_per_s": round(units / wall_seconds, 0),
            "size_bytes": sum(
                shard.size_bytes() for shard in router.table.shards
            ),
            "replicas": _replica_summary(router),
        }
    finally:
        router.close()


def run_replication_comparison(
    num_keys: int = 16_000,
    num_batches: int = 300,
    batch_size: int = 64,
    num_scans: int = 600,
    scan_length: int = 1500,
    factor: int = 3,
    num_shards: int = 2,
    warmup_passes: int = 2,
    seed: int = 0,
) -> Dict[str, Any]:
    """Both legs on the same data and workload, plus the headline ratio."""
    keys = list(range(0, num_keys * 2, 2))
    pairs = [(key, key * 3 + 1) for key in keys]
    steps = build_mixed_workload(
        keys, num_batches, batch_size, num_scans, scan_length, seed=seed
    )
    divergent = run_replication_leg(
        pairs,
        steps,
        scan_length,
        factor,
        num_shards,
        profiles=None,
        routing="cost",
        warmup_passes=warmup_passes,
    )
    identical = run_replication_leg(
        pairs,
        steps,
        scan_length,
        factor,
        num_shards,
        profiles=["balanced"] * factor,
        routing="round_robin",
        warmup_passes=warmup_passes,
    )
    speedup = (
        identical["modeled_ns_per_read"] / divergent["modeled_ns_per_read"]
        if divergent["modeled_ns_per_read"]
        else 0.0
    )
    return {
        "config": {
            "num_keys": num_keys,
            "num_batches": num_batches,
            "batch_size": batch_size,
            "num_scans": num_scans,
            "scan_length": scan_length,
            "replication_factor": factor,
            "num_shards": num_shards,
            "warmup_passes": warmup_passes,
            "seed": seed,
        },
        "divergent": divergent,
        "identical": identical,
        "divergent_speedup": round(speedup, 3),
    }


def experiment_replication_bench(
    num_keys: int = 16_000,
    num_batches: int = 300,
    batch_size: int = 64,
    num_scans: int = 600,
    scan_length: int = 1500,
    factor: int = 3,
    num_shards: int = 2,
    seed: int = 0,
) -> Dict[str, Any]:
    """Divergent vs identical replicas on one mixed workload (harness
    table view of :func:`run_replication_comparison`)."""
    payload = run_replication_comparison(
        num_keys=num_keys,
        num_batches=num_batches,
        batch_size=batch_size,
        num_scans=num_scans,
        scan_length=scan_length,
        factor=factor,
        num_shards=num_shards,
        seed=seed,
    )
    rows = []
    for leg in ("divergent", "identical"):
        entry = payload[leg]
        rows.append(
            (
                leg,
                entry["routing"],
                entry["modeled_ns_per_read"],
                payload["divergent_speedup"] if leg == "divergent" else 1.0,
                round(entry["size_bytes"] / (1024 * 1024), 2),
                sum(row["migrations"] for row in entry["replicas"]),
            )
        )
    return {
        "headers": [
            "leg",
            "routing",
            "modeled_ns_per_read",
            "speedup",
            "size_MiB",
            "migrations",
        ],
        "rows": rows,
    }
