"""RA004 — telemetry naming hygiene.

The trace/metric namespace is a public contract: ``docs/trace_schema
.json`` pins the allowed character set, the Prometheus exporter and the
validators parse the names, and dashboards key on them.  Two things rot
that contract:

* **names outside the schema pattern** — a literal span/instrument name
  that ``python -m repro.obs.validate`` would reject should fail review,
  not a CI smoke three jobs later;
* **f-string names at the call site** — ``registry.counter(f"x.{y}")``
  creates unbounded metric cardinality invisibly and re-formats the
  string on the hot path on every call.  Bounded-enum names belong in a
  precomputed name table (a module-level dict of literals); genuinely
  open-ended republishing helpers carry a justified suppression.

The rule checks the first argument of every ``span``/``start``/
``op_start``/``event``/``counter``/``gauge``/``histogram`` call: string
literals must match the schema's ``name`` pattern, and dynamically
formatted strings (f-strings, ``+``/``%``/``.format()`` on strings) are
reported outright.  Plain variables pass — hoisting a name into a table
or helper *is* the sanctioned fix.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path
from typing import Iterator, Optional, Tuple

from repro.analysis.core import Finding, Rule, register
from repro.analysis.project import FunctionInfo, Project

#: Methods whose first argument is a telemetry name.
TELEMETRY_METHODS = frozenset(
    {
        "span",
        "start",
        "op_start",
        "event",
        "counter",
        "gauge",
        "histogram",
        # Detached distributed-tracing lifecycle (asyncio server paths).
        "start_remote",
        "start_child",
        "child_event",
    }
)

#: Fallback, kept in sync with docs/trace_schema.json.
DEFAULT_NAME_PATTERN = r"^[a-z0-9_.:>-]+$"


def schema_name_pattern(schema_path: Optional[Path]) -> str:
    """The ``name`` pattern from the trace schema (fallback: built-in)."""
    if schema_path is None or not schema_path.exists():
        return DEFAULT_NAME_PATTERN
    schema = json.loads(schema_path.read_text())
    pattern = schema.get("properties", {}).get("name", {}).get("pattern")
    return pattern if isinstance(pattern, str) else DEFAULT_NAME_PATTERN


def _is_dynamic_string(node: ast.expr) -> bool:
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        return _has_string_operand(node)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr == "format" and isinstance(node.func.value, ast.Constant)
    return False


def _has_string_operand(node: ast.BinOp) -> bool:
    for side in (node.left, node.right):
        if isinstance(side, ast.Constant) and isinstance(side.value, str):
            return True
        if isinstance(side, ast.JoinedStr):
            return True
        if isinstance(side, ast.BinOp) and _has_string_operand(side):
            return True
    return False


@register
class TelemetryHygieneRule(Rule):
    """RA004: telemetry names are literal and schema-clean."""

    id = "RA004"
    title = "telemetry naming hygiene"
    rationale = (
        "Span and instrument names are parsed by the schema validator, the "
        "Prometheus exporter, and dashboards; dynamic names explode "
        "cardinality and off-pattern names break every consumer at once."
    )

    def __init__(self, schema_path: Optional[Path] = None) -> None:
        if schema_path is None:
            default = Path("docs") / "trace_schema.json"
            schema_path = default if default.exists() else None
        self._pattern_text = schema_name_pattern(schema_path)
        self._pattern = re.compile(self._pattern_text)

    def run(self, project: Project) -> Iterator[Finding]:
        for info in project.functions.values():
            yield from self._check_function(info)

    def _check_function(self, info: FunctionInfo) -> Iterator[Finding]:
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in TELEMETRY_METHODS:
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
                if not self._pattern.match(name_arg.value):
                    yield self.finding(
                        info.module,
                        node,
                        f"telemetry name {name_arg.value!r} does not match the "
                        f"trace-schema pattern {self._pattern_text!r}",
                        symbol=info.qualname,
                    )
            elif _is_dynamic_string(name_arg):
                yield self.finding(
                    info.module,
                    node,
                    f"dynamically formatted name passed to .{func.attr}(); use a "
                    "precomputed table of literal names (bounded cardinality) or "
                    "a suppressed, justified republishing helper",
                    symbol=info.qualname,
                )


__all__: Tuple[str, ...] = ("TelemetryHygieneRule",)
