"""RA006 — derived lock-order graph.

RA001 used to enforce a hand-written lock rank.  That worked for the
four named service locks but said nothing about the locks later PRs
added (replica ``_lock``s, WAL locks, connection write locks), and a
hand-maintained rank is exactly the kind of invariant that rots.  This
rule *derives* the order instead:

* every function in ``service``/``replication``/``durability``/``net``
  is walked lexically; acquiring lock kind B while holding kind A
  records a directed edge ``A -> B`` with its witness site
  (``path:line`` in function);
* the graph is seeded with the documented service hierarchy
  (``_admin_lock -> write_gate -> op_lock/_guard -> leaf locks``,
  ``docs/service.md``) so a single inverted site still contradicts the
  written-down order even when no second code path witnesses it;
* any cycle is reported with **every edge's witness path** — for the
  classic two-function deadlock (f nests A then B, g nests B then A)
  the finding names both sites, which is exactly the PR-4/PR-5
  ``merge_shards`` bug shape.

Same-kind nesting (two shard ``write_gate``s in a merge) is not an
edge: ordering *within* a kind is by shard id and is the business of
RA001's gated-write checks, not the graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding, Rule, register
from repro.analysis.loader import ParsedModule
from repro.analysis.locks import SERVICE_LOCK_RANKS, LockUse, classify_lock
from repro.analysis.project import FunctionInfo, Project

DEFAULT_SCOPE: Tuple[str, ...] = (
    "repro.service",
    "repro.service.*",
    "repro.replication",
    "repro.replication.*",
    "repro.durability",
    "repro.durability.*",
    "repro.net",
    "repro.net.*",
)

#: The documented hierarchy, seeded as consecutive-rank edges.
DOCUMENTED_WITNESS = "documented service hierarchy (docs/service.md)"


def _documented_edges() -> List[Tuple[str, str]]:
    by_rank: Dict[int, List[str]] = {}
    for kind, rank in SERVICE_LOCK_RANKS.items():
        by_rank.setdefault(rank, []).append(kind)
    edges: List[Tuple[str, str]] = []
    ranks = sorted(by_rank)
    for outer_rank, inner_rank in zip(ranks, ranks[1:]):
        for outer in sorted(by_rank[outer_rank]):
            for inner in sorted(by_rank[inner_rank]):
                edges.append((outer, inner))
    return edges


@dataclass
class _Edge:
    """One ``held -> acquired`` ordering, with its witness sites."""

    witnesses: List[str] = field(default_factory=list)
    site: Optional[Tuple[ParsedModule, ast.expr, str]] = None

    @property
    def observed(self) -> bool:
        return self.site is not None


@register
class LockOrderGraphRule(Rule):
    """RA006: no cycles in the observed+documented lock-order graph."""

    id = "RA006"
    title = "derived lock-order graph"
    rationale = (
        "Two code paths that nest the same locks in opposite orders are a "
        "deadlock in waiting; deriving the order from observed sites keeps "
        "every lock added since PR 4 inside the checked hierarchy."
    )

    def __init__(self, modules: Sequence[str] = DEFAULT_SCOPE) -> None:
        self._scope = tuple(modules)

    def _in_scope(self, module: ParsedModule) -> bool:
        return any(fnmatchcase(module.name, pattern) for pattern in self._scope)

    # -- graph construction ---------------------------------------------
    def build_graph(self, project: Project) -> Dict[Tuple[str, str], _Edge]:
        graph: Dict[Tuple[str, str], _Edge] = {}
        for outer, inner in _documented_edges():
            graph.setdefault((outer, inner), _Edge()).witnesses.append(
                DOCUMENTED_WITNESS
            )
        for info in sorted(project.functions.values(), key=lambda i: i.qualname):
            if not self._in_scope(info.module):
                continue
            self._record_function(graph, info)
        return graph

    def _record_function(
        self, graph: Dict[Tuple[str, str], _Edge], info: FunctionInfo
    ) -> None:
        held: List[LockUse] = []

        def walk(node: ast.AST) -> None:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not info.node
            ):
                return  # nested defs acquire under their caller, later
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired: List[LockUse] = []
                for item in node.items:
                    lock = classify_lock(item.context_expr)
                    if lock is None:
                        continue
                    for holder in held:
                        if holder.kind == lock.kind:
                            continue
                        witness = (
                            f"{info.module.path.as_posix()}:"
                            f"{item.context_expr.lineno} in {info.qualname} "
                            f"({holder.receiver}.{holder.kind} then "
                            f"{lock.receiver}.{lock.kind})"
                        )
                        edge = graph.setdefault((holder.kind, lock.kind), _Edge())
                        edge.witnesses.append(witness)
                        if edge.site is None:
                            edge.site = (info.module, item.context_expr, info.qualname)
                    acquired.append(lock)
                    held.append(lock)
                for statement in node.body:
                    walk(statement)
                for _ in acquired:
                    held.pop()
                return
            for child in ast.iter_child_nodes(node):
                walk(child)

        for statement in info.node.body:
            walk(statement)

    # -- cycle detection -------------------------------------------------
    def run(self, project: Project) -> Iterator[Finding]:
        graph = self.build_graph(project)
        successors: Dict[str, List[str]] = {}
        for a, b in graph:
            successors.setdefault(a, []).append(b)
        reported: Set[frozenset[Tuple[str, str]]] = set()
        for (a, b), edge in sorted(graph.items()):
            if not edge.observed:
                continue
            path = self._shortest_path(successors, b, a)
            if path is None:
                continue
            cycle_edges = [(a, b)] + list(zip(path, path[1:]))
            key = frozenset(cycle_edges)
            if key in reported:
                continue
            reported.add(key)
            yield self._cycle_finding(graph, cycle_edges)

    @staticmethod
    def _shortest_path(
        successors: Dict[str, List[str]], start: str, goal: str
    ) -> Optional[List[str]]:
        """BFS path ``start -> ... -> goal`` through the edge set."""
        queue: List[List[str]] = [[start]]
        seen = {start}
        while queue:
            path = queue.pop(0)
            if path[-1] == goal:
                return path
            for nxt in sorted(successors.get(path[-1], [])):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(path + [nxt])
        return None

    @staticmethod
    def _witness(edge: _Edge) -> str:
        """Prefer an observed code site over the documented-order witness."""
        for witness in edge.witnesses:
            if witness != DOCUMENTED_WITNESS:
                return witness
        return edge.witnesses[0]

    def _cycle_finding(
        self,
        graph: Dict[Tuple[str, str], _Edge],
        cycle_edges: List[Tuple[str, str]],
    ) -> Finding:
        # Anchor at the lexically-first observed site in the cycle.
        observed = [
            site
            for site in (graph[e].site for e in cycle_edges)
            if site is not None
        ]
        module, node, qualname = min(
            observed, key=lambda site: (site[0].path.as_posix(), site[1].lineno)
        )
        legs = "; ".join(
            f"{a} -> {b} [{self._witness(graph[(a, b)])}]" for a, b in cycle_edges
        )
        kinds = " -> ".join([cycle_edges[0][0]] + [b for _, b in cycle_edges])
        return self.finding(
            module,
            node,
            f"lock-order cycle {kinds}: {legs}; two paths acquire these "
            "locks in opposite orders, which can deadlock — pick one order "
            "and document it",
            symbol=qualname,
        )
