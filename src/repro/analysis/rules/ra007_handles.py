"""RA007 — handle lifecycle: every acquired handle reaches ``close()``.

Both PR-6 fd leaks had the same anatomy: a function acquired an OS
handle (``open``, a WAL) and an *exception path* skipped the release —
an aborted ``truncate_upto`` reopened the log while the old descriptor
was still live, and a failed recovery dropped its half-built WAL on the
floor.  Descriptor leaks never fail a unit test; they fail a server
three days in.  This rule checks two shapes lexically:

* **local handles** — ``h = open(...)`` (or ``WriteAheadLog(...)``,
  ``os.fdopen``, ``socket.socket``) must reach ``h.close()`` on every
  path: either the handle *escapes* (returned, stored on an attribute
  or container, passed to a call, captured by a nested def — ownership
  moved), or it is used as a context manager, or it is closed in a
  ``finally``.  A close that only sits on the straight-line path is
  reported as missing its exception path;
* **attribute reassignment** — ``self.X = open(...)`` over a handle
  that was already *used* earlier in the function must be preceded by
  ``self.X.close()`` on the same path (inside the same ``except``
  handler when the reassignment is failure-path cleanup) — the exact
  ``truncate_upto`` abort-path leak.

Lifecycle tracking across functions is out of scope (ownership handoff
is an escape), so the rule is a **warning**: new findings gate CI, but
reviewed-and-accepted ones can be baselined (docs/static_analysis.md).
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding, Rule, register
from repro.analysis.loader import ParsedModule
from repro.analysis.project import FunctionInfo, Project, attribute_chain

DEFAULT_SCOPE: Tuple[str, ...] = (
    "repro.service",
    "repro.service.*",
    "repro.durability",
    "repro.durability.*",
    "repro.replication",
    "repro.replication.*",
    "repro.net",
    "repro.net.*",
    "repro.core",
    "repro.core.*",
)

#: Constructors whose return value is an OS-handle-like resource.
ACQUIRER_NAMES = frozenset({"open", "WriteAheadLog"})
ACQUIRER_MODULE_ATTRS = frozenset({("os", "fdopen"), ("socket", "socket"),
                                   ("socket", "create_connection")})


def _is_acquirer(call: ast.Call, module_aliases: Dict[str, str]) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in ACQUIRER_NAMES
    chain = attribute_chain(func)
    if chain is None or len(chain) != 2:
        return False
    root_module = module_aliases.get(chain[0], "")
    return (root_module, chain[1]) in ACQUIRER_MODULE_ATTRS


@register
class HandleLifecycleRule(Rule):
    """RA007: acquired handles reach close() on all paths."""

    id = "RA007"
    title = "handle lifecycle"
    severity = "warning"
    rationale = (
        "A handle that misses close() on an exception path is a descriptor "
        "leak that only shows up under sustained faults — both PR-6 fd "
        "leaks had this shape (docs/durability.md)."
    )

    def __init__(self, modules: Sequence[str] = DEFAULT_SCOPE) -> None:
        self._scope = tuple(modules)

    def _in_scope(self, module: ParsedModule) -> bool:
        return any(fnmatchcase(module.name, pattern) for pattern in self._scope)

    def run(self, project: Project) -> Iterator[Finding]:
        for info in sorted(project.functions.values(), key=lambda i: i.qualname):
            if not self._in_scope(info.module):
                continue
            aliases = project.imports[info.module_name].modules
            yield from self._check_local_handles(info, aliases)
            yield from self._check_attribute_reassign(info, aliases)

    # -- local handles ---------------------------------------------------
    def _check_local_handles(
        self, info: FunctionInfo, aliases: Dict[str, str]
    ) -> Iterator[Finding]:
        for node in ast.walk(info.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not info.node:
                continue
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if not isinstance(node.value, ast.Call) or not _is_acquirer(
                node.value, aliases
            ):
                continue
            yield from self._check_one_local(info, node, target.id)

    def _check_one_local(
        self, info: FunctionInfo, assign: ast.Assign, name: str
    ) -> Iterator[Finding]:
        closes: List[ast.Call] = []
        closes_in_finally: List[ast.Call] = []
        finally_ids = {
            id(inner)
            for node in ast.walk(info.node)
            if isinstance(node, ast.Try)
            for stmt in node.finalbody
            for inner in ast.walk(stmt)
        }
        for node in ast.walk(info.node):
            if self._escapes(node, info.node, name):
                return
            if (
                isinstance(node, ast.Call)
                and attribute_chain(node.func) == [name, "close"]
            ):
                closes.append(node)
                if id(node) in finally_ids:
                    closes_in_finally.append(node)
        if not closes:
            yield self.finding(
                info.module,
                assign,
                f"handle {name!r} acquired here is never closed in "
                f"{info.local_name}; close it in a finally or use a "
                "`with` block",
                symbol=info.qualname,
            )
        elif not closes_in_finally:
            yield self.finding(
                info.module,
                assign,
                f"handle {name!r} is only closed on the straight-line path "
                f"of {info.local_name}; an exception between acquire and "
                "close leaks the descriptor — move the close into a "
                "finally or use a `with` block",
                symbol=info.qualname,
            )

    @staticmethod
    def _escapes(node: ast.AST, owner: ast.AST, name: str) -> bool:
        """Ownership leaves the function: stored, returned, passed, captured.

        A *bare* mention of the handle (``h`` as a value) moves ownership;
        a method/field access on it (``h.read()``, ``h.fileno``) does not.
        """
        def mentions(expr: Optional[ast.AST]) -> bool:
            return expr is not None and any(
                isinstance(sub, ast.Name) and sub.id == name
                for sub in ast.walk(expr)
            )

        def bare_mentions(expr: Optional[ast.AST]) -> bool:
            if expr is None:
                return False
            receivers = {
                id(sub.value) for sub in ast.walk(expr) if isinstance(sub, ast.Attribute)
            }
            return any(
                isinstance(sub, ast.Name)
                and sub.id == name
                and id(sub) not in receivers
                for sub in ast.walk(expr)
            )

        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Any capture by a closure outlives this frame.
            return node is not owner and mentions(node)
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            return bare_mentions(node.value)
        if isinstance(node, ast.Assign):
            # Aliasing or storing the handle moves ownership; the
            # acquiring assignment itself has the handle on the *left*.
            return bare_mentions(node.value)
        if isinstance(node, ast.Call):
            chain = attribute_chain(node.func)
            if chain == [name, "close"]:
                return False
            return any(bare_mentions(arg) for arg in node.args) or any(
                bare_mentions(kw.value) for kw in node.keywords
            )
        if isinstance(node, ast.withitem):
            # ``with h:``/``with closing(h):`` both release on exit.
            return mentions(node.context_expr)
        return False

    # -- attribute reassignment ------------------------------------------
    def _check_attribute_reassign(
        self, info: FunctionInfo, aliases: Dict[str, str]
    ) -> Iterator[Finding]:
        if info.name == "__init__":
            return
        handler_of: Dict[int, ast.ExceptHandler] = {}
        for node in ast.walk(info.node):
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    for inner in ast.walk(handler):
                        handler_of[id(inner)] = handler
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            chain = attribute_chain(target)
            if chain is None or len(chain) < 2:
                continue
            if not isinstance(node.value, ast.Call) or not _is_acquirer(
                node.value, aliases
            ):
                continue
            if not self._loaded_before(info, chain, node.lineno):
                continue  # first touch in this function: initialization
            search_root: ast.AST = handler_of.get(id(node), info.node)
            if self._closed_before(search_root, chain, node.lineno):
                continue
            where = (
                "in this except handler"
                if id(node) in handler_of
                else "earlier in the function"
            )
            yield self.finding(
                info.module,
                node,
                f"reassigning {'.'.join(chain)} to a fresh handle without "
                f"closing the previous one {where}; the old descriptor "
                "leaks (the PR-6 truncate abort-path bug)",
                symbol=info.qualname,
            )

    @staticmethod
    def _loaded_before(info: FunctionInfo, chain: List[str], line: int) -> bool:
        for node in ast.walk(info.node):
            if node.__class__ is ast.Attribute and getattr(node, "lineno", line) < line:
                found = attribute_chain(node)
                if found is not None and found[: len(chain)] == chain:
                    return True
        return False

    @staticmethod
    def _closed_before(root: ast.AST, chain: List[str], line: int) -> bool:
        target = chain + ["close"]
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Call)
                and getattr(node, "lineno", line) < line
                and attribute_chain(node.func) == target
            ):
                return True
        return False
