"""RA005 — async purity: the event loop never blocks.

``repro.net`` runs one asyncio loop per process; every coroutine the
server, client, or load generator schedules shares it.  One blocking
call — a ``time.sleep``, a file read, an ``fsync``, a threading-lock
wait, a ``Future.result()``, or a direct (un-executored) ``ShardRouter``
operation — stalls *every* connection at once, which is how an index
build or WAL append on the accept path turns into a cluster-wide tail
spike.

The rule mirrors RA002's transitive shape: roots are the module- and
class-level ``async def`` coroutines of the registered ``repro.net``
modules, reachability follows the project call graph (so a sync helper
called inline from a coroutine is checked too), and transitive findings
name their async root (``(async via repro.net.server.NetServer
._serve_request)``).  Two deliberate blind spots match the runtime:

* nested **sync** ``def``s are skipped — closures handed to
  ``run_in_executor`` run off-loop by construction;
* nested **async** ``def``s are walked — a coroutine defined inside a
  coroutine (``fire``, ``worker``) still runs on the loop;
* *awaited* calls are exempt — ``await lock.acquire()`` or
  ``await loop.run_in_executor(...)`` yield instead of blocking.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding, Rule, register
from repro.analysis.locks import classify_lock
from repro.analysis.project import FunctionInfo, Project, attribute_chain

#: Module prefixes whose coroutines root the reachability walk.
DEFAULT_ASYNC_ROOT_MODULES: Tuple[str, ...] = ("repro.net",)

#: Blocking file-object / path methods (sync I/O on the loop).
FILE_IO_ATTRS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes", "fsync", "fdatasync"}
)

#: ShardRouter operations that must be routed through the executor.
ROUTER_METHODS = frozenset(
    {
        "get",
        "get_many",
        "put",
        "put_many",
        "delete",
        "scan",
        "checkpoint",
        "recover",
        "split_shard",
        "merge_shards",
        "stats",
    }
)

#: Constructors whose synchronous build the call graph cannot see into
#: (dynamic dispatch) but which do index builds, WAL opens, and fsyncs.
#: Registered explicitly, like the RA002 hot roots.
HEAVY_BUILDERS = frozenset(
    {"TenantDirectory", "ShardRouter", "ReplicatedShard", "DurableLog",
     "WriteAheadLog", "DurableShardRouter"}
)


def _module_in(prefixes: Sequence[str], module_name: str) -> bool:
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in prefixes
    )


@register
class AsyncPurityRule(Rule):
    """RA005: no blocking calls reachable from ``repro.net`` coroutines."""

    id = "RA005"
    title = "async purity"
    rationale = (
        "One blocking call on the event loop stalls every in-flight "
        "connection; index and WAL work reaches the loop only through "
        "run_in_executor (docs/networking.md)."
    )

    def __init__(
        self, root_modules: Sequence[str] = DEFAULT_ASYNC_ROOT_MODULES
    ) -> None:
        self._root_modules = tuple(root_modules)

    def async_roots(self, project: Project) -> List[str]:
        """Qualnames of every indexed coroutine in the root modules."""
        return sorted(
            info.qualname
            for info in project.functions.values()
            if isinstance(info.node, ast.AsyncFunctionDef)
            and _module_in(self._root_modules, info.module_name)
        )

    def run(self, project: Project) -> Iterator[Finding]:
        reached = project.reachable_from(self.async_roots(project))
        for qualname in sorted(reached):
            info = project.functions[qualname]
            yield from self._check_function(project, info, reached[qualname])

    # -- one function ----------------------------------------------------
    def _check_function(
        self, project: Project, info: FunctionInfo, root: str
    ) -> Iterator[Finding]:
        origin = f" (async via {root})" if root != info.qualname else ""
        imports = project.imports[info.module_name]

        def emit(node: ast.AST, label: str) -> Finding:
            return self.finding(
                info.module,
                node,
                f"{label} in coroutine-reachable {info.local_name}{origin}; "
                "the event loop must never block — hand the work to the "
                "executor",
                symbol=info.qualname,
            )

        def walk(node: ast.AST) -> Iterator[Finding]:
            if isinstance(node, ast.FunctionDef) and node is not info.node:
                return  # sync closure: runs on the executor, off-loop
            if isinstance(node, ast.Await):
                # The awaited call yields; still check its arguments.
                value = node.value
                children = value.args + value.keywords if isinstance(
                    value, ast.Call
                ) else [value]
                for child in children:
                    yield from walk(child)
                return
            if isinstance(node, ast.With):
                for item in node.items:
                    lock = classify_lock(item.context_expr)
                    if lock is not None:
                        yield emit(
                            item.context_expr,
                            f"sync `with {lock.receiver}.{lock.kind}` "
                            "(thread-lock wait)",
                        )
            if isinstance(node, ast.Call):
                label = self._blocking_label(imports.modules, imports.symbols, node)
                if label is not None:
                    yield emit(node, label)
            for child in ast.iter_child_nodes(node):
                yield from walk(child)

        yield from walk(info.node)

    def _blocking_label(
        self,
        module_aliases: Dict[str, str],
        symbol_aliases: Dict[str, str],
        call: ast.Call,
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "blocking open()"
            if symbol_aliases.get(func.id) == "time.sleep":
                return "blocking time.sleep()"
            if func.id in HEAVY_BUILDERS:
                return (
                    f"synchronous {func.id}() build (index/WAL construction "
                    "runs under the constructor)"
                )
            return None
        chain = attribute_chain(func)
        if chain is None or len(chain) < 2:
            return None
        receiver, attr = chain[:-1], chain[-1]
        root_module = module_aliases.get(chain[0], "")
        if attr == "sleep" and root_module == "time":
            return "blocking time.sleep()"
        if attr in ("fsync", "fdatasync") and root_module == "os":
            return f"blocking os.{attr}()"
        if attr in FILE_IO_ATTRS:
            return f"blocking file I/O {'.'.join(chain)}()"
        if attr == "open" and root_module != "":
            return f"blocking {'.'.join(chain)}()"
        if attr == "acquire":
            return f"blocking {'.'.join(chain)}() (lock wait)"
        if attr == "result":
            return f"blocking {'.'.join(chain)}() (Future.result)"
        if attr in ROUTER_METHODS and "router" in receiver[-1].lower():
            return (
                f"direct ShardRouter call {'.'.join(chain)}() "
                "not routed through the executor"
            )
        return None
