"""Built-in rules; importing this package registers them all."""

from repro.analysis.rules.ra001_locks import LockDisciplineRule
from repro.analysis.rules.ra002_hotpath import HotPathPurityRule
from repro.analysis.rules.ra003_migration import MigrationDisciplineRule
from repro.analysis.rules.ra004_telemetry import TelemetryHygieneRule

__all__ = [
    "LockDisciplineRule",
    "HotPathPurityRule",
    "MigrationDisciplineRule",
    "TelemetryHygieneRule",
]
