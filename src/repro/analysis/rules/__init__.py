"""Built-in rules; importing this package registers them all."""

from repro.analysis.rules.ra001_locks import LockDisciplineRule
from repro.analysis.rules.ra002_hotpath import HotPathPurityRule
from repro.analysis.rules.ra003_migration import MigrationDisciplineRule
from repro.analysis.rules.ra004_telemetry import TelemetryHygieneRule
from repro.analysis.rules.ra005_async import AsyncPurityRule
from repro.analysis.rules.ra006_lockgraph import LockOrderGraphRule
from repro.analysis.rules.ra007_handles import HandleLifecycleRule
from repro.analysis.rules.ra008_walfence import WalFenceRule

__all__ = [
    "LockDisciplineRule",
    "HotPathPurityRule",
    "MigrationDisciplineRule",
    "TelemetryHygieneRule",
    "AsyncPurityRule",
    "LockOrderGraphRule",
    "HandleLifecycleRule",
    "WalFenceRule",
]
