"""RA001 — service lock discipline.

``repro.service`` has exactly one sanctioned locking protocol, written
down in ``docs/service.md`` and enforced here mechanically:

1. **Acquisition order** — ``_admin_lock`` before any ``write_gate``
   before any ``op_lock``/``_guard()``; private leaf locks
   (``_executor_lock``, ``_inflight_lock``, ``_ops_lock``) innermost.
   Lexically acquiring a lower-rank lock while a higher-rank lock is
   held inverts the hierarchy and is a deadlock in waiting.
2. **No blocking while holding a lock** — submitting to or waiting on
   the executor (``submit``/``wait``/``result``/``shutdown``/``sleep``,
   or the router helpers ``_pool``/``_run_per_shard``) under any
   service lock stalls every writer behind the holder.
3. **Snapshot reads** — code that routes (indexes ``.shards[...]`` or
   calls ``.partitioner.shard_of``) must do so on a *captured* routing
   table (``table = self._table``), never inline on ``self._table``:
   two inline reads can interleave with a concurrent split/merge swap
   and tear the snapshot.
4. **Gated-write revalidation** — a write forwarded to a shard under
   its ``write_gate`` must re-read ``self._table`` inside the gated
   block and confirm the route.  The PR-4 lost-write race happened
   because a writer woke up after a table swap and wrote into an
   orphaned shard; the revalidation block is what closes it, so its
   absence is reported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding, Rule, register
from repro.analysis.loader import ParsedModule
from repro.analysis.project import FunctionInfo, Project, attribute_chain

#: Lock rank by attribute name: outermost (0) to innermost (3).
LOCK_RANKS: Dict[str, int] = {
    "_admin_lock": 0,
    "write_gate": 1,
    "op_lock": 2,
    "_guard": 2,
    "_executor_lock": 3,
    "_inflight_lock": 3,
    "_ops_lock": 3,
}

#: Callables that block (or enqueue work) and must not run under a lock.
BLOCKING_ATTRS = frozenset({"submit", "shutdown", "result", "map"})
BLOCKING_NAMES = frozenset({"wait", "sleep"})
BLOCKING_HELPERS = frozenset({"_pool", "_run_per_shard"})

#: Shard write methods that require in-gate route revalidation.
SHARD_WRITE_METHODS = frozenset({"put", "put_many", "delete", "insert", "insert_many"})

DEFAULT_SCOPE: Tuple[str, ...] = ("repro.service", "repro.service.*")


@dataclass(frozen=True)
class _Lock:
    """One lexically held lock: its rank and rendered receiver."""

    rank: int
    kind: str
    receiver: str


def _lock_of(expr: ast.expr) -> Optional[_Lock]:
    """Classify a ``with`` context expression as a known lock, if it is one."""
    target = expr
    if isinstance(target, ast.Call):
        target = target.func
    chain = attribute_chain(target)
    if chain is None or len(chain) < 2:
        return None
    kind = chain[-1]
    rank = LOCK_RANKS.get(kind)
    if rank is None:
        return None
    return _Lock(rank=rank, kind=kind, receiver=".".join(chain[:-1]))


def _reads_routing_table(node: ast.AST) -> bool:
    """True when ``node`` contains a ``self._table`` read."""
    for child in ast.walk(node):
        chain = attribute_chain(child)
        if chain is not None and chain[:2] == ["self", "_table"]:
            return True
    return False


@register
class LockDisciplineRule(Rule):
    """RA001: the ``repro.service`` locking protocol, checked lexically."""

    id = "RA001"
    title = "service lock discipline"
    rationale = (
        "Lock order, no blocking under locks, snapshot reads, and gated-write "
        "revalidation are the invariants behind the PR-4 lost-write fix; "
        "eyeball review already missed one of them once."
    )

    def __init__(self, modules: Sequence[str] = DEFAULT_SCOPE) -> None:
        self._scope = tuple(modules)

    def _in_scope(self, module: ParsedModule) -> bool:
        return any(fnmatchcase(module.name, pattern) for pattern in self._scope)

    def run(self, project: Project) -> Iterator[Finding]:
        for info in project.functions.values():
            if not self._in_scope(info.module):
                continue
            yield from self._check_function(info)
            yield from self._check_snapshot_reads(info)

    # -- checks 1, 2, and 4: a lexical walk tracking held locks ---------
    def _check_function(self, info: FunctionInfo) -> Iterator[Finding]:
        held: List[_Lock] = []

        def walk_statements(statements: Sequence[ast.stmt]) -> Iterator[Finding]:
            for statement in statements:
                yield from walk(statement)

        def walk(node: ast.AST) -> Iterator[Finding]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not info.node:
                return  # nested defs run later, under their caller's locks
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired: List[_Lock] = []
                for item in node.items:
                    lock = _lock_of(item.context_expr)
                    if lock is None:
                        continue
                    deeper = [h for h in held if h.rank > lock.rank]
                    if deeper:
                        yield self.finding(
                            info.module,
                            item.context_expr,
                            f"lock order violation: acquiring {lock.kind} of "
                            f"{lock.receiver!r} while holding {deeper[0].kind} of "
                            f"{deeper[0].receiver!r} (order: _admin_lock -> "
                            "write_gate -> op_lock -> leaf locks)",
                            symbol=info.qualname,
                        )
                    acquired.append(lock)
                    held.append(lock)
                yield from self._check_gated_writes(info, node, acquired)
                yield from walk_statements(node.body)
                for _ in acquired:
                    held.pop()
                return
            if isinstance(node, ast.Call) and held:
                yield from self._check_blocking(info, node, held)
            for child in ast.iter_child_nodes(node):
                yield from walk(child)

        yield from walk_statements(info.node.body)

    def _check_blocking(
        self, info: FunctionInfo, call: ast.Call, held: Sequence[_Lock]
    ) -> Iterator[Finding]:
        func = call.func
        name: Optional[str] = None
        if isinstance(func, ast.Attribute):
            if func.attr in BLOCKING_ATTRS | BLOCKING_HELPERS | BLOCKING_NAMES:
                name = func.attr
        elif isinstance(func, ast.Name) and func.id in BLOCKING_NAMES | BLOCKING_HELPERS:
            name = func.id
        if name is None:
            return
        holder = held[-1]
        yield self.finding(
            info.module,
            call,
            f"blocking call {name}() while holding {holder.kind} of "
            f"{holder.receiver!r}; hand work to the executor before taking "
            "service locks",
            symbol=info.qualname,
        )

    def _check_gated_writes(
        self, info: FunctionInfo, node: ast.With | ast.AsyncWith, acquired: Sequence[_Lock]
    ) -> Iterator[Finding]:
        gates = [lock for lock in acquired if lock.kind == "write_gate" and lock.receiver != "self"]
        if not gates:
            return
        body = ast.Module(body=list(node.body), type_ignores=[])
        revalidates = _reads_routing_table(body)
        for child in ast.walk(body):
            if not isinstance(child, ast.Call):
                continue
            chain = attribute_chain(child.func)
            if chain is None or len(chain) < 2 or chain[-1] not in SHARD_WRITE_METHODS:
                continue
            receiver = ".".join(chain[:-1])
            if receiver not in {gate.receiver for gate in gates}:
                continue
            if not revalidates:
                yield self.finding(
                    info.module,
                    child,
                    f"write {chain[-1]}() on {receiver!r} under its write_gate "
                    "without re-reading self._table inside the gated block; a "
                    "concurrent split/merge may have swapped the table while "
                    "this writer waited (lost-write race)",
                    symbol=info.qualname,
                )

    # -- check 3: snapshot reads ----------------------------------------
    def _check_snapshot_reads(self, info: FunctionInfo) -> Iterator[Finding]:
        for node in ast.walk(info.node):
            if isinstance(node, ast.Subscript):
                chain = attribute_chain(node.value)
                if chain is not None and chain[:2] == ["self", "_table"]:
                    yield self.finding(
                        info.module,
                        node,
                        "indexing into an uncaptured routing-table read "
                        f"({'.'.join(chain)}[...]); capture `table = self._table` "
                        "once and index the snapshot",
                        symbol=info.qualname,
                    )
            elif isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if (
                    chain is not None
                    and chain[:2] == ["self", "_table"]
                    and chain[-1] == "shard_of"
                ):
                    yield self.finding(
                        info.module,
                        node,
                        "routing through an uncaptured table read "
                        f"({'.'.join(chain)}(...)); capture `table = self._table` "
                        "and route through the snapshot",
                        symbol=info.qualname,
                    )
