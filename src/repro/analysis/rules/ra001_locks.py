"""RA001 — service lock discipline.

``repro.service`` has exactly one sanctioned locking protocol, written
down in ``docs/service.md`` and enforced here mechanically:

1. **No blocking while holding a lock** — submitting to or waiting on
   the executor (``submit``/``wait``/``result``/``shutdown``/``sleep``,
   or the router helpers ``_pool``/``_run_per_shard``) under any
   service lock stalls every writer behind the holder.
2. **Snapshot reads** — code that routes (indexes ``.shards[...]`` or
   calls ``.partitioner.shard_of``) must do so on a *captured* routing
   table (``table = self._table``), never inline on ``self._table``:
   two inline reads can interleave with a concurrent split/merge swap
   and tear the snapshot.
3. **Gated-write revalidation** — a write forwarded to a shard under
   its ``write_gate`` must re-read ``self._table`` inside the gated
   block and confirm the route.  The PR-4 lost-write race happened
   because a writer woke up after a table swap and wrote into an
   orphaned shard; the revalidation block is what closes it, so its
   absence is reported.

The *acquisition-order* check that used to live here moved to RA006,
which derives the lock-order graph from observed nesting sites instead
of a hand-written rank (see
:mod:`repro.analysis.rules.ra006_lockgraph`).
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding, Rule, register
from repro.analysis.loader import ParsedModule
from repro.analysis.locks import LockUse, classify_lock, is_service_lock
from repro.analysis.project import FunctionInfo, Project, attribute_chain

#: Callables that block (or enqueue work) and must not run under a lock.
BLOCKING_ATTRS = frozenset({"submit", "shutdown", "result", "map"})
BLOCKING_NAMES = frozenset({"wait", "sleep"})
BLOCKING_HELPERS = frozenset({"_pool", "_run_per_shard"})

#: Shard write methods that require in-gate route revalidation.
SHARD_WRITE_METHODS = frozenset({"put", "put_many", "delete", "insert", "insert_many"})

DEFAULT_SCOPE: Tuple[str, ...] = ("repro.service", "repro.service.*")


def _reads_routing_table(node: ast.AST) -> bool:
    """True when ``node`` contains a ``self._table`` read."""
    for child in ast.walk(node):
        chain = attribute_chain(child)
        if chain is not None and chain[:2] == ["self", "_table"]:
            return True
    return False


@register
class LockDisciplineRule(Rule):
    """RA001: the ``repro.service`` locking protocol, checked lexically."""

    id = "RA001"
    title = "service lock discipline"
    rationale = (
        "Lock order, no blocking under locks, snapshot reads, and gated-write "
        "revalidation are the invariants behind the PR-4 lost-write fix; "
        "eyeball review already missed one of them once."
    )

    def __init__(self, modules: Sequence[str] = DEFAULT_SCOPE) -> None:
        self._scope = tuple(modules)

    def _in_scope(self, module: ParsedModule) -> bool:
        return any(fnmatchcase(module.name, pattern) for pattern in self._scope)

    def run(self, project: Project) -> Iterator[Finding]:
        for info in project.functions.values():
            if not self._in_scope(info.module):
                continue
            yield from self._check_function(info)
            yield from self._check_snapshot_reads(info)

    # -- checks 1 and 3: a lexical walk tracking held locks -------------
    def _check_function(self, info: FunctionInfo) -> Iterator[Finding]:
        held: List[LockUse] = []

        def walk_statements(statements: Sequence[ast.stmt]) -> Iterator[Finding]:
            for statement in statements:
                yield from walk(statement)

        def walk(node: ast.AST) -> Iterator[Finding]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not info.node:
                return  # nested defs run later, under their caller's locks
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired: List[LockUse] = []
                for item in node.items:
                    lock = classify_lock(item.context_expr)
                    if lock is None or not is_service_lock(lock):
                        continue
                    acquired.append(lock)
                    held.append(lock)
                yield from self._check_gated_writes(info, node, acquired)
                yield from walk_statements(node.body)
                for _ in acquired:
                    held.pop()
                return
            if isinstance(node, ast.Call) and held:
                yield from self._check_blocking(info, node, held)
            for child in ast.iter_child_nodes(node):
                yield from walk(child)

        yield from walk_statements(info.node.body)

    def _check_blocking(
        self, info: FunctionInfo, call: ast.Call, held: Sequence[LockUse]
    ) -> Iterator[Finding]:
        func = call.func
        name: Optional[str] = None
        if isinstance(func, ast.Attribute):
            if func.attr in BLOCKING_ATTRS | BLOCKING_HELPERS | BLOCKING_NAMES:
                name = func.attr
        elif isinstance(func, ast.Name) and func.id in BLOCKING_NAMES | BLOCKING_HELPERS:
            name = func.id
        if name is None:
            return
        holder = held[-1]
        yield self.finding(
            info.module,
            call,
            f"blocking call {name}() while holding {holder.kind} of "
            f"{holder.receiver!r}; hand work to the executor before taking "
            "service locks",
            symbol=info.qualname,
        )

    def _check_gated_writes(
        self, info: FunctionInfo, node: ast.With | ast.AsyncWith, acquired: Sequence[LockUse]
    ) -> Iterator[Finding]:
        gates = [lock for lock in acquired if lock.kind == "write_gate" and lock.receiver != "self"]
        if not gates:
            return
        body = ast.Module(body=list(node.body), type_ignores=[])
        revalidates = _reads_routing_table(body)
        for child in ast.walk(body):
            if not isinstance(child, ast.Call):
                continue
            chain = attribute_chain(child.func)
            if chain is None or len(chain) < 2 or chain[-1] not in SHARD_WRITE_METHODS:
                continue
            receiver = ".".join(chain[:-1])
            if receiver not in {gate.receiver for gate in gates}:
                continue
            if not revalidates:
                yield self.finding(
                    info.module,
                    child,
                    f"write {chain[-1]}() on {receiver!r} under its write_gate "
                    "without re-reading self._table inside the gated block; a "
                    "concurrent split/merge may have swapped the table while "
                    "this writer waited (lost-write race)",
                    symbol=info.qualname,
                )

    # -- check 2: snapshot reads ----------------------------------------
    def _check_snapshot_reads(self, info: FunctionInfo) -> Iterator[Finding]:
        for node in ast.walk(info.node):
            if isinstance(node, ast.Subscript):
                chain = attribute_chain(node.value)
                if chain is not None and chain[:2] == ["self", "_table"]:
                    yield self.finding(
                        info.module,
                        node,
                        "indexing into an uncaptured routing-table read "
                        f"({'.'.join(chain)}[...]); capture `table = self._table` "
                        "once and index the snapshot",
                        symbol=info.qualname,
                    )
            elif isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if (
                    chain is not None
                    and chain[:2] == ["self", "_table"]
                    and chain[-1] == "shard_of"
                ):
                    yield self.finding(
                        info.module,
                        node,
                        "routing through an uncaptured table read "
                        f"({'.'.join(chain)}(...)); capture `table = self._table` "
                        "and route through the snapshot",
                        symbol=info.qualname,
                    )
