"""RA002 — hot-path purity.

The PR-3 observability contract promises "no wall-clock in hot paths":
per-operation code is timed by logical sequence counters and modeled
costs only, and must not hide I/O or swallow errors.  This rule walks
the call graph from the registered hot roots (see
:mod:`repro.analysis.hotpaths`) and reports, in every reached function:

* wall-clock reads — ``time.time``/``monotonic``/``perf_counter``/…
  and ``datetime.now``/``utcnow``/``today``;
* console or log I/O — ``print(...)`` and ``logging``/logger calls;
* broad exception handlers — ``except:``, ``except Exception``,
  ``except BaseException`` — unless the handler re-raises (a bare
  ``raise``), which is the sanctioned cleanup-and-propagate shape.

Deliberate containment sites (e.g. a failed eager expansion being an
optimization miss, not an error) stay allowed via an inline
``# repro: ignore[RA002] -- <why>`` suppression.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.analysis.core import Finding, Rule, register
from repro.analysis.hotpaths import DEFAULT_HOT_ROOTS, HotRoot, hot_root_qualnames
from repro.analysis.project import FunctionInfo, Project, attribute_chain

WALL_CLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
    }
)
WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
LOG_METHODS = frozenset(
    {"debug", "info", "warning", "warn", "error", "exception", "critical", "log"}
)
BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


def _is_broad(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True
    names = []
    if isinstance(kind, ast.Tuple):
        names = [e.id for e in kind.elts if isinstance(e, ast.Name)]
    elif isinstance(kind, ast.Name):
        names = [kind.id]
    return any(name in BROAD_EXCEPTIONS for name in names)


@register
class HotPathPurityRule(Rule):
    """RA002: wall-clock, I/O, and broad excepts out of hot paths."""

    id = "RA002"
    title = "hot-path purity"
    rationale = (
        "Hot paths are measured in modeled costs and logical sequence; a "
        "stray wall-clock read, log line, or swallowed exception skews every "
        "benchmark and hides real faults (docs/observability.md)."
    )

    def __init__(self, roots: Sequence[HotRoot] = DEFAULT_HOT_ROOTS) -> None:
        self._roots = tuple(roots)

    def run(self, project: Project) -> Iterator[Finding]:
        root_names = hot_root_qualnames(project, self._roots)
        reached = project.reachable_from(root_names)
        for qualname in sorted(reached):
            info = project.functions[qualname]
            yield from self._check_function(project, info, reached[qualname])

    def _check_function(
        self, project: Project, info: FunctionInfo, root: str
    ) -> Iterator[Finding]:
        origin = f" (hot via {root})" if root != info.qualname else ""
        imports = project.imports[info.module_name]
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                label = self._forbidden_call(imports.modules, imports.symbols, node)
                if label is not None:
                    yield self.finding(
                        info.module,
                        node,
                        f"{label} in hot-path function {info.local_name}{origin}; "
                        "hot paths must stay wall-clock- and I/O-free",
                        symbol=info.qualname,
                    )
            elif (
                isinstance(node, ast.ExceptHandler)
                and _is_broad(node)
                and not _handler_reraises(node)
            ):
                rendered = "bare except" if node.type is None else ast.unparse(node.type)
                yield self.finding(
                    info.module,
                    node,
                    f"broad exception handler ({rendered}) in hot-path "
                    f"function {info.local_name}{origin} does not re-raise; "
                    "catch the specific error or propagate",
                    symbol=info.qualname,
                )

    def _forbidden_call(
        self,
        module_aliases: Dict[str, str],
        symbol_aliases: Dict[str, str],
        call: ast.Call,
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "print":
                return "print()"
            target = symbol_aliases.get(func.id, "")
            if target.startswith("time.") and target.split(".", 1)[1] in WALL_CLOCK_TIME_ATTRS:
                return f"wall-clock read {target}()"
            if target.startswith("datetime.") and func.id in WALL_CLOCK_DATETIME_ATTRS:
                return f"wall-clock read {target}()"
            return None
        chain = attribute_chain(func)
        if chain is None or len(chain) < 2:
            return None
        root, attr = chain[0], chain[-1]
        root_module = module_aliases.get(root, "")
        if root_module == "time" and attr in WALL_CLOCK_TIME_ATTRS:
            return f"wall-clock read time.{attr}()"
        if attr in WALL_CLOCK_DATETIME_ATTRS and (
            root_module == "datetime" or "datetime" in chain[:-1]
        ):
            return f"wall-clock read {'.'.join(chain)}()"
        if root == "logging" or (attr in LOG_METHODS and "log" in root.lower()):
            return f"log call {'.'.join(chain)}()"
        return None


__all__: Tuple[str, ...] = ("HotPathPurityRule",)
