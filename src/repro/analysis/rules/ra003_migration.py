"""RA003 — build-aside + swap migration discipline.

Every structural migration since PR 1 (leaf re-encode, trie
expand/compact, dual-stage merge, service split/merge) follows one
shape: read the live structure, **build the replacement off to the
side**, and publish it with a single swap — with ``fault_point(...)``
injection sites threaded through so the fault campaigns can prove that
a failure anywhere before the swap changes nothing.

This rule finds migration functions *by that marker*: any function
calling ``fault_point`` with a label ending in ``.swap`` is treated as
a build-aside migration, and inside it:

* no statement **before the swap point** may mutate state reachable
  from ``self`` or a parameter (assignments, augmented assignments, or
  mutating method calls like ``append``/``update``/``set_child``) —
  published structures must stay untouched until the swap.  Monotonic
  instrumentation is exempt: chains through a ``counters`` attribute
  are never rollback state;
* every ``fault_point`` label must be a string literal (the fault
  campaigns enumerate sites by grepping literals);
* no ``fault_point`` may appear **after the publish** (the first
  ``self``/parameter assignment following the swap point) — past the
  publish there is nothing left to roll back, so a fault site there is
  outside the build-aside region by construction.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding, Rule, register
from repro.analysis.project import FunctionInfo, Project, attribute_chain

MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "add",
        "discard",
        "sort",
        "setdefault",
        "set_child",
    }
)

#: Attribute chains through these names are instrumentation, not state.
INSTRUMENTATION_SEGMENTS = frozenset({"counters"})

_Position = Tuple[int, int]


def _position(node: ast.AST) -> _Position:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def _fault_label(call: ast.Call) -> Optional[ast.expr]:
    """The label argument when ``call`` is a ``fault_point(...)`` call."""
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name != "fault_point" or not call.args:
        return None
    return call.args[0]


def _chain_root(node: ast.AST) -> Optional[List[str]]:
    """The name chain of an assignment target / call receiver."""
    current = node
    while isinstance(current, ast.Subscript):
        current = current.value
    return attribute_chain(current)


@register
class MigrationDisciplineRule(Rule):
    """RA003: published state stays untouched until the swap point."""

    id = "RA003"
    title = "migration discipline"
    rationale = (
        "A migration that mutates the published structure before its swap "
        "point cannot be rolled back by the fault injector; the zero-lost-keys "
        "guarantee of docs/robustness.md rests on build-aside purity."
    )

    def run(self, project: Project) -> Iterator[Finding]:
        for info in project.functions.values():
            yield from self._check_function(info)

    def _check_function(self, info: FunctionInfo) -> Iterator[Finding]:
        faults: List[Tuple[ast.Call, Optional[str]]] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                label = _fault_label(node)
                if label is not None:
                    literal = label.value if (
                        isinstance(label, ast.Constant) and isinstance(label.value, str)
                    ) else None
                    if literal is None:
                        yield self.finding(
                            info.module,
                            node,
                            "fault_point label must be a string literal (fault "
                            "campaigns enumerate sites lexically)",
                            symbol=info.qualname,
                        )
                    faults.append((node, literal))
        swap_calls = [call for call, label in faults if label and label.endswith(".swap")]
        if not swap_calls:
            return
        swap_at = min(_position(call) for call in swap_calls)
        params = self._parameter_names(info)
        publish_at = self._publish_position(info, swap_at, params)
        for node in ast.walk(info.node):
            position = _position(node)
            if position < swap_at:
                yield from self._check_mutation(info, node, params)
            elif (
                publish_at is not None
                and position > publish_at
                and isinstance(node, ast.Call)
                and _fault_label(node) is not None
            ):
                yield self.finding(
                    info.module,
                    node,
                    "fault_point after the publish assignment is outside the "
                    "build-aside region; nothing can roll back past the swap",
                    symbol=info.qualname,
                )

    @staticmethod
    def _parameter_names(info: FunctionInfo) -> Set[str]:
        args = info.node.args
        names = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
        names.discard("self")
        names.discard("cls")
        return names

    def _published_chain(self, node: ast.AST, params: Set[str]) -> Optional[List[str]]:
        chain = _chain_root(node)
        if chain is None or len(chain) < 2:
            return None
        if chain[0] != "self" and chain[0] not in params:
            return None
        if any(segment in INSTRUMENTATION_SEGMENTS for segment in chain):
            return None
        return chain

    def _check_mutation(
        self, info: FunctionInfo, node: ast.AST, params: Set[str]
    ) -> Iterator[Finding]:
        targets: Sequence[ast.expr] = ()
        verb = ""
        if isinstance(node, ast.Assign):
            targets, verb = node.targets, "assignment to"
        elif isinstance(node, (ast.AugAssign, ast.Delete)):
            targets = node.targets if isinstance(node, ast.Delete) else [node.target]
            verb = "mutation of"
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATING_METHODS:
                chain = self._published_chain(node.func.value, params)
                if chain is not None:
                    yield self.finding(
                        info.module,
                        node,
                        f"in-place {node.func.attr}() on published "
                        f"{'.'.join(chain)} before the swap point; build the "
                        "replacement aside and publish it with the swap",
                        symbol=info.qualname,
                    )
            return
        for target in targets:
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                continue
            chain = self._published_chain(target, params)
            if chain is not None:
                yield self.finding(
                    info.module,
                    node,
                    f"{verb} published {'.'.join(chain)} before the swap point; "
                    "published structures must stay untouched until the swap",
                    symbol=info.qualname,
                )

    def _publish_position(
        self, info: FunctionInfo, swap_at: _Position, params: Set[str]
    ) -> Optional[_Position]:
        publishes: List[_Position] = []
        for node in ast.walk(info.node):
            if _position(node) <= swap_at:
                continue
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ) and self._published_chain(target, params) is not None:
                        publishes.append(_position(node))
        return min(publishes) if publishes else None
