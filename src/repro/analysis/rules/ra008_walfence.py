"""RA008 — WAL-fence discipline: fence on failure, never ack first.

The PR-6 review established the append invariant this rule now
enforces mechanically.  A WAL append that fails part-way may leave
garbage mid-file; because replay stops at the first bad frame, any
*later* acknowledged append would land after the garbage where replay
cannot reach it — an acked-then-lost write.  So, in every function
that appends to a WAL (``append_batch``/``append_put``/
``append_put_many``/``append_delete``, or a raw ``*handle.write``
inside an ``append*`` function):

* **no ack before the durable append** — applying to the index
  (``self.index.insert/...``) or completing a future
  (``set_result``) lexically before the first append call
  acknowledges a write that is not yet durable;
* **raw handle writes fence on failure** — a raw ``*handle.write``
  must sit under a ``try`` whose handler calls a fence
  (``_poison``/``seal``/``mark_down``/``fence``) — or, when the write
  itself is failure-path cleanup inside a handler, the fence must
  precede it there.  Re-raising alone is *not* enough: without the
  poison fence the next append acks on top of the garbage;
* **no swallowed append failures** — an ``except`` handler around an
  append call must fence or re-raise; catching and continuing turns a
  failed append into a silent ack.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding, Rule, register
from repro.analysis.loader import ParsedModule
from repro.analysis.project import FunctionInfo, Project, attribute_chain

DEFAULT_SCOPE: Tuple[str, ...] = (
    "repro.service",
    "repro.service.*",
    "repro.durability",
    "repro.durability.*",
    "repro.replication",
    "repro.replication.*",
    "repro.net",
    "repro.net.*",
)

#: Calls that durably append to a WAL.
APPEND_METHODS = frozenset(
    {"append_batch", "append_put", "append_put_many", "append_delete", "append_record"}
)

#: Calls that acknowledge a write to a caller or apply it to the index.
ACK_INDEX_METHODS = frozenset({"insert", "insert_many", "delete", "remove", "apply"})

#: Methods that fence a failed log/replica off.
FENCE_METHODS = frozenset({"_poison", "poison", "seal", "fence", "_fence", "mark_down"})

_Position = Tuple[int, int]


def _position(node: ast.AST) -> _Position:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def _is_append_call(node: ast.Call) -> bool:
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    return name in APPEND_METHODS


def _is_raw_handle_write(node: ast.Call) -> bool:
    chain = attribute_chain(node.func)
    return (
        chain is not None
        and len(chain) >= 2
        and chain[-1] == "write"
        and "handle" in chain[-2].lower()
    )


def _is_ack_call(node: ast.Call) -> Optional[str]:
    chain = attribute_chain(node.func)
    if chain is None or len(chain) < 2:
        return None
    if chain[-1] == "set_result":
        return f"{'.'.join(chain)}() (completing the caller's future)"
    if chain[-1] in ACK_INDEX_METHODS and any(
        "index" in segment.lower() for segment in chain[:-1]
    ):
        return f"{'.'.join(chain)}() (applying to the live index)"
    return None


def _calls_fence(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name in FENCE_METHODS:
                return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(sub, ast.Raise) for sub in ast.walk(handler))


@register
class WalFenceRule(Rule):
    """RA008: append failures fence; acks never precede durability."""

    id = "RA008"
    title = "WAL-fence discipline"
    rationale = (
        "An append failure that is not fenced lets the next acknowledged "
        "append land beyond unreachable garbage — the acked-then-lost shape "
        "the PR-6 poisoning fence exists to kill (docs/durability.md)."
    )

    def __init__(self, modules: Sequence[str] = DEFAULT_SCOPE) -> None:
        self._scope = tuple(modules)

    def _in_scope(self, module: ParsedModule) -> bool:
        return any(fnmatchcase(module.name, pattern) for pattern in self._scope)

    def run(self, project: Project) -> Iterator[Finding]:
        for info in sorted(project.functions.values(), key=lambda i: i.qualname):
            if not self._in_scope(info.module):
                continue
            yield from self._check_function(info)

    def _check_function(self, info: FunctionInfo) -> Iterator[Finding]:
        appends: List[ast.Call] = []
        raw_writes: List[ast.Call] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                if _is_append_call(node):
                    appends.append(node)
                elif _is_raw_handle_write(node):
                    raw_writes.append(node)
        if "append" in info.name:
            appends = appends + raw_writes
        if not appends:
            return
        first_append = min(_position(call) for call in appends)
        yield from self._check_ack_order(info, first_append)
        yield from self._check_swallowed_failures(info)
        if "append" in info.name:
            yield from self._check_raw_write_fencing(info, raw_writes)

    # -- check 1: no ack before the durable append -----------------------
    def _check_ack_order(
        self, info: FunctionInfo, first_append: _Position
    ) -> Iterator[Finding]:
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call) or _position(node) >= first_append:
                continue
            label = _is_ack_call(node)
            if label is not None:
                yield self.finding(
                    info.module,
                    node,
                    f"{label} before the durable WAL append in "
                    f"{info.local_name}; a crash between them acknowledges "
                    "a write the log never saw — append first, then apply",
                    symbol=info.qualname,
                )

    # -- check 2: swallowed append failures ------------------------------
    def _check_swallowed_failures(self, info: FunctionInfo) -> Iterator[Finding]:
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Try):
                continue
            body_appends = any(
                isinstance(sub, ast.Call) and (_is_append_call(sub) or _is_raw_handle_write(sub))
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
            if not body_appends:
                continue
            for handler in node.handlers:
                if _reraises(handler) or _calls_fence(handler):
                    continue
                yield self.finding(
                    info.module,
                    handler,
                    f"append failure swallowed in {info.local_name}: this "
                    "handler neither fences the log (_poison/seal/"
                    "mark_down) nor re-raises, so the caller acks a write "
                    "that may sit after unreachable garbage",
                    symbol=info.qualname,
                )

    # -- check 3: raw handle writes fence on failure ---------------------
    def _check_raw_write_fencing(
        self, info: FunctionInfo, raw_writes: Sequence[ast.Call]
    ) -> Iterator[Finding]:
        guarded: set[int] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Try):
                fenced = any(_calls_fence(handler) for handler in node.handlers)
                if fenced:
                    for stmt in node.body:
                        for sub in ast.walk(stmt):
                            guarded.add(id(sub))
            elif isinstance(node, ast.ExceptHandler):
                # Failure-path cleanup: a fence call lexically before the
                # write inside the same handler also guards it.
                fences = [
                    sub
                    for stmt in node.body
                    for sub in ast.walk(stmt)
                    if isinstance(sub, ast.Call) and _calls_fence(sub)
                ]
                if not fences:
                    continue
                fence_at = min(_position(fence) for fence in fences)
                for stmt in node.body:
                    for sub in ast.walk(stmt):
                        if _position(sub) >= fence_at:
                            guarded.add(id(sub))
        for write in raw_writes:
            if id(write) not in guarded:
                yield self.finding(
                    info.module,
                    write,
                    f"raw WAL write in {info.local_name} has no fence on its "
                    "failure path; wrap it in a try whose handler poisons "
                    "the log before propagating (re-raising alone leaves "
                    "the next append to ack over garbage)",
                    symbol=info.qualname,
                )
