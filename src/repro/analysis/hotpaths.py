"""The hot-path root registry for the RA002 purity rule.

The call graph cannot see through dynamic dispatch (``self.index
.lookup(...)``, ``leaf.storage.lookup(...)``), so the per-operation hot
paths are *declared* here instead of inferred: every entry names a set
of functions that the PR-3 observability contract treats as wall-clock
free, and RA002 analyzes everything lexically reachable from them.

A :class:`HotRoot` pairs a dotted module prefix with an ``fnmatch``
pattern over the function's local qualified name (``Class.method`` or
``function``).  The defaults cover the four index families' read/write
entry points, the leaf probe/decode layer, the succinct primitives they
lean on, and the access sampler — extend the tuple (or pass custom
roots to :class:`~repro.analysis.rules.ra002_hotpath
.HotPathPurityRule`) when a new family lands.  The registry is
documented in ``docs/static_analysis.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Iterable, List, Tuple

from repro.analysis.project import FunctionInfo, Project


@dataclass(frozen=True)
class HotRoot:
    """One registered hot-path entry point (or family of them)."""

    module_prefix: str
    pattern: str

    def matches(self, info: FunctionInfo) -> bool:
        module = info.module_name
        prefix = self.module_prefix
        if not (module == prefix or module.startswith(prefix + ".")):
            return False
        return fnmatchcase(info.local_name, self.pattern)


_FAMILY_PREFIXES: Tuple[str, ...] = (
    "repro.bptree",
    "repro.art",
    "repro.fst",
    "repro.hybridtrie",
    "repro.dualstage",
    "repro.hashmap",
)

#: The registered hot roots: reachability for RA002 starts here.
DEFAULT_HOT_ROOTS: Tuple[HotRoot, ...] = tuple(
    [
        HotRoot(prefix, pattern)
        for prefix in _FAMILY_PREFIXES
        for pattern in ("*lookup*", "*insert*")
    ]
    + [
        # Leaf probe / decode layer: reads that families dispatch to
        # dynamically (invisible to the call graph).
        HotRoot("repro.bptree.leaves", "*.probe*"),
        HotRoot("repro.bptree.leaves", "*.entries_from"),
        # Succinct primitives backing compressed probes.
        HotRoot("repro.succinct", "*.get"),
        HotRoot("repro.succinct", "*.rank*"),
        HotRoot("repro.succinct", "*.select*"),
        HotRoot("repro.succinct", "*decode*"),
        # The per-access sampler (Listing 1 of the paper).
        HotRoot("repro.core.sampling", "SkipSampler.is_sample"),
        HotRoot("repro.core.sampling", "SkipSampler.consume"),
    ]
)


def hot_root_qualnames(
    project: Project, roots: Iterable[HotRoot] = DEFAULT_HOT_ROOTS
) -> List[str]:
    """Qualnames of every project function a registered root matches."""
    root_list = list(roots)
    return sorted(
        info.qualname
        for info in project.functions.values()
        if any(root.matches(info) for root in root_list)
    )
