"""``repro.analysis`` — the repo's custom static-analysis suite.

An AST-based framework (loader, whole-program :class:`~repro.analysis
.project.Project` with a lightweight call graph, rule registry,
suppressions, text/JSON/SARIF reporters) plus four codebase-specific
checkers:

* **RA001** service lock discipline (order, no blocking under locks,
  snapshot reads, gated-write revalidation),
* **RA002** hot-path purity (no wall-clock/log/print/broad-except
  reachable from the registered hot roots),
* **RA003** build-aside+swap migration discipline,
* **RA004** telemetry naming hygiene (schema pattern, no f-string
  names).

Run it as ``python -m repro.analysis [paths]``; the rule catalogue and
suppression syntax live in ``docs/static_analysis.md``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from repro.analysis.core import (
    Finding,
    Rule,
    all_rule_ids,
    build_rules,
    run_rules,
)
from repro.analysis.loader import AnalysisError, ParsedModule, load_paths
from repro.analysis.project import Project

__all__ = [
    "AnalysisError",
    "Finding",
    "ParsedModule",
    "Project",
    "Rule",
    "all_rule_ids",
    "analyze_paths",
    "build_rules",
]


def analyze_paths(
    paths: Iterable[Path | str],
    rules: Optional[Iterable[Rule]] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Analyze ``paths`` and return ``(findings, suppressed_findings)``."""
    modules = load_paths([Path(path) for path in paths])
    project = Project(modules)
    rule_list = list(rules) if rules is not None else build_rules()
    return run_rules(project, rule_list)
