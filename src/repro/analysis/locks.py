"""Shared lock classification for the concurrency rules.

RA001 (service lock discipline), RA005 (async purity), and RA006 (the
derived lock-order graph) all need to answer the same question: *is
this ``with`` context expression a lock, and which lock is it?*  The
answer lives here once.

A lock *kind* is the attribute name that acquires it (``write_gate``,
``op_lock``, ``_guard``, ``_inflight_lock``, ...).  The service's named
kinds are listed explicitly; anything else ending in ``_lock`` or
``_gate`` is classified generically, which is how replica, WAL, and
connection locks added by later PRs enter the RA006 graph without a
registry edit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.project import attribute_chain

#: The service's documented lock hierarchy, outermost (0) to innermost
#: (3).  RA006 seeds its derived graph with edges along this order;
#: RA001's blocking-under-lock check treats exactly these as "service
#: locks".  The order itself is enforced by RA006, not by these ranks.
SERVICE_LOCK_RANKS: Dict[str, int] = {
    "_admin_lock": 0,
    "write_gate": 1,
    "op_lock": 2,
    "_guard": 2,
    "_executor_lock": 3,
    "_inflight_lock": 3,
    "_ops_lock": 3,
}

#: Generic suffixes that classify an attribute as a lock even when it
#: is not one of the named service kinds.
_GENERIC_SUFFIXES: Tuple[str, ...] = ("_lock", "_gate")


@dataclass(frozen=True)
class LockUse:
    """One lock acquisition site: the lock kind and rendered receiver."""

    kind: str
    receiver: str

    @property
    def rank(self) -> Optional[int]:
        """The documented service rank, when this is a named service lock."""
        return SERVICE_LOCK_RANKS.get(self.kind)


def classify_lock(expr: ast.expr) -> Optional[LockUse]:
    """Classify a ``with`` context expression as a lock acquisition.

    Handles ``self.write_gate``, ``shard.op_lock``, ``shard._guard()``,
    ``replica.wal._lock`` and the generic ``*_lock``/``*_gate`` shapes;
    returns ``None`` for non-lock context managers (``closing(...)``,
    ``suppress(...)``, file objects, ...).
    """
    target = expr
    if isinstance(target, ast.Call):
        target = target.func
    chain = attribute_chain(target)
    if chain is None or len(chain) < 2:
        return None
    kind = chain[-1]
    if kind not in SERVICE_LOCK_RANKS and not kind.endswith(_GENERIC_SUFFIXES):
        return None
    return LockUse(kind=kind, receiver=".".join(chain[:-1]))


def is_service_lock(use: LockUse) -> bool:
    """True when ``use`` is one of the named service-hierarchy locks."""
    return use.kind in SERVICE_LOCK_RANKS
