"""Source discovery, parsing, and suppression-comment extraction.

The analyzer works on plain :mod:`ast` trees; this module turns paths
into :class:`ParsedModule` values that bundle the tree with everything
the rules and reporters need: the dotted module name (derived from the
``repro`` package root when the file lives under one), the raw source
lines, and the parsed ``# repro: ignore[RULE]`` suppressions.

Suppression syntax::

    some_statement()  # repro: ignore[RA002] -- why this is acceptable
    # repro: ignore[RA001, RA004] -- standalone: applies to the next line
    another_statement()

A suppression matches findings on its own line; a *standalone*
suppression (a line holding nothing but the comment) matches the next
line that holds code, skipping blank and comment-only lines so
multi-line justification comments stay legal.  ``ignore[*]`` matches
every rule.  The text after ``--`` is the justification; the CI lint
gate (``--check-suppressions``) fails on suppressions that omit it.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore\[(?P<rules>[A-Za-z0-9_*,\s]+)\](?P<just>\s*--\s*\S.*)?"
)


class AnalysisError(RuntimeError):
    """A path could not be loaded or parsed."""


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: ignore[...]`` comment."""

    line: int
    rules: FrozenSet[str]
    justified: bool
    standalone: bool

    def matches(self, rule_id: str) -> bool:
        return "*" in self.rules or rule_id in self.rules


@dataclass
class ParsedModule:
    """One parsed source file plus its analysis metadata."""

    path: Path
    name: str
    tree: ast.Module
    lines: List[str]
    suppressions: List[Suppression] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        for suppression in self.suppressions:
            target = suppression.line
            if suppression.standalone:
                target = _next_code_line(self.lines, suppression.line)
            self._by_line.setdefault(target, set()).update(suppression.rules)

    def suppressed_rules(self, line: int) -> Set[str]:
        """Rule ids suppressed for findings reported on ``line``."""
        return self._by_line.get(line, set())

    def suppression_targets(self) -> Dict[int, Set[str]]:
        """Every suppression's *target* line mapped to its rule ids.

        The target is the line findings must land on for the suppression
        to match — the comment's own line, or for standalone comments
        the next code line.  The stale-suppression check compares these
        against the findings the rules actually produced.
        """
        return {line: set(rules) for line, rules in self._by_line.items()}

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rules = self._by_line.get(line)
        if not rules:
            return False
        return "*" in rules or rule_id in rules


def _next_code_line(lines: Sequence[str], after: int) -> int:
    """The first 1-based line after ``after`` that is not blank or comment.

    Standalone suppressions attach to the statement they precede, so the
    scan skips over the rest of a multi-line justification comment.  A
    suppression at end-of-file degrades to targeting the line below it,
    which simply never matches a finding.
    """
    for number in range(after + 1, len(lines) + 1):
        stripped = lines[number - 1].strip()
        if stripped and not stripped.startswith("#"):
            return number
    return after + 1


def module_name_for(path: Path) -> str:
    """The dotted module name for ``path``.

    Files under a ``repro`` package directory get their real dotted name
    (``src/repro/service/router.py`` -> ``repro.service.router``), which
    is what scoped rules match against; anything else falls back to the
    file stem so fixture files and scratch copies still analyze.
    """
    parts = list(path.resolve().parts)
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
        dotted = parts[start:]
        if dotted[-1] == "__init__.py":
            dotted = dotted[:-1]
        else:
            dotted[-1] = Path(dotted[-1]).stem
        return ".".join(dotted)
    if path.name == "__init__.py":
        return path.parent.name
    return path.stem


def parse_suppressions(lines: Sequence[str]) -> List[Suppression]:
    """Extract every suppression comment from raw source lines.

    Tokenizes rather than regex-scanning whole lines so that suppression
    syntax quoted inside strings and docstrings (like the examples in
    this module's own docstring) is never treated as live.
    """
    found: List[Suppression] = []
    source = "\n".join(lines) + "\n"
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return found
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        if not rules:
            continue
        number = token.start[0]
        standalone = token.line[: token.start[1]].strip() == ""
        found.append(
            Suppression(
                line=number,
                rules=rules,
                justified=match.group("just") is not None,
                standalone=standalone,
            )
        )
    return found


def load_module(path: Path) -> ParsedModule:
    """Parse one source file into a :class:`ParsedModule`."""
    try:
        source = path.read_text()
    except OSError as error:
        raise AnalysisError(f"{path}: cannot read ({error})") from error
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        raise AnalysisError(f"{path}: syntax error ({error})") from error
    lines = source.splitlines()
    return ParsedModule(
        path=path,
        name=module_name_for(path),
        tree=tree,
        lines=lines,
        suppressions=parse_suppressions(lines),
    )


def discover(paths: Iterable[Path]) -> List[Path]:
    """Expand files and directories into a sorted list of ``*.py`` files."""
    seen: Set[Path] = set()
    ordered: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Tuple[Path, ...] = tuple(sorted(path.rglob("*.py")))
        elif path.is_file():
            candidates = (path,)
        else:
            raise AnalysisError(f"{path}: no such file or directory")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def load_paths(paths: Iterable[Path]) -> List[ParsedModule]:
    """Discover and parse every module under ``paths``."""
    return [load_module(path) for path in discover(paths)]
