"""The whole-program view: function index, imports, and the call graph.

The call graph is deliberately *lightweight and under-approximate*: it
resolves the call shapes that appear in this codebase's disciplines —

* ``name(...)`` — a function defined in (or imported into) the module,
* ``self.method(...)`` / ``cls.method(...)`` — a method of the
  enclosing class,
* ``alias.func(...)`` / ``alias.sub.func(...)`` — a function of an
  imported project module,

and ignores dynamic dispatch through object attributes
(``self.index.lookup(...)`` stays unresolved).  Rules that care about
paths crossing such boundaries compensate by *registering* the far side
explicitly — that is exactly what the hot-root registry in
:mod:`repro.analysis.hotpaths` is for.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.loader import ParsedModule


@dataclass(frozen=True)
class FunctionInfo:
    """One module-level function or class method."""

    qualname: str
    local_name: str
    name: str
    class_name: Optional[str]
    module_name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: ParsedModule = field(repr=False, compare=False, hash=False)


@dataclass(frozen=True)
class ImportMap:
    """Name bindings introduced by a module's import statements."""

    modules: Dict[str, str]
    symbols: Dict[str, str]


def attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name chains."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return parts
    return None


def _import_map(tree: ast.Module) -> ImportMap:
    modules: Dict[str, str] = {}
    symbols: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    modules[alias.asname] = alias.name
                else:
                    # `import a.b` binds `a`; chains resolve through it.
                    modules[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                bound = alias.asname or alias.name
                symbols[bound] = f"{node.module}.{alias.name}"
    return ImportMap(modules=modules, symbols=symbols)


class Project:
    """Every parsed module plus the indexes the rules share."""

    def __init__(self, modules: Sequence[ParsedModule]) -> None:
        self.modules: List[ParsedModule] = list(modules)
        self.by_name: Dict[str, ParsedModule] = {m.name: m for m in self.modules}
        self.functions: Dict[str, FunctionInfo] = {}
        self.imports: Dict[str, ImportMap] = {}
        for module in self.modules:
            self.imports[module.name] = _import_map(module.tree)
            self._index_functions(module)
        self._callees: Dict[str, Set[str]] = {}

    # -- indexing --------------------------------------------------------
    def _index_functions(self, module: ParsedModule) -> None:
        def visit(nodes: Iterable[ast.stmt], class_name: Optional[str]) -> None:
            for node in nodes:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    local = f"{class_name}.{node.name}" if class_name else node.name
                    info = FunctionInfo(
                        qualname=f"{module.name}.{local}",
                        local_name=local,
                        name=node.name,
                        class_name=class_name,
                        module_name=module.name,
                        node=node,
                        module=module,
                    )
                    self.functions.setdefault(info.qualname, info)
                elif isinstance(node, ast.ClassDef) and class_name is None:
                    visit(node.body, node.name)

        visit(module.tree.body, None)

    # -- call resolution -------------------------------------------------
    def resolve_call(self, caller: FunctionInfo, call: ast.Call) -> Optional[str]:
        """The qualname of the project function ``call`` targets, if known."""
        imports = self.imports[caller.module_name]
        func = call.func
        if isinstance(func, ast.Name):
            local = f"{caller.module_name}.{func.id}"
            if local in self.functions:
                return local
            target = imports.symbols.get(func.id)
            if target is not None and target in self.functions:
                return target
            return None
        chain = attribute_chain(func)
        if chain is None or len(chain) < 2:
            return None
        root, rest = chain[0], chain[1:]
        if root in ("self", "cls") and caller.class_name is not None and len(rest) == 1:
            method = f"{caller.module_name}.{caller.class_name}.{rest[0]}"
            return method if method in self.functions else None
        base = imports.modules.get(root)
        if base is not None:
            dotted = ".".join([base, *rest]) if base != root else ".".join(chain)
            if dotted in self.functions:
                return dotted
        symbol = imports.symbols.get(root)
        if symbol is not None:
            dotted = ".".join([symbol, *rest])
            if dotted in self.functions:
                return dotted
        return None

    def callees(self, qualname: str) -> Set[str]:
        """Project functions called (lexically) from ``qualname``."""
        cached = self._callees.get(qualname)
        if cached is not None:
            return cached
        info = self.functions[qualname]
        found: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                target = self.resolve_call(info, node)
                if target is not None and target != qualname:
                    found.add(target)
        self._callees[qualname] = found
        return found

    def reachable_from(self, roots: Iterable[str]) -> Dict[str, str]:
        """BFS over the call graph; maps reached qualname -> its root."""
        origin: Dict[str, str] = {}
        queue: deque[Tuple[str, str]] = deque()
        for root in roots:
            if root in self.functions and root not in origin:
                origin[root] = root
                queue.append((root, root))
        while queue:
            current, root = queue.popleft()
            for callee in self.callees(current):
                if callee not in origin:
                    origin[callee] = root
                    queue.append((callee, root))
        return origin
