"""Findings, the rule base class, and the rule registry.

A rule is a whole-project pass: it receives the :class:`~repro.analysis
.project.Project` (every parsed module plus the call graph) and yields
:class:`Finding` values.  Rules self-register via :func:`register`, so
adding a checker is: subclass :class:`Rule`, decorate it, import the
module from :mod:`repro.analysis.rules`.

Suppressions are applied after every rule has run — rules stay ignorant
of the comment syntax, and the reporters can show how many findings a
tree suppresses.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Tuple, Type

if TYPE_CHECKING:
    from repro.analysis.loader import ParsedModule
    from repro.analysis.project import Project


#: Finding severities, in increasing order of strictness.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    symbol: str = ""
    severity: str = "error"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        """Rebuild a finding from its :meth:`as_dict` shape (cache replay)."""
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[call-overload]
            col=int(payload["col"]),  # type: ignore[call-overload]
            rule=str(payload["rule"]),
            message=str(payload["message"]),
            symbol=str(payload.get("symbol", "")),
            severity=str(payload.get("severity", "error")),
        )


class Rule(ABC):
    """Base class for one analysis pass."""

    id: str = ""
    title: str = ""
    rationale: str = ""
    #: ``"error"`` findings always gate; ``"warning"`` findings gate unless
    #: listed in the checked-in baseline (see ``docs/static_analysis.md``).
    severity: str = "error"

    @abstractmethod
    def run(self, project: "Project") -> Iterator[Finding]:
        """Yield every violation found in ``project``."""

    def finding(
        self,
        module: "ParsedModule",
        node: ast.AST,
        message: str,
        symbol: str = "",
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=module.path.as_posix(),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
            symbol=symbol,
            severity=self.severity,
        )


RULE_TYPES: Dict[str, Type[Rule]] = {}


def register(rule_type: Type[Rule]) -> Type[Rule]:
    """Class decorator: add ``rule_type`` to the global registry."""
    if not rule_type.id:
        raise ValueError(f"{rule_type.__name__} must define a rule id")
    existing = RULE_TYPES.get(rule_type.id)
    if existing is not None and existing is not rule_type:
        raise ValueError(f"rule id {rule_type.id} already registered by {existing.__name__}")
    RULE_TYPES[rule_type.id] = rule_type
    return rule_type


def all_rule_ids() -> List[str]:
    """Every registered rule id, sorted."""
    _ensure_rules_imported()
    return sorted(RULE_TYPES)


def build_rules(select: Iterable[str] | None = None) -> List[Rule]:
    """Instantiate registered rules (all of them, or just ``select``)."""
    _ensure_rules_imported()
    wanted = sorted(RULE_TYPES) if select is None else list(select)
    rules: List[Rule] = []
    for rule_id in wanted:
        rule_type = RULE_TYPES.get(rule_id)
        if rule_type is None:
            raise KeyError(f"unknown rule id {rule_id!r}; known: {sorted(RULE_TYPES)}")
        rules.append(rule_type())
    return rules


def _ensure_rules_imported() -> None:
    # The built-in rules register themselves on import; importing here
    # keeps `build_rules()` usable without a separate bootstrap call.
    import repro.analysis.rules  # noqa: F401  (import has the side effect)


def run_rules(
    project: "Project", rules: Iterable[Rule]
) -> Tuple[List[Finding], List[Finding]]:
    """Run every rule and split results into (kept, suppressed)."""
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    by_path: Dict[str, "ParsedModule"] = {
        module.path.as_posix(): module for module in project.modules
    }
    for rule in rules:
        for finding in rule.run(project):
            module = by_path.get(finding.path)
            if module is not None and module.is_suppressed(finding.rule, finding.line):
                suppressed.append(finding)
            else:
                kept.append(finding)
    return sorted(kept), sorted(suppressed)
