"""The incremental engine: content-hash cache with import-closure invalidation.

A full analysis of the tree costs ~2s, almost all of it parsing and
rule passes; hashing every file costs ~3ms.  The cache exploits that
gap with a per-file manifest under ``.repro-analysis-cache/``:

* each analyzed file is recorded with its content hash, dotted module
  name, project-internal import deps, and the findings (kept and
  suppressed) anchored in it;
* a **warm** run — every hash matches, same engine fingerprint, same
  rule selection — replays findings straight from the manifest without
  parsing a single file;
* a **partial** run re-analyzes only the *changed closure*: the changed
  files plus everything transitively connected to them through the
  import graph, in both directions (importers can observe changed
  callees through the call graph; importees feed reachability walks
  rooted in importers).  Findings for files outside the closure are
  carried over from the manifest.

The engine fingerprint is a hash of the analyzer's own sources, so
editing a rule invalidates everything — a cache must never make the
analyzer disagree with itself.

Known approximation: whole-program rules (RA002/RA005 reachability,
RA006's lock graph) only see the closure during a partial run, so a
relationship spanning two modules with *no* import path between them
can go stale until the next full run.  CI runs the full tree on main
and nightly for exactly this reason (docs/static_analysis.md).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding
from repro.analysis.loader import ParsedModule

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
DEFAULT_CACHE_DIR = ".repro-analysis-cache"

#: Plan kinds, from cheapest to most expensive.
WARM, PARTIAL, COLD = "warm", "partial", "cold"


def file_hash(path: Path) -> str:
    """Content hash of one source file (empty string if unreadable)."""
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return ""


def engine_fingerprint() -> str:
    """Hash of the analyzer's own sources.

    Any edit to a rule, the loader, or this module changes the
    fingerprint and invalidates every cached result.
    """
    package_root = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for source in sorted(package_root.rglob("*.py")):
        if "__pycache__" in source.parts:
            continue
        digest.update(source.relative_to(package_root).as_posix().encode())
        digest.update(b"\0")
        digest.update(source.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def rule_key(rule_ids: Iterable[str], trace_schema: Optional[str]) -> str:
    """Cache key component for the rule selection and its configuration."""
    schema = trace_schema if trace_schema is not None else ""
    return ",".join(sorted(rule_ids)) + "|trace_schema=" + schema


def module_deps(tree: ast.Module, known_modules: Set[str]) -> List[str]:
    """Project-internal modules ``tree`` imports (for invalidation).

    ``from repro.x.y import Z`` depends on ``repro.x.y`` (or on
    ``repro.x.y.Z`` when ``Z`` is itself a module); ``import repro.x.y``
    depends on the longest prefix that names a known module.
    """
    deps: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                while name:
                    if name in known_modules:
                        deps.add(name)
                        break
                    name = name.rpartition(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                nested = f"{node.module}.{alias.name}"
                if nested in known_modules:
                    deps.add(nested)
                elif node.module in known_modules:
                    deps.add(node.module)
    return sorted(deps)


def import_closure(
    seeds: Set[str], edges: Dict[str, Set[str]]
) -> Set[str]:
    """Modules transitively connected to ``seeds``, both directions."""
    undirected: Dict[str, Set[str]] = {}
    for source, targets in edges.items():
        for target in targets:
            undirected.setdefault(source, set()).add(target)
            undirected.setdefault(target, set()).add(source)
    reached = set(seeds)
    frontier = list(seeds)
    while frontier:
        current = frontier.pop()
        for neighbor in undirected.get(current, ()):
            if neighbor not in reached:
                reached.add(neighbor)
                frontier.append(neighbor)
    return reached


@dataclass
class CachePlan:
    """What a cache lookup decided: replay, partial re-analysis, or cold."""

    kind: str
    hashes: Dict[str, str]
    #: Paths (as given) that must be parsed and re-analyzed.
    closure_paths: List[Path] = field(default_factory=list)
    #: Findings carried over (warm: everything; partial: non-closure files).
    carried_findings: List[Finding] = field(default_factory=list)
    carried_suppressed: List[Finding] = field(default_factory=list)
    #: Manifest entries reusable as-is (keyed by posix path).
    carried_entries: Dict[str, Dict[str, object]] = field(default_factory=dict)


class AnalysisCache:
    """Manifest-backed incremental cache for one analyzed file set."""

    def __init__(self, directory: Path) -> None:
        self.directory = directory
        self.manifest_path = directory / MANIFEST_NAME
        self._fingerprint = engine_fingerprint()

    # -- lookup ----------------------------------------------------------
    def plan(self, files: Sequence[Path], key: str) -> CachePlan:
        """Decide how much work the current file set actually needs."""
        hashes = {path.as_posix(): file_hash(path) for path in files}
        manifest = self._load()
        if (
            manifest is None
            or manifest.get("engine") != self._fingerprint
            or manifest.get("rule_key") != key
        ):
            return CachePlan(kind=COLD, hashes=hashes, closure_paths=list(files))
        entries: Dict[str, Dict[str, object]] = manifest["files"]
        changed = {
            path
            for path, digest in hashes.items()
            if not digest or entries.get(path, {}).get("hash") != digest
        }
        deleted_modules = {
            str(entry.get("module", ""))
            for path, entry in entries.items()
            if path not in hashes
        }
        if not changed and not deleted_modules:
            findings, suppressed = self._replay(entries)
            return CachePlan(
                kind=WARM,
                hashes=hashes,
                carried_findings=findings,
                carried_suppressed=suppressed,
                carried_entries=dict(entries),
            )
        edges: Dict[str, Set[str]] = {
            str(entry.get("module", "")): {str(dep) for dep in entry.get("deps", [])}  # type: ignore[union-attr]
            for entry in entries.values()
        }
        seeds = {
            str(entries[path].get("module", ""))
            for path in changed
            if path in entries
        }
        # A deleted module invalidates everything that imported it.
        for module, deps in edges.items():
            if deps & deleted_modules:
                seeds.add(module)
        closure_modules = import_closure(seeds, edges)
        closure_paths: List[Path] = []
        carried: Dict[str, Dict[str, object]] = {}
        for path in files:
            posix = path.as_posix()
            entry = entries.get(posix)
            if (
                posix in changed
                or entry is None
                or str(entry.get("module", "")) in closure_modules
            ):
                closure_paths.append(path)
            else:
                carried[posix] = entry
        findings, suppressed = self._replay(carried)
        return CachePlan(
            kind=PARTIAL,
            hashes=hashes,
            closure_paths=closure_paths,
            carried_findings=findings,
            carried_suppressed=suppressed,
            carried_entries=carried,
        )

    # -- store -----------------------------------------------------------
    def commit(
        self,
        plan: CachePlan,
        key: str,
        analyzed: Sequence[ParsedModule],
        findings: Sequence[Finding],
        suppressed: Sequence[Finding],
    ) -> None:
        """Write the merged manifest after (re-)analyzing ``analyzed``.

        ``findings``/``suppressed`` are the fresh results for the
        analyzed modules only; carried entries come from ``plan``.
        """
        known = {module.name for module in analyzed} | {
            str(entry.get("module", ""))
            for entry in plan.carried_entries.values()
        }
        by_path: Dict[str, List[Finding]] = {}
        for finding in findings:
            by_path.setdefault(finding.path, []).append(finding)
        suppressed_by_path: Dict[str, List[Finding]] = {}
        for finding in suppressed:
            suppressed_by_path.setdefault(finding.path, []).append(finding)
        entries: Dict[str, Dict[str, object]] = dict(plan.carried_entries)
        for module in analyzed:
            posix = module.path.as_posix()
            entries[posix] = {
                "hash": plan.hashes.get(posix) or file_hash(module.path),
                "module": module.name,
                "deps": module_deps(module.tree, known),
                "findings": [f.as_dict() for f in by_path.get(posix, [])],
                "suppressed": [
                    f.as_dict() for f in suppressed_by_path.get(posix, [])
                ],
            }
        manifest = {
            "version": MANIFEST_VERSION,
            "engine": self._fingerprint,
            "rule_key": key,
            "files": entries,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest, indent=1, sort_keys=True) + "\n")
        tmp.replace(self.manifest_path)

    # -- internals -------------------------------------------------------
    def _load(self) -> Optional[Dict[str, object]]:
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != MANIFEST_VERSION
            or not isinstance(payload.get("files"), dict)
        ):
            return None
        return payload

    @staticmethod
    def _replay(
        entries: Dict[str, Dict[str, object]]
    ) -> Tuple[List[Finding], List[Finding]]:
        findings: List[Finding] = []
        suppressed: List[Finding] = []
        for entry in entries.values():
            for payload in entry.get("findings", []):  # type: ignore[union-attr]
                findings.append(Finding.from_dict(payload))
            for payload in entry.get("suppressed", []):  # type: ignore[union-attr]
                suppressed.append(Finding.from_dict(payload))
        return sorted(findings), sorted(suppressed)
