"""A minimal JSON-Schema subset validator for the report formats.

CI validates ``--format json`` output against ``docs/analysis_report
_schema.json`` and SARIF output against ``docs/sarif_min_schema.json``
without a third-party ``jsonschema`` dependency (mirroring the
hand-rolled validator idiom of :mod:`repro.obs.schema`).  Supported
keywords — the only ones those two schemas use:

``type`` (object/array/string/integer/number/boolean), ``required``,
``properties``, ``additionalProperties`` (``false`` or a schema),
``items``, ``enum``, ``pattern``, ``minimum``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, List, Union

_TYPE_CHECKS = {
    "object": lambda value: isinstance(value, dict),
    "array": lambda value: isinstance(value, list),
    "string": lambda value: isinstance(value, str),
    "integer": lambda value: isinstance(value, int) and not isinstance(value, bool),
    "number": lambda value: isinstance(value, (int, float)) and not isinstance(value, bool),
    "boolean": lambda value: isinstance(value, bool),
}

_META_KEYS = {"$schema", "title", "description"}


class SchemaError(ValueError):
    """A document does not conform to its schema."""


def load_schema(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and parse a schema file."""
    return json.loads(Path(path).read_text())


def validate(document: Any, schema: Dict[str, Any], where: str = "$") -> None:
    """Raise :class:`SchemaError` when ``document`` violates ``schema``."""
    errors = _validate(document, schema, where)
    if errors:
        raise SchemaError("; ".join(errors))


def _validate(document: Any, schema: Dict[str, Any], where: str) -> List[str]:
    errors: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        check = _TYPE_CHECKS.get(expected)
        if check is None:
            errors.append(f"{where}: unsupported schema type {expected!r}")
            return errors
        if not check(document):
            errors.append(f"{where}: expected {expected}, got {type(document).__name__}")
            return errors
    if "enum" in schema and document not in schema["enum"]:
        errors.append(f"{where}: {document!r} not in {schema['enum']!r}")
    if (
        "pattern" in schema
        and isinstance(document, str)
        and re.search(schema["pattern"], document) is None
    ):
        errors.append(f"{where}: {document!r} does not match {schema['pattern']!r}")
    if (
        "minimum" in schema
        and isinstance(document, (int, float))
        and document < schema["minimum"]
    ):
        errors.append(f"{where}: {document!r} below minimum {schema['minimum']!r}")
    if isinstance(document, dict):
        errors.extend(_validate_object(document, schema, where))
    if isinstance(document, list) and "items" in schema:
        for position, item in enumerate(document):
            errors.extend(_validate(item, schema["items"], f"{where}[{position}]"))
    return errors


def _validate_object(
    document: Dict[str, Any], schema: Dict[str, Any], where: str
) -> List[str]:
    errors: List[str] = []
    properties: Dict[str, Any] = schema.get("properties", {})
    for key in schema.get("required", []):
        if key not in document:
            errors.append(f"{where}: missing required key {key!r}")
    additional = schema.get("additionalProperties")
    for key, value in document.items():
        if key in properties:
            errors.extend(_validate(value, properties[key], f"{where}.{key}"))
        elif additional is False and key not in _META_KEYS:
            errors.append(f"{where}: unexpected key {key!r}")
        elif isinstance(additional, dict):
            errors.extend(_validate(value, additional, f"{where}.{key}"))
    return errors


__all__ = ("SchemaError", "load_schema", "validate")
