"""The ``python -m repro.analysis`` command line.

Exit codes follow linter convention: 0 clean, 1 findings (or, under
``--check-suppressions``, unjustified suppressions), 2 usage or parse
errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.core import Rule, all_rule_ids, build_rules, run_rules
from repro.analysis.loader import AnalysisError, ParsedModule, load_paths
from repro.analysis.project import Project
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.rules.ra004_telemetry import TelemetryHygieneRule


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based static analysis enforcing this repo's "
        "concurrency, hot-path, migration, and telemetry disciplines.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--trace-schema",
        default=None,
        metavar="PATH",
        help="trace schema whose name pattern RA004 enforces "
        "(default: docs/trace_schema.json when present)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--check-suppressions",
        action="store_true",
        help="report `# repro: ignore[...]` comments lacking a "
        "`-- justification` instead of running the rules",
    )
    return parser


def _build_rules(args: argparse.Namespace) -> List[Rule]:
    select: Optional[List[str]] = None
    if args.select is not None:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    rules = build_rules(select)
    if args.trace_schema is not None:
        for position, rule in enumerate(rules):
            if isinstance(rule, TelemetryHygieneRule):
                rules[position] = TelemetryHygieneRule(Path(args.trace_schema))
    return rules


def _check_suppressions(modules: Sequence[ParsedModule]) -> List[str]:
    problems: List[str] = []
    for module in modules:
        for suppression in module.suppressions:
            if not suppression.justified:
                rules = ",".join(sorted(suppression.rules))
                problems.append(
                    f"{module.path.as_posix()}:{suppression.line}: suppression "
                    f"ignore[{rules}] lacks a `-- justification` comment"
                )
    return problems


def _emit(report: str, output: Optional[str]) -> None:
    if output is None:
        print(report)
    else:
        Path(output).write_text(report + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        for rule in build_rules():
            print(f"{rule.id}  {rule.title}\n    {rule.rationale}")
        return 0
    try:
        modules = load_paths([Path(path) for path in args.paths])
    except AnalysisError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not modules:
        print("error: no python files found", file=sys.stderr)
        return 2
    if args.check_suppressions:
        problems = _check_suppressions(modules)
        for problem in problems:
            print(problem)
        if problems:
            print(f"{len(problems)} unjustified suppression(s)")
            return 1
        print(f"suppression hygiene clean across {len(modules)} module(s)")
        return 0
    try:
        rules = _build_rules(args)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    project = Project(modules)
    findings, suppressed_findings = run_rules(project, rules)
    suppressed = len(suppressed_findings)
    if args.format == "text":
        report = render_text(findings, suppressed)
    elif args.format == "json":
        report = json.dumps(
            render_json(findings, rules, [str(p) for p in args.paths], suppressed),
            indent=2,
            sort_keys=True,
        )
    else:
        report = json.dumps(render_sarif(findings, rules), indent=2, sort_keys=True)
    _emit(report, args.output)
    return 1 if findings else 0


def list_rule_ids() -> List[str]:
    """Registered rule ids (import side-effect free helper for tests)."""
    return all_rule_ids()
