"""The ``python -m repro.analysis`` command line.

Exit codes follow linter convention: 0 clean, 1 active findings (or,
under ``--check-suppressions``, unjustified or stale suppressions),
2 usage or parse errors.

Incremental modes:

* ``--cache`` — keep a per-file manifest under ``--cache-dir``
  (default ``.repro-analysis-cache/``); warm runs replay findings
  without parsing, partial runs re-analyze only the changed import
  closure (see :mod:`repro.analysis.cache`);
* ``--changed-only [REF]`` — analyze only files changed relative to
  the git ref (default ``HEAD``) plus their transitive import closure;
  the PR fast path, while main and nightly run the full tree.

Severity gating: ``error`` findings always exit 1; ``warning``
findings exit 1 unless recorded in the checked-in baseline
(``--baseline``, default ``.repro-analysis-baseline.json`` when
present; regenerate with ``--write-baseline``).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.cache import (
    DEFAULT_CACHE_DIR,
    WARM,
    AnalysisCache,
    import_closure,
    module_deps,
    rule_key,
)
from repro.analysis.core import (
    Finding,
    Rule,
    all_rule_ids,
    build_rules,
    run_rules,
)
from repro.analysis.loader import (
    AnalysisError,
    ParsedModule,
    discover,
    load_module,
    load_paths,
)
from repro.analysis.project import Project
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.rules.ra004_telemetry import TelemetryHygieneRule


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based static analysis enforcing this repo's "
        "concurrency, hot-path, migration, telemetry, async-purity, "
        "lock-order, handle-lifecycle, and WAL-fence disciplines.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--trace-schema",
        default=None,
        metavar="PATH",
        help="trace schema whose name pattern RA004 enforces "
        "(default: docs/trace_schema.json when present)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--check-suppressions",
        action="store_true",
        help="audit `# repro: ignore[...]` comments instead of reporting "
        "findings: flag missing `-- justification`s and *stale* "
        "suppressions whose rule no longer fires on their line",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="reuse per-file results from the analysis cache; only the "
        "changed import closure is re-analyzed",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=f"cache directory (default: {DEFAULT_CACHE_DIR}; implies --cache)",
    )
    parser.add_argument(
        "--changed-only",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="analyze only files changed relative to the git REF (default "
        "HEAD) plus their transitive import closure; takes precedence "
        "over --cache",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="accepted-warning baseline file (default: "
        f"{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record every current warning finding into the baseline "
        "file and exit 0",
    )
    return parser


def _build_rules(args: argparse.Namespace) -> List[Rule]:
    select: Optional[List[str]] = None
    if args.select is not None:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    rules = build_rules(select)
    if args.trace_schema is not None:
        for position, rule in enumerate(rules):
            if isinstance(rule, TelemetryHygieneRule):
                rules[position] = TelemetryHygieneRule(Path(args.trace_schema))
    return rules


# -- suppression hygiene -------------------------------------------------
def _unjustified_suppressions(modules: Sequence[ParsedModule]) -> List[str]:
    problems: List[str] = []
    for module in modules:
        for suppression in module.suppressions:
            if not suppression.justified:
                rules = ",".join(sorted(suppression.rules))
                problems.append(
                    f"{module.path.as_posix()}:{suppression.line}: suppression "
                    f"ignore[{rules}] lacks a `-- justification` comment"
                )
    return problems


def _stale_suppressions(
    modules: Sequence[ParsedModule],
    rules: Sequence[Rule],
    suppressed_findings: Sequence[Finding],
) -> List[str]:
    """Suppressions whose rule no longer fires on their target line.

    A suppression earns its keep by matching a finding; one that
    matches nothing is dead weight that would silently swallow a future
    real finding on the same line.  Rules excluded by ``--select`` are
    skipped (absence of evidence), unknown rule ids are always flagged.
    """
    selected = {rule.id for rule in rules}
    known = set(all_rule_ids())
    fired: Set[Tuple[str, int, str]] = {
        (f.path, f.line, f.rule) for f in suppressed_findings
    }
    fired_lines: Set[Tuple[str, int]] = {
        (f.path, f.line) for f in suppressed_findings
    }
    problems: List[str] = []
    for module in modules:
        posix = module.path.as_posix()
        for line, rule_ids in sorted(module.suppression_targets().items()):
            for rule_id in sorted(rule_ids):
                if rule_id == "*":
                    if (posix, line) not in fired_lines:
                        problems.append(
                            f"{posix}:{line}: stale suppression ignore[*]: "
                            "no rule reports a finding on this line"
                        )
                elif rule_id not in known:
                    problems.append(
                        f"{posix}:{line}: suppression names unknown rule "
                        f"{rule_id} (known: {', '.join(sorted(known))})"
                    )
                elif rule_id not in selected:
                    continue
                elif (posix, line, rule_id) not in fired:
                    problems.append(
                        f"{posix}:{line}: stale suppression ignore[{rule_id}]: "
                        f"{rule_id} no longer reports a finding on this line"
                    )
    return problems


def _check_suppressions(
    modules: Sequence[ParsedModule], rules: Sequence[Rule]
) -> int:
    project = Project(modules)
    _, suppressed_findings = run_rules(project, rules)
    problems = _unjustified_suppressions(modules)
    problems += _stale_suppressions(modules, rules, suppressed_findings)
    for problem in sorted(problems):
        print(problem)
    if problems:
        print(f"{len(problems)} suppression problem(s)")
        return 1
    print(f"suppression hygiene clean across {len(modules)} module(s)")
    return 0


# -- changed-only mode ---------------------------------------------------
def _git_changed_files(ref: str) -> Optional[Set[Path]]:
    """Resolved paths changed relative to ``ref``, plus untracked files."""
    def run(*argv: str) -> str:
        return subprocess.run(
            ["git", *argv], capture_output=True, text=True, check=True
        ).stdout

    try:
        top = Path(run("rev-parse", "--show-toplevel").strip())
        names = run("diff", "--name-only", ref, "--").splitlines()
        names += run("ls-files", "--others", "--exclude-standard").splitlines()
    except (OSError, subprocess.CalledProcessError):
        return None
    return {(top / name).resolve() for name in names if name.strip()}


def _changed_closure(
    modules: Sequence[ParsedModule], changed: Set[Path]
) -> List[ParsedModule]:
    known = {module.name for module in modules}
    edges = {
        module.name: set(module_deps(module.tree, known)) for module in modules
    }
    seeds = {
        module.name
        for module in modules
        if module.path.resolve() in changed
    }
    if not seeds:
        return []
    closure = import_closure(seeds, edges)
    return [module for module in modules if module.name in closure]


# -- reporting -----------------------------------------------------------
def _emit(report: str, output: Optional[str]) -> None:
    if output is None:
        print(report)
    else:
        Path(output).write_text(report + "\n")


def _report(
    args: argparse.Namespace,
    findings: List[Finding],
    suppressed_findings: List[Finding],
    rules: Sequence[Rule],
) -> int:
    """Apply the baseline, render the report, and compute the exit code."""
    baseline_path = Path(args.baseline or DEFAULT_BASELINE_NAME)
    if args.write_baseline:
        count = write_baseline(baseline_path, findings)
        print(f"baseline: recorded {count} warning finding(s) in {baseline_path}")
        return 0
    accepted = (
        load_baseline(baseline_path)
        if args.baseline is not None or baseline_path.exists()
        else set()
    )
    active, baselined = partition(findings, accepted)
    suppressed = len(suppressed_findings)
    if args.format == "text":
        report = render_text(active, suppressed, baselined=len(baselined))
    elif args.format == "json":
        report = json.dumps(
            render_json(
                active,
                rules,
                [str(p) for p in args.paths],
                suppressed,
                baselined=len(baselined),
            ),
            indent=2,
            sort_keys=True,
        )
    else:
        report = json.dumps(render_sarif(active, rules), indent=2, sort_keys=True)
    _emit(report, args.output)
    return 1 if active else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        for rule in build_rules():
            print(f"{rule.id}  {rule.title} [{rule.severity}]\n    {rule.rationale}")
        return 0
    try:
        rules = _build_rules(args)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    if args.check_suppressions:
        try:
            modules = load_paths([Path(path) for path in args.paths])
        except AnalysisError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if not modules:
            print("error: no python files found", file=sys.stderr)
            return 2
        return _check_suppressions(modules, rules)

    if args.changed_only is not None:
        try:
            modules = load_paths([Path(path) for path in args.paths])
        except AnalysisError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if not modules:
            print("error: no python files found", file=sys.stderr)
            return 2
        changed = _git_changed_files(args.changed_only)
        if changed is None:
            print(
                f"error: git diff against {args.changed_only!r} failed "
                "(not a git checkout, or unknown ref)",
                file=sys.stderr,
            )
            return 2
        closure = _changed_closure(modules, changed)
        print(
            f"changed-only: {len(closure)}/{len(modules)} module(s) in the "
            f"changed import closure (vs {args.changed_only})",
            file=sys.stderr,
        )
        if not closure:
            return _report(args, [], [], rules)
        findings, suppressed_findings = run_rules(Project(closure), rules)
        return _report(args, findings, suppressed_findings, rules)

    use_cache = args.cache or args.cache_dir is not None
    if use_cache:
        try:
            files = discover([Path(path) for path in args.paths])
        except AnalysisError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if not files:
            print("error: no python files found", file=sys.stderr)
            return 2
        cache = AnalysisCache(Path(args.cache_dir or DEFAULT_CACHE_DIR))
        key = rule_key((rule.id for rule in rules), args.trace_schema)
        plan = cache.plan(files, key)
        if plan.kind == WARM:
            print(
                f"cache: warm ({len(files)} file(s) unchanged)", file=sys.stderr
            )
            return _report(
                args, plan.carried_findings, plan.carried_suppressed, rules
            )
        print(
            f"cache: {plan.kind}, re-analyzing {len(plan.closure_paths)}"
            f"/{len(files)} file(s)",
            file=sys.stderr,
        )
        try:
            analyzed = [load_module(path) for path in plan.closure_paths]
        except AnalysisError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        fresh, fresh_suppressed = run_rules(Project(analyzed), rules)
        cache.commit(plan, key, analyzed, fresh, fresh_suppressed)
        return _report(
            args,
            sorted(plan.carried_findings + fresh),
            sorted(plan.carried_suppressed + fresh_suppressed),
            rules,
        )

    try:
        modules = load_paths([Path(path) for path in args.paths])
    except AnalysisError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not modules:
        print("error: no python files found", file=sys.stderr)
        return 2
    findings, suppressed_findings = run_rules(Project(modules), rules)
    return _report(args, findings, suppressed_findings, rules)


def list_rule_ids() -> List[str]:
    """Registered rule ids (import side-effect free helper for tests)."""
    return all_rule_ids()
