"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

The JSON shape is pinned by ``docs/analysis_report_schema.json`` and the
SARIF output by the structural subset in ``docs/sarif_min_schema.json``
(the full SARIF schema is enormous; CI validates the fields consumers
actually read).  Both schemas are exercised by ``tests/analysis``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

from repro.analysis.core import Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro.analysis"
TOOL_VERSION = "1.0.0"
REPORT_VERSION = 1


def render_text(
    findings: Sequence[Finding], suppressed: int = 0, baselined: int = 0
) -> str:
    """One line per finding, ruff/gcc style, plus a summary line."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}"
        + (f" [{f.symbol}]" if f.symbol else "")
        + (" (warning)" if f.severity == "warning" else "")
        for f in findings
    ]
    by_rule = Counter(f.rule for f in findings)
    tail = f"; {baselined} baselined warning(s)" if baselined else ""
    if findings:
        counts = ", ".join(f"{rule}: {count}" for rule, count in sorted(by_rule.items()))
        lines.append(
            f"{len(findings)} finding(s) ({counts}); {suppressed} suppressed{tail}"
        )
    else:
        lines.append(f"clean: 0 findings; {suppressed} suppressed{tail}")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    rules: Sequence[Rule],
    paths: Sequence[str],
    suppressed: int = 0,
    baselined: int = 0,
) -> Dict[str, object]:
    """The machine-readable report (docs/analysis_report_schema.json)."""
    by_rule = Counter(f.rule for f in findings)
    return {
        "version": REPORT_VERSION,
        "tool": TOOL_NAME,
        "paths": list(paths),
        "rules": [
            {
                "id": rule.id,
                "title": rule.title,
                "rationale": rule.rationale,
                "severity": rule.severity,
            }
            for rule in rules
        ],
        "findings": [f.as_dict() for f in findings],
        "summary": {
            "total": len(findings),
            "suppressed": suppressed,
            "baselined": baselined,
            "by_rule": {rule_id: by_rule[rule_id] for rule_id in sorted(by_rule)},
        },
    }


def render_sarif(findings: Sequence[Finding], rules: Sequence[Rule]) -> Dict[str, object]:
    """A SARIF 2.1.0 log (docs/sarif_min_schema.json subset)."""
    results: List[Dict[str, object]] = [
        {
            "ruleId": f.rule,
            "level": f.severity,
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {"startLine": f.line, "startColumn": f.col},
                    }
                }
            ],
        }
        for f in findings
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": "docs/static_analysis.md",
                        "rules": [
                            {
                                "id": rule.id,
                                "shortDescription": {"text": rule.title},
                                "fullDescription": {"text": rule.rationale},
                            }
                            for rule in rules
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
