"""The checked-in warning baseline.

``error`` findings always gate CI.  ``warning`` rules (today: RA007,
whose cross-function ownership tracking is deliberately approximate)
gate on *new* findings only: a reviewed-and-accepted warning is
recorded in ``.repro-analysis-baseline.json`` at the repo root and
stops failing the build, while anything not in the file still exits 1.

Entries match on ``(rule, path, symbol, message)`` — deliberately not
the line number, so unrelated edits that shift a baselined warning up
or down the file do not resurrect it.  Editing the flagged function
enough to change its message or symbol *does* resurrect it, which is
the point: the baseline accepts a specific reviewed shape, not a
location.  Regenerate with ``--write-baseline`` (and re-review the
diff; a shrinking baseline is progress, a growing one is a decision).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Set, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-analysis-baseline.json"

BaselineKey = Tuple[str, str, str, str]


def baseline_key(finding: Finding) -> BaselineKey:
    return (finding.rule, finding.path, finding.symbol, finding.message)


def load_baseline(path: Path) -> Set[BaselineKey]:
    """Accepted-warning keys from ``path`` (empty set if unreadable)."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return set()
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        return set()
    keys: Set[BaselineKey] = set()
    for entry in payload.get("entries", []):
        if not isinstance(entry, dict):
            continue
        keys.add(
            (
                str(entry.get("rule", "")),
                str(entry.get("path", "")),
                str(entry.get("symbol", "")),
                str(entry.get("message", "")),
            )
        )
    return keys


def write_baseline(path: Path, findings: Sequence[Finding]) -> int:
    """Record every *warning* finding in ``findings``; returns the count."""
    entries = sorted(
        {baseline_key(f) for f in findings if f.severity == "warning"}
    )
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {"rule": rule, "path": fpath, "symbol": symbol, "message": message}
            for rule, fpath, symbol, message in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return len(entries)


def partition(
    findings: Sequence[Finding], accepted: Set[BaselineKey]
) -> Tuple[List[Finding], List[Finding]]:
    """Split ``findings`` into (active, baselined).

    Only warnings can be baselined; an error whose key appears in the
    baseline file still gates.
    """
    active: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        if finding.severity == "warning" and baseline_key(finding) in accepted:
            baselined.append(finding)
        else:
            active.append(finding)
    return active, baselined
