"""repro — a Python reproduction of *Adaptive Hybrid Indexes* (SIGMOD '22).

The paper's contribution is a workload-adaptation framework that lets a
single index use different node encodings for different parts of itself,
chosen at run-time from sampled access statistics.  This package provides:

* :mod:`repro.core` — the adaptation framework (sampling, error-bounded
  top-k classification, heuristics, budgets, offline training,
  concurrent sampling strategies);
* :mod:`repro.bptree` — a full B+-tree with Gapped / Packed / Succinct
  leaf encodings and the adaptive AHI-BTree;
* :mod:`repro.art` / :mod:`repro.fst` / :mod:`repro.hybridtrie` — the
  Adaptive Radix Tree, the Fast Succinct Trie, and the adaptive
  level-wise AHI-Trie combining them;
* :mod:`repro.dualstage` — the Dual-Stage hybrid index baseline;
* :mod:`repro.workloads` — the paper's datasets and workloads W1.1-W6.2;
* :mod:`repro.sim` — structural operation counters and the calibrated
  cost model (the documented substitution for hardware timing);
* :mod:`repro.harness` — the experiment runner and one entry point per
  paper table/figure;
* :mod:`repro.service` — a sharded concurrent index service routing
  batched traffic across per-shard adaptation managers under one
  global memory budget.

Quickstart::

    from repro import AdaptiveBPlusTree, MemoryBudget

    tree = AdaptiveBPlusTree.bulk_load_adaptive(
        [(key, key * 2) for key in range(100_000)],
        budget=MemoryBudget.absolute(2_000_000),
    )
    tree.lookup(42)            # accesses are sampled transparently
    tree.manager.events        # adaptation phases, migrations, sizes
"""

from repro.art.tree import ART
from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.olc import OlcBPlusTree
from repro.bptree.tree import BPlusTree
from repro.core.access import AccessType
from repro.core.budget import BudgetArbiter, MemoryBudget
from repro.core.manager import AdaptationManager, ManagerConfig
from repro.core.invariants import InvariantViolation, validate
from repro.dualstage.index import DualStageIndex
from repro.faults.injector import FaultInjector, InjectedFault
from repro.fst.trie import FST
from repro.hybridtrie.tree import HybridTrie
from repro.service.partition import HashPartitioner, RangePartitioner
from repro.service.router import ShardRouter
from repro.sim.costmodel import CostModel

__version__ = "0.1.0"

__all__ = [
    "ART",
    "AdaptiveBPlusTree",
    "LeafEncoding",
    "BPlusTree",
    "OlcBPlusTree",
    "AccessType",
    "MemoryBudget",
    "BudgetArbiter",
    "HashPartitioner",
    "RangePartitioner",
    "ShardRouter",
    "AdaptationManager",
    "ManagerConfig",
    "DualStageIndex",
    "FaultInjector",
    "InjectedFault",
    "InvariantViolation",
    "validate",
    "FST",
    "HybridTrie",
    "CostModel",
    "__version__",
]
