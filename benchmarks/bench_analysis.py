"""Analyzer self-benchmark: cold parse-everything vs warm cache replay.

PR 10 made ``repro.analysis`` incremental: a per-file manifest keyed by
content hash lets an unchanged tree skip parsing entirely and replay
recorded findings.  The claim worth pinning is the one developers feel —
the warm re-run must be at least ``REQUIRED_SPEEDUP``x faster than the
cold run over the same tree.  This bench times both legs in-process
around the real CLI (``repro.analysis.cli.main``) against a throwaway
cache directory, so the numbers include argument parsing, rule
execution or replay, and report rendering, exactly as ``--cache`` users
see them.

Writes ``BENCH_PR10.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_analysis.py
    PYTHONPATH=src python benchmarks/bench_analysis.py \
        --no-write --check BENCH_PR10.json --tolerance 0.30

``--check`` compares the measured warm speedup against a committed
baseline and fails on a regression beyond the tolerance; the absolute
``>= REQUIRED_SPEEDUP`` floor is always enforced.
"""

import argparse
import contextlib
import io
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.cli import main as analysis_main  # noqa: E402

RESULT_FILE = REPO_ROOT / "BENCH_PR10.json"
TARGET = REPO_ROOT / "src" / "repro"

#: The incremental engine's contract (docs/static_analysis.md): a warm
#: re-run over an unchanged tree replays findings without parsing and
#: must land at least this much faster than the cold run.
REQUIRED_SPEEDUP = 5.0


def _timed_run(cache_dir, out_path):
    """One CLI invocation with the cache; returns (elapsed_s, exit_code)."""
    argv = [
        str(TARGET),
        "--cache",
        "--cache-dir",
        str(cache_dir),
        "--format",
        "json",
        "--output",
        str(out_path),
    ]
    stderr = io.StringIO()
    start = time.perf_counter()
    with contextlib.redirect_stderr(stderr):
        code = analysis_main(argv)
    return time.perf_counter() - start, code, stderr.getvalue()


def run_selfbench(warm_repeats=3):
    """Cold run then ``warm_repeats`` warm runs; returns the payload."""
    scratch = Path(tempfile.mkdtemp(prefix="repro-analysis-bench-"))
    try:
        cache_dir = scratch / "cache"
        out_path = scratch / "report.json"
        cold_s, cold_code, cold_err = _timed_run(cache_dir, out_path)
        if "cache: cold" not in cold_err:
            raise RuntimeError(f"expected a cold first run, got: {cold_err!r}")
        report = json.loads(out_path.read_text())
        files = len(json.loads((cache_dir / "manifest.json").read_text())["files"])
        warm_samples = []
        for _ in range(max(1, warm_repeats)):
            warm_s, warm_code, warm_err = _timed_run(cache_dir, out_path)
            if "cache: warm" not in warm_err:
                raise RuntimeError(f"expected a warm re-run, got: {warm_err!r}")
            if warm_code != cold_code:
                raise RuntimeError(
                    f"warm exit code {warm_code} != cold exit code {cold_code}"
                )
            warm_samples.append(warm_s)
        warm_best = min(warm_samples)
        return {
            "suite": "analysis_selfbench",
            "target": str(TARGET.relative_to(REPO_ROOT)),
            "files": files,
            "findings": len(report["findings"]),
            "exit_code": cold_code,
            "headline": {
                "cold_s": round(cold_s, 4),
                "warm_s": round(warm_best, 4),
                "warm_samples_s": [round(s, 4) for s in warm_samples],
                "warm_speedup": round(cold_s / warm_best, 1),
                "required": REQUIRED_SPEEDUP,
            },
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def format_report(payload):
    headline = payload["headline"]
    return (
        f"analyzer self-bench over {payload['target']} "
        f"({payload['files']} file(s), {payload['findings']} finding(s))\n"
        f"  cold run : {headline['cold_s']:.3f} s (parse + analyze)\n"
        f"  warm run : {headline['warm_s']:.3f} s (manifest replay, "
        f"best of {len(headline['warm_samples_s'])})\n"
        f"  speedup  : {headline['warm_speedup']:.1f}x "
        f"(requires >= {headline['required']:.0f}x)"
    )


def check_headline(payload):
    """Absolute floor; returns a list of failure strings."""
    headline = payload["headline"]
    failures = []
    if headline["warm_speedup"] < headline["required"]:
        failures.append(
            f"warm_speedup {headline['warm_speedup']:.1f}x below the "
            f"required {headline['required']:.0f}x"
        )
    if payload["exit_code"] != 0:
        failures.append(
            f"analyzer exited {payload['exit_code']} on {payload['target']}; "
            "the tree must be clean for the bench to stand"
        )
    return failures


def check_against_baseline(payload, baseline, tolerance):
    """Relative regression gate against a committed BENCH_PR10.json."""
    measured = payload["headline"]["warm_speedup"]
    recorded = baseline["headline"]["warm_speedup"]
    floor = recorded * (1.0 - tolerance)
    if measured < floor:
        return [
            f"warm_speedup {measured:.1f}x regressed below {floor:.1f}x "
            f"(baseline {recorded:.1f}x, tolerance {tolerance:.0%})"
        ]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Analyzer self-bench (PR 10).")
    parser.add_argument(
        "--warm-repeats",
        type=int,
        default=3,
        help="warm runs to sample; the best is the headline (default 3)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=RESULT_FILE,
        help=f"result JSON path (default {RESULT_FILE})",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing the result JSON"
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="baseline JSON to compare the warm speedup against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed relative speedup regression vs the baseline (default 0.30)",
    )
    args = parser.parse_args(argv)
    payload = run_selfbench(warm_repeats=args.warm_repeats)
    print(format_report(payload))
    failures = check_headline(payload)
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures.extend(check_against_baseline(payload, baseline, args.tolerance))
        if not failures:
            print(
                f"no headline regressions vs {args.check} "
                f"(tolerance {args.tolerance:.0%})"
            )
    for failure in failures:
        print(f"REGRESSION: {failure}")
    if failures:
        return 1
    if not args.no_write:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
