"""Table 2: ART vs FST-dense vs FST-sparse on the prefix-random dataset."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_table2
from repro.harness.report import format_table


def test_tab2_trie_variants(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_table2(num_keys=60_000, num_lookups=20_000),
    )
    print(banner("Table 2 — trie variants on prefix-random user ids"))
    print(format_table(result["headers"], result["rows"]))
    print("paper: ART 274MB/81ns, FST-dense 116MB/206ns, FST-sparse 104MB/576ns")

    rows = {row[0]: row for row in result["rows"]}
    # Latency ordering: ART < FST-dense < FST-sparse.
    assert rows["ART"][2] < rows["FST-dense"][2] < rows["FST-sparse"][2]
    # Size: ART largest, the two FST encodings close together and smaller.
    assert rows["FST-sparse"][1] < rows["ART"][1]
    assert rows["FST-dense"][1] < rows["ART"][1]
    # The latency factor ART vs sparse is in the several-x regime (paper ~7x).
    assert rows["FST-sparse"][2] > 3 * rows["ART"][2]
