"""Figure 14: latency and size across workload skew (Zipf alpha sweep)."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_fig14
from repro.harness.report import format_table


def test_fig14_skew_sweep(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_fig14(
            num_keys=30_000,
            num_ops=40_000,
            alphas=(0.2, 0.6, 1.0, 1.4),
        ),
    )
    print(banner("Figure 14 — skew sweep (W1.1, varying alpha)"))
    print(format_table(result["headers"], result["rows"]))

    by_key = {(row[0], row[1]): row for row in result["rows"]}

    def latency(alpha, name):
        return by_key[(alpha, name)][2]

    def size(alpha, name):
        return by_key[(alpha, name)][3]

    # The adaptive tree improves with skew; the static trees do not care
    # nearly as much.
    assert latency(1.4, "ahi") < latency(0.2, "ahi")
    # At high skew the adaptive tree approaches gapped performance while
    # staying far smaller (paper at alpha=1: -71% size, +17% latency).
    assert latency(1.4, "ahi") < 1.6 * latency(1.4, "gapped")
    assert size(1.4, "ahi") < 0.6 * size(1.4, "gapped")
    # At low skew it does not collapse: stays within reach of succinct
    # (paper: 3% above succinct at alpha ~ 0).
    assert latency(0.2, "ahi") < 1.4 * latency(0.2, "succinct")
