"""Figure 9: leaf-encoding migration costs for two index sizes."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_fig9
from repro.harness.report import format_table


def test_fig09_migration_costs(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_fig9(
            small_keys=20_000, large_keys=100_000, migrations_per_pair=100
        ),
    )
    print(banner("Figure 9 — encoding migration costs (modeled + wall)"))
    print(format_table(result["headers"], result["rows"]))
    print("paper: gapped<->packed are memcpy-cheap; succinct migrations re-encode "
          "every entry (>1us at 70% occupancy)")

    small = {row[1]: row[2] for row in result["rows"] if row[0] == "small"}
    # Succinct-involving migrations are several times more expensive.
    for cheap in ("gapped->packed", "packed->gapped"):
        for recode in ("succinct->gapped", "gapped->succinct",
                       "succinct->packed", "packed->succinct"):
            assert small[recode] > 3 * small[cheap]
    # Recode costs land in the >1us regime of the figure.
    assert small["succinct->gapped"] > 1000
