"""Durability bench (PR 6).

Measures what the write-ahead log actually costs on the ``put_many``
path and what recovery actually costs per WAL frame, then writes the
machine-readable ``BENCH_PR6.json`` at the repo root:

* **sustained write throughput** under three durability modes — WAL
  off, WAL with group commit (one buffered write per batch, no fsync),
  and WAL with one fsync per batch.  The headline gate: group commit
  must retain **>= 50%** of the no-WAL write throughput (the whole
  point of batching the commit);
* **recovery time vs WAL-tail length** — how long
  :meth:`ShardRouter.recover` takes as the un-checkpointed tail grows,
  reported as frames/second of replay.

In the disk-resident cost-model vocabulary (PAPERS.md: updatable
learned indexes on disk, AirIndex's storage-profile tuning): the WAL
charges every write batch one sequential-write I/O (plus an fsync
barrier under ``"batch"``), checkpoints charge one full-shard
sequential write amortized over the checkpoint interval, and recovery
charges one sequential read of snapshot + tail — numbers this bench
reports honestly rather than assumes.

Regression checking compares *ratios* (group-commit / no-WAL), which
are stable across machines; absolute ops/sec are reported alongside.

``--crash-campaign N`` additionally runs the ISSUE-6 crash-recovery
fault campaign at N injected crashes (see
``repro.harness.experiments_durability``) and fails on any lost
acknowledged write.

Run directly::

    PYTHONPATH=src python benchmarks/bench_durability.py --keys 40000
    PYTHONPATH=src python benchmarks/bench_durability.py \
        --keys 8000 --check BENCH_PR6.json --tolerance 0.30
    PYTHONPATH=src python benchmarks/bench_durability.py \
        --no-write --crash-campaign 120

or through pytest (reduced scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_durability.py -q
"""

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

import pytest

from repro.durability import DurabilityManager
from repro.harness.experiments_durability import experiment_crash_campaign
from repro.obs.slo import evaluate_checks, parse_check
from repro.service.router import ShardRouter

DEFAULT_KEYS = 40_000
BATCH_SIZE = 500
GROUP_COMMIT_RETENTION_REQUIRED = 0.50
REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_PR6.json"

#: (mode key, DurabilityManager sync policy or None for WAL off).
MODES = (
    ("wal_off", None),
    ("wal_group_commit", "none"),
    ("wal_fsync_per_batch", "batch"),
)


def _timed_put_many(sync, num_writes, batch_size, family="olc"):
    """Wall-clock ops/sec of sustained ``put_many`` under one sync mode."""
    root = Path(tempfile.mkdtemp(prefix="repro-bench-durability-"))
    try:
        durability = (
            None if sync is None else DurabilityManager(root / "store", sync=sync)
        )
        initial = [(key, key) for key in range(4_000)]
        router = ShardRouter.build(
            initial,
            family=family,
            num_shards=4,
            partitioning="range",
            durability=durability,
            max_workers=0,
        )
        base = len(initial)
        batches = [
            [(base + offset, offset) for offset in range(start, start + batch_size)]
            for start in range(0, num_writes, batch_size)
        ]
        begin = time.perf_counter()
        for batch in batches:
            router.put_many(batch)
        elapsed = time.perf_counter() - begin
        router.close()
        return num_writes / elapsed
    finally:
        shutil.rmtree(root, ignore_errors=True)


def run_throughput_bench(num_keys=DEFAULT_KEYS, batch_size=BATCH_SIZE):
    """The three-mode write sweep; returns mode -> ops/sec plus ratios."""
    modes = {}
    for mode_key, sync in MODES:
        modes[mode_key] = {"ops_per_sec": round(_timed_put_many(sync, num_keys, batch_size), 1)}
    baseline = modes["wal_off"]["ops_per_sec"]
    for mode_key, _sync in MODES:
        modes[mode_key]["retention_vs_wal_off"] = round(
            modes[mode_key]["ops_per_sec"] / baseline, 4
        )
    return modes


def run_recovery_bench(tail_lengths=(0, 4_000, 16_000), batch_size=BATCH_SIZE):
    """Recovery wall time as the un-checkpointed WAL tail grows."""
    rows = []
    for tail in tail_lengths:
        root = Path(tempfile.mkdtemp(prefix="repro-bench-recovery-"))
        try:
            durability = DurabilityManager(root / "store", sync="none")
            initial = [(key, key) for key in range(4_000)]
            router = ShardRouter.build(
                initial,
                family="olc",
                num_shards=4,
                partitioning="range",
                durability=durability,
                max_workers=0,
            )
            router.checkpoint()  # the tail below is exactly what replay must cover
            base = len(initial)
            for start in range(0, tail, batch_size):
                router.put_many(
                    [(base + offset, offset) for offset in range(start, start + batch_size)]
                )
            router.close()
            begin = time.perf_counter()
            recovered = ShardRouter.recover(
                DurabilityManager(root / "store", sync="none"), family="olc"
            )
            elapsed = time.perf_counter() - begin
            summary = recovered.last_recovery or {}
            recovered.close()
            rows.append(
                {
                    "wal_tail_records": tail,
                    "recovery_seconds": round(elapsed, 4),
                    "frames_replayed": summary.get("frames_replayed", 0),
                    "replay_frames_per_sec": (
                        round(summary.get("frames_replayed", 0) / elapsed, 1)
                        if elapsed > 0
                        else 0.0
                    ),
                }
            )
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return rows


def run_durability_bench(num_keys=DEFAULT_KEYS, batch_size=BATCH_SIZE):
    """Run both sweeps; returns the BENCH_PR6.json payload."""
    modes = run_throughput_bench(num_keys=num_keys, batch_size=batch_size)
    recovery = run_recovery_bench()
    return {
        "suite": "PR6 durability bench",
        "keys": num_keys,
        "batch_size": batch_size,
        "write_throughput": modes,
        "recovery": recovery,
        "headline": {
            "group_commit_retention": modes["wal_group_commit"]["retention_vs_wal_off"],
            "required": GROUP_COMMIT_RETENTION_REQUIRED,
        },
    }


def format_report(payload):
    lines = [
        f"durability bench @ {payload['keys']} writes "
        f"(batches of {payload['batch_size']})"
    ]
    for mode_key, stats in payload["write_throughput"].items():
        lines.append(
            f"{mode_key:>20s}  {stats['ops_per_sec']:>12,.0f} ops/s  "
            f"({stats['retention_vs_wal_off']:.0%} of no-WAL)"
        )
    for row in payload["recovery"]:
        lines.append(
            f"recovery @ tail {row['wal_tail_records']:>6d}: "
            f"{row['recovery_seconds']:.3f}s "
            f"({row['replay_frames_per_sec']:,.0f} frames/s replayed)"
        )
    return "\n".join(lines)


def check_headline(payload):
    """The acceptance gate: group commit keeps >= 50% of no-WAL writes."""
    headline = payload["headline"]
    assert headline["group_commit_retention"] >= GROUP_COMMIT_RETENTION_REQUIRED, (
        f"group-commit WAL retains only "
        f"{headline['group_commit_retention']:.0%} of no-WAL write throughput; "
        f"the durability claim requires >= {GROUP_COMMIT_RETENTION_REQUIRED:.0%}"
    )
    return headline["group_commit_retention"]


def check_against_baseline(payload, baseline, tolerance):
    """Fail on retention-ratio regressions beyond ``tolerance``.

    Only ratios are compared (machine-independent); modes present in
    the baseline but missing from the current run count as regressions.
    """
    failures = []
    for mode_key, stats in baseline.get("write_throughput", {}).items():
        current = payload["write_throughput"].get(mode_key)
        if current is None:
            failures.append(f"mode={mode_key}: missing from current run")
            continue
        floor = stats["retention_vs_wal_off"] * (1.0 - tolerance)
        if current["retention_vs_wal_off"] < floor:
            failures.append(
                f"mode={mode_key}: retention "
                f"{current['retention_vs_wal_off']:.2f} fell below {floor:.2f} "
                f"(baseline {stats['retention_vs_wal_off']:.2f} "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures


@pytest.mark.perf
def test_durability_bench_headline():
    payload = run_durability_bench(num_keys=8_000)
    print(format_report(payload))
    assert check_headline(payload) >= GROUP_COMMIT_RETENTION_REQUIRED


@pytest.mark.faults
def test_crash_campaign_smoke():
    summary = experiment_crash_campaign(
        num_crashes=25, num_keys=600, assert_coverage=False, seed=0xC4A5
    )
    assert summary["crashes"] >= 25
    assert summary["lost_writes"] == 0
    assert summary["phantom_writes"] == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Durability bench (PR 6).")
    parser.add_argument("--keys", type=int, default=DEFAULT_KEYS)
    parser.add_argument("--batch-size", type=int, default=BATCH_SIZE)
    parser.add_argument(
        "--out",
        type=Path,
        default=RESULT_FILE,
        help=f"result JSON path (default {RESULT_FILE})",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing the result JSON"
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="baseline JSON to compare retention ratios against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed relative retention regression vs the baseline (default 0.30)",
    )
    parser.add_argument(
        "--crash-campaign",
        type=int,
        default=0,
        metavar="N",
        help="also run the crash-recovery fault campaign with N injected crashes",
    )
    parser.add_argument(
        "--slo",
        action="append",
        default=[],
        metavar="EXPR",
        help="objective over the crash-campaign summary, e.g. "
        "'lost_writes==0' or 'frames_replayed>0' (repeatable; fails the "
        "run on violation)",
    )
    args = parser.parse_args(argv)
    slo_checks = [parse_check(expression) for expression in args.slo]
    if slo_checks and args.crash_campaign <= 0:
        parser.error("--slo requires --crash-campaign N")
    payload = run_durability_bench(num_keys=args.keys, batch_size=args.batch_size)
    print(format_report(payload))
    check_headline(payload)
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = check_against_baseline(payload, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print(
            f"no retention regressions vs {args.check} "
            f"(tolerance {args.tolerance:.0%})"
        )
    if args.crash_campaign > 0:
        summary = experiment_crash_campaign(num_crashes=args.crash_campaign)
        print(
            f"crash campaign: {summary['crashes']} crashes over "
            f"{summary['rounds']} rounds "
            f"({summary['concurrent_crashes']} in concurrent rounds, "
            f"{summary['recovery_crashes']} during recovery itself), "
            f"{summary['torn_tails_recovered']} torn tails recovered, "
            f"{summary['frames_replayed']} frames replayed, "
            f"{summary['lost_writes']} lost acknowledged writes"
        )
        payload["crash_campaign"] = summary
        if summary["lost_writes"] or summary["phantom_writes"]:
            print("REGRESSION: crash campaign lost or fabricated writes")
            return 1
        if slo_checks:
            values = {
                key: float(value)
                for key, value in summary.items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            }
            violations = evaluate_checks(values, slo_checks)
            for violation in violations:
                print(f"REGRESSION: {violation}")
            if violations:
                return 1
            print(f"slo ok: {len(slo_checks)} campaign check(s) passed")
    if not args.no_write:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
