"""Serialization benchmarks: FST and trained Hybrid Trie persistence.

Static succinct structures are built offline and shipped to query nodes;
the relevant costs are blob size (vs the modeled in-memory size), load
time (vs rebuild time), and fidelity (answers and byte-identity after a
round trip).
"""

import random

from conftest import banner, run_once

from repro.core.budget import MemoryBudget
from repro.fst import FST
from repro.harness.report import format_table, human_bytes
from repro.hybridtrie import HybridTrie

NUM_KEYS = 20_000


def make_pairs(seed=0):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(2**44), NUM_KEYS))
    return [(key.to_bytes(8, "big"), index) for index, key in enumerate(keys)]


def test_fst_serialization_roundtrip(benchmark):
    import time

    pairs = make_pairs()

    def run():
        build_start = time.perf_counter()
        fst = FST(pairs)
        build_seconds = time.perf_counter() - build_start
        blob = fst.to_bytes()
        load_start = time.perf_counter()
        loaded = FST.from_bytes(blob)
        load_seconds = time.perf_counter() - load_start
        return fst, blob, loaded, build_seconds, load_seconds

    fst, blob, loaded, build_seconds, load_seconds = run_once(benchmark, run)

    rows = [
        ("modeled in-memory size", human_bytes(fst.size_bytes())),
        ("serialized blob", human_bytes(len(blob))),
        ("build time", f"{build_seconds * 1000:.0f} ms"),
        ("load time", f"{load_seconds * 1000:.1f} ms"),
        ("load speedup vs rebuild", f"{build_seconds / max(load_seconds, 1e-9):.0f}x"),
    ]
    print(banner(f"FST persistence over {NUM_KEYS:,} keys"))
    print(format_table(["metric", "value"], rows))

    # The blob must stay in the same regime as the modeled size (the
    # rank directories are rebuilt on load, so the blob is smaller).
    assert len(blob) < 1.2 * fst.size_bytes()
    # Loading is far cheaper than rebuilding from keys.
    assert load_seconds < build_seconds / 3
    # Fidelity.
    for key, value in pairs[::511]:
        assert loaded.lookup(key) == value
    assert loaded.to_bytes() == blob


def test_trained_trie_layout_ships(benchmark):
    pairs = make_pairs(seed=1)

    def run():
        trie = HybridTrie(pairs, art_levels=2, adaptive=False)
        hot = [pairs[index % 80][0] for index in range(4000)]
        trie.train(hot, budget=MemoryBudget.absolute(trie.size_bytes() + 40_000))
        blob = trie.to_bytes()
        loaded = HybridTrie.from_bytes(blob, adaptive=False)
        return trie, blob, loaded

    trie, blob, loaded = run_once(benchmark, run)
    print(banner("Trained Hybrid Trie persistence"))
    print(format_table(
        ["metric", "value"],
        [
            ("expanded branches", trie.expanded_branch_count()),
            ("blob size", human_bytes(len(blob))),
            ("loaded expanded branches", loaded.expanded_branch_count()),
        ],
    ))

    assert trie.expanded_branch_count() >= 1
    assert loaded.expanded_branch_count() == trie.expanded_branch_count()
    assert loaded.size_bytes() == trie.size_bytes()
    for key, value in pairs[::307]:
        assert loaded.lookup(key) == value
