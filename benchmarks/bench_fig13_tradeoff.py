"""Figure 13: space-performance trade-off under the cost C = P * S."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_fig13
from repro.harness.report import format_table


def test_fig13_cost_function(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_fig13(num_keys=40_000, num_ops=50_000, interval_ops=10_000),
    )
    print(banner("Figure 13 — cost C = latency x size (lower is better)"))
    print(format_table(result["headers"], result["rows"]))

    by_key = {(row[0], row[1]): row for row in result["rows"]}
    for workload in ("W1.2", "W1.3"):
        costs = {
            name: by_key[(workload, name)][4]
            for name in ("gapped", "packed", "succinct", "ahi", "pretrained")
        }
        # The compact and adaptive variants beat the plain gapped tree on C.
        assert costs["succinct"] < costs["gapped"]
        assert costs["ahi"] < costs["gapped"]
        assert costs["pretrained"] < costs["gapped"]
    # For the highly skewed lognormal workload the adaptive tree achieves
    # the best (or tied-best) trade-off, as in the paper.
    lognormal_costs = {
        name: by_key[("W1.3", name)][4]
        for name in ("gapped", "packed", "succinct", "ahi", "pretrained")
    }
    best = min(lognormal_costs.values())
    assert lognormal_costs["ahi"] <= best * 1.4
