"""Table 4: lines of code — index logic vs workload tracking."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_table4
from repro.harness.report import format_table


def test_tab4_lines_of_code(benchmark):
    result = run_once(benchmark, experiment_table4)
    print(banner("Table 4 — LoC of lookup/insert, logic vs tracking"))
    print(format_table(result["headers"], result["rows"]))
    print("paper: tracking adds at most 3/5 lines to lookups/inserts")

    rows = {row[0]: row for row in result["rows"]}
    # Non-adaptive structures carry zero tracking code.
    assert rows["B+-tree"][2] == 0
    assert rows["ART"][2] == 0
    assert rows["FST"][2] == 0
    # The adaptive variants add only a handful of tracking lines to the
    # lookup path (the paper's point: integration is cheap).
    assert 1 <= rows["AHI-BTree"][2] <= 8
    assert 1 <= rows["AHI-Trie"][2] <= 8
    # ...and the logic itself stays in the same ballpark.
    assert rows["AHI-BTree"][1] <= rows["B+-tree"][1] + 6
