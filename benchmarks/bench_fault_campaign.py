"""Fault-injection campaign: the robustness layer under thousands of faults.

Not a paper figure.  Runs ``experiment_fault_campaign`` — mixed workloads
on every index family while migrations and (de)serialization raise
injected faults — and asserts the headline robustness claim: at least a
thousand faults fired, yet every structural invariant holds, no key was
lost or invented, and the manager surfaced the failures (retries,
quarantined units, adaptation disabling itself) through its event log.

Also runnable directly for a quick smoke pass::

    PYTHONPATH=src python benchmarks/bench_fault_campaign.py --faults 200
"""

import argparse

import pytest
from conftest import banner, run_once

from repro.harness.experiments import experiment_fault_campaign
from repro.harness.report import format_table

FAULT_TARGET = 1_200


def check_campaign(result, fault_target):
    assert result["total_faults"] >= fault_target, (
        f"campaign injected only {result['total_faults']} faults, "
        f"wanted >= {fault_target}"
    )
    assert result["total_violations"] == 0, (
        f"{result['total_violations']} invariant violations survived the campaign"
    )
    assert result["total_lost_keys"] == 0, (
        f"{result['total_lost_keys']} keys lost or invented under faults"
    )
    assert result["quarantine_events"] > 0, "no unit was ever quarantined"
    assert result["disable_events"] > 0, "adaptation never disabled itself"
    assert result["degradation_campaign_degraded"]
    assert result["degradation_campaign_quarantined"] > 0


@pytest.mark.faults
def test_fault_campaign(benchmark):
    result = run_once(benchmark, lambda: experiment_fault_campaign(faults=FAULT_TARGET))
    print(banner("fault campaign: >= 1000 injected faults, zero damage"))
    print(format_table(result["headers"], result["rows"]))
    print(
        f"total faults {result['total_faults']}, "
        f"violations {result['total_violations']}, "
        f"lost keys {result['total_lost_keys']}, "
        f"quarantine events {result['quarantine_events']}, "
        f"disable events {result['disable_events']}"
    )
    check_campaign(result, FAULT_TARGET)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the fault-injection campaign without pytest."
    )
    parser.add_argument(
        "--faults",
        type=int,
        default=FAULT_TARGET,
        help=f"minimum number of injected faults (default {FAULT_TARGET})",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    result = experiment_fault_campaign(faults=args.faults, seed=args.seed)
    print(format_table(result["headers"], result["rows"]))
    print(
        f"total faults {result['total_faults']}, "
        f"violations {result['total_violations']}, "
        f"lost keys {result['total_lost_keys']}"
    )
    check_campaign(result, args.faults)
    print("fault campaign passed: zero invariant violations, zero lost keys")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
