"""Figure 19: trie lineup on e-mail keys — points (W6.1) and scans (W6.2)."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_fig19
from repro.harness.report import format_table


def test_fig19_email_tries(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_fig19(
            num_keys=8_000, num_ops=10_000, interval_ops=2_500, art_levels=8
        ),
    )
    print(banner("Figure 19 — tries on e-mail addresses (W6.1 points, W6.2 scans)"))
    print(format_table(result["headers"], result["rows"]))

    by_key = {(row[0], row[1]): row for row in result["rows"]}
    for workload in ("W6.1 points", "W6.2 scans"):
        art = by_key[(workload, "art")]
        fst = by_key[(workload, "fst")]
        adaptive = by_key[(workload, "ahi-trie")]
        trained = by_key[(workload, "pretrained")]
        # The frontier: ART fastest/largest, FST smallest/slowest, hybrids
        # in between on both axes.
        assert art[2] < adaptive[2] < fst[2] * 1.02
        assert fst[4] <= adaptive[4] < art[4]
        assert fst[4] <= trained[4] < art[4]
    # On the skewed point workload the hybrids buy real latency over FST.
    points_fst = by_key[("W6.1 points", "fst")][2]
    points_adaptive = by_key[("W6.1 points", "ahi-trie")][2]
    assert points_adaptive < 0.95 * points_fst
