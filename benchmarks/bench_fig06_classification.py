"""Figure 6: classification cost per sample and sample-map size."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_fig6
from repro.harness.report import format_table


def test_fig06_classification_cost(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_fig6(
            unique_sample_counts=(1_000, 2_000, 5_000, 10_000),
            ks=(250, 500, 1_000, 2_000, 4_000, 6_000),
        ),
    )
    print(banner("Figure 6 — top-k classification latency and map size"))
    print(format_table(result["headers"], result["rows"]))

    rows = result["rows"]
    by_key = {(row[0], row[1]): row for row in rows}
    # Heap work peaks around k ~ u/2 and drops for k near u (the paper's
    # explanation of the latency bump).
    u = 10_000
    mid = by_key[(u, 4_000)][3]
    small = by_key[(u, 250)][3]
    full = by_key[(u, 6_000)][3]
    assert mid > small
    assert mid >= full * 0.8
    # Map size is linear in the number of unique samples, independent of k.
    assert by_key[(10_000, 250)][4] == 10 * by_key[(1_000, 250)][4]
    # Single-pass bound: heap operations never exceed u * 2.
    assert all(row[3] <= row[0] * 2 for row in rows)
