"""Sharded index service bench (PR 4).

Replays the same batched lookup + scan workload against a
:class:`~repro.service.router.ShardRouter` at 1/2/4/8 shards and writes
the machine-readable ``BENCH_PR4.json`` at the repo root.  The headline
claim: with 4 OLC shards the **modeled** aggregate lookup throughput is
at least 2x a single shard.  Wall-clock throughput is reported alongside
but not gated — Python's GIL caps real parallel speedup, so the modeled
figure (per-shard counter events priced by the cost model, aggregate
time = max over shards) carries the scalability claim, the same idiom
as the Figure-18 concurrency bench.

Regression checking compares *modeled speedup ratios* (N shards / 1
shard), not absolute ops/sec — ratios are stable across machines.

``--fault-campaign`` additionally runs a randomized online shard
split/merge campaign under fault injection and fails on any lost key.

Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py --keys 20000
    PYTHONPATH=src python benchmarks/bench_service.py \
        --keys 4000 --check BENCH_PR4.json --tolerance 0.30

or through pytest (reduced scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

import argparse
import json
import random
from pathlib import Path

import pytest

from repro.faults.injector import FaultInjector, InjectedFault
from repro.harness.experiments_service import experiment_service_bench
from repro.service.partition import PartitionError
from repro.service.router import ShardRouter

DEFAULT_KEYS = 20_000
HEADLINE_SHARDS = 4
HEADLINE_SPEEDUP_REQUIRED = 2.0
REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_PR4.json"


def run_service_bench(num_keys=DEFAULT_KEYS, family="olc", partitioning="hash"):
    """Run the shard-count sweep; returns the BENCH_PR4.json payload."""
    result = experiment_service_bench(
        num_keys=num_keys,
        num_lookups=max(1000, num_keys * 3 // 2),
        family=family,
        partitioning=partitioning,
    )
    columns = result["headers"]
    shards = {}
    for row in result["rows"]:
        entry = dict(zip(columns, row))
        shards[str(entry["shards"])] = {
            "wall_mops": entry["wall_Mops"],
            "modeled_mops": entry["modeled_Mops"],
            "modeled_speedup": entry["modeled_speedup"],
            "imbalance": entry["imbalance"],
            "scan_wall_mops": entry["scan_wall_Mops"],
        }
    return {
        "suite": "PR4 sharded index service bench",
        "keys": num_keys,
        "family": family,
        "partitioning": partitioning,
        "shards": shards,
        "headline": {
            "shards": HEADLINE_SHARDS,
            "modeled_speedup": shards[str(HEADLINE_SHARDS)]["modeled_speedup"],
            "required": HEADLINE_SPEEDUP_REQUIRED,
        },
    }


def run_fault_campaign(num_keys=5_000, rounds=60, seed=0xFA11):
    """Randomized online split/merge under fault injection.

    Every round attempts a split or a merge with faults armed at the
    ``service.*`` sites, then cross-checks a random sample of keys.
    Returns a summary; ``lost_keys`` must be zero.
    """
    rng = random.Random(seed)
    pairs = [(key * 2, key) for key in range(num_keys)]
    expected = dict(pairs)
    lost = attempted = completed = 0
    with ShardRouter.build(pairs, num_shards=2, partitioning="range") as router:
        with FaultInjector(site="service.*", rate=0.35, seed=seed) as injector:
            for _ in range(rounds):
                attempted += 1
                try:
                    if rng.random() < 0.5 and router.num_shards > 1:
                        router.merge_shards(rng.randrange(router.num_shards - 1))
                    else:
                        router.split_shard(rng.randrange(router.num_shards))
                    completed += 1
                except (InjectedFault, PartitionError):
                    pass
                for key in rng.sample(range(num_keys * 2), 50):
                    if router.get(key) != expected.get(key):
                        lost += 1
            router.verify()
            faults = injector.failures_injected
        final_shards = router.num_shards
        final = router.scan(-1, num_keys * 4)
    if sorted(expected.items()) != final:
        lost += abs(len(expected) - len(final)) or 1
    return {
        "rounds": attempted,
        "operations_completed": completed,
        "faults_injected": faults,
        "final_shards": final_shards,
        "lost_keys": lost,
    }


def format_report(payload):
    lines = [
        f"service bench @ {payload['keys']} keys "
        f"({payload['family']}, {payload['partitioning']} partitioning)"
    ]
    for shard_count, stats in payload["shards"].items():
        lines.append(
            f"{shard_count:>2s} shards  wall {stats['wall_mops']:>7.3f} Mops  "
            f"modeled {stats['modeled_mops']:>8.2f} Mops  "
            f"speedup {stats['modeled_speedup']:.2f}x  "
            f"imbalance {stats['imbalance']:.2f}"
        )
    return "\n".join(lines)


def check_headline(payload):
    """The acceptance claim: >= 2x modeled lookup throughput at 4 shards."""
    headline = payload["headline"]
    assert headline["modeled_speedup"] >= HEADLINE_SPEEDUP_REQUIRED, (
        f"modeled speedup at {headline['shards']} shards is "
        f"{headline['modeled_speedup']:.2f}x; the service claim requires "
        f">= {HEADLINE_SPEEDUP_REQUIRED}x over a single shard"
    )
    return headline["modeled_speedup"]


def check_against_baseline(payload, baseline, tolerance):
    """Fail on modeled-speedup regressions beyond ``tolerance``.

    Only speedup ratios are compared (machine-independent); shard counts
    present in the baseline but missing from the current run count as
    regressions.
    """
    failures = []
    for shard_count, stats in baseline.get("shards", {}).items():
        current = payload["shards"].get(shard_count)
        if current is None:
            failures.append(f"shards={shard_count}: missing from current run")
            continue
        floor = stats["modeled_speedup"] * (1.0 - tolerance)
        if current["modeled_speedup"] < floor:
            failures.append(
                f"shards={shard_count}: modeled speedup "
                f"{current['modeled_speedup']:.2f}x fell below {floor:.2f}x "
                f"(baseline {stats['modeled_speedup']:.2f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures


@pytest.mark.perf
def test_service_bench_headline():
    payload = run_service_bench(num_keys=4_000)
    print(format_report(payload))
    assert check_headline(payload) >= HEADLINE_SPEEDUP_REQUIRED


@pytest.mark.faults
def test_service_fault_campaign_loses_nothing():
    summary = run_fault_campaign(num_keys=2_000, rounds=30)
    assert summary["faults_injected"] > 0
    assert summary["lost_keys"] == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Sharded service bench (PR 4).")
    parser.add_argument("--keys", type=int, default=DEFAULT_KEYS)
    parser.add_argument("--family", default="olc")
    parser.add_argument("--partitioning", default="hash")
    parser.add_argument(
        "--out",
        type=Path,
        default=RESULT_FILE,
        help=f"result JSON path (default {RESULT_FILE})",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing the result JSON"
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="baseline JSON to compare modeled speedups against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed relative speedup regression vs the baseline (default 0.30)",
    )
    parser.add_argument(
        "--fault-campaign",
        action="store_true",
        help="also run the randomized split/merge fault campaign",
    )
    args = parser.parse_args(argv)
    payload = run_service_bench(
        num_keys=args.keys, family=args.family, partitioning=args.partitioning
    )
    print(format_report(payload))
    check_headline(payload)
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = check_against_baseline(payload, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print(
            f"no modeled-speedup regressions vs {args.check} "
            f"(tolerance {args.tolerance:.0%})"
        )
    if args.fault_campaign:
        summary = run_fault_campaign(num_keys=max(1000, args.keys // 4))
        print(
            f"fault campaign: {summary['rounds']} rounds, "
            f"{summary['operations_completed']} splits/merges completed, "
            f"{summary['faults_injected']} faults injected, "
            f"{summary['lost_keys']} lost keys"
        )
        if summary["lost_keys"]:
            print("REGRESSION: split/merge campaign lost keys")
            return 1
    if not args.no_write:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
