"""Figure 5: relative sampling overhead vs skip length."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_fig5
from repro.harness.report import format_table


def test_fig05_sampling_overhead(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_fig5(
            num_keys=50_000,
            num_lookups=150_000,
            skip_lengths=(0, 1, 2, 3, 4, 5, 10, 15, 20),
        ),
    )
    print(banner("Figure 5 — sampling overhead vs skip length (baseline: Gapped tree)"))
    print(format_table(result["headers"], result["rows"]))
    print(f"baseline modeled latency: {result['baseline_ns']:.1f} ns/lookup")

    overhead = {row[0]: row[1] for row in result["rows"]}
    filtered = {row[0]: row[2] for row in result["rows"]}
    # Sampling every access is very expensive; skip 20 nearly free.
    assert overhead[0] > 40  # paper: 61.9%
    assert overhead[20] < 15  # paper: 1.6%
    # Overhead decreases monotonically (allowing small noise).
    assert overhead[0] > overhead[5] > overhead[20]
    # At the operating range the Bloom filter pays for itself.
    assert filtered[20] <= overhead[20] * 1.05
