"""Online-appendix experiments the paper references but does not print.

The paper twice defers to its online appendix: Figure 2's precision
holds "for other distributions as well", and Figure 5's overhead is
similar "for other workloads".  These benchmarks regenerate both.
"""

from conftest import banner, run_once

from repro.harness.experiments import (
    experiment_appendix_fig2_distributions,
    experiment_appendix_fig5_workloads,
)
from repro.harness.report import format_table


def test_appendix_fig2_all_distributions(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_appendix_fig2_distributions(
            num_items=100_000, workload_size=150_000, k=500
        ),
    )
    print(banner("Appendix (Fig. 2) — top-k precision across distributions"))
    print(format_table(result["headers"], result["rows"]))

    by_key = {(row[0], row[1]): row for row in result["rows"]}
    for distribution in ("zipf", "normal", "lognormal", "uniform"):
        tight = by_key[(distribution, "2%")]
        loose = by_key[(distribution, "10%")]
        # Recovered mass approaches the true mass as epsilon shrinks.
        assert tight[4] >= loose[4] * 0.98
        assert tight[4] >= 0.8 * tight[3]


def test_appendix_fig5_all_workloads(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_appendix_fig5_workloads(
            num_keys=30_000, num_lookups=60_000, skip_lengths=(0, 5, 20)
        ),
    )
    print(banner("Appendix (Fig. 5) — sampling overhead across workloads"))
    print(format_table(result["headers"], result["rows"]))

    by_key = {(row[0], row[1]): row[2] for row in result["rows"]}
    for distribution in ("zipf", "normal", "lognormal", "uniform"):
        # The hyperbolic skip amortization holds for every distribution.
        assert by_key[(distribution, 0)] > by_key[(distribution, 5)]
        assert by_key[(distribution, 5)] > by_key[(distribution, 20)]
        assert by_key[(distribution, 20)] < 15
