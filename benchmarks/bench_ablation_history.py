"""Ablation: classification-history depth before compaction.

The default CSHF waits for two consecutive cold classifications before
compacting (one missed sample may be noise).  Compacting on the first
cold phase thrashes under noisy skew; waiting much longer wastes memory
after the hot set moves.
"""

import numpy as np
from conftest import banner, run_once

from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.core.heuristics import make_threshold_heuristic
from repro.harness.experiments import scaled_manager_config
from repro.harness.report import format_table
from repro.harness.runner import IntKeyIndexAdapter, RunResult, run_operations
from repro.sim.costmodel import CostModel
from repro.workloads.datasets import osm_like_keys
from repro.workloads.spec import w11
from repro.workloads.stream import generate_phase

NUM_KEYS = 20_000
OPS = 30_000


def run_arm(name, cold_phases, keys, phases, cost_model):
    pairs = [(int(key), index) for index, key in enumerate(keys)]
    config = scaled_manager_config()
    config.heuristic = make_threshold_heuristic(
        fast_encoding=LeafEncoding.GAPPED,
        compact_encoding=LeafEncoding.SUCCINCT,
        cold_phases_to_compact=cold_phases,
    )
    tree = AdaptiveBPlusTree.bulk_load_adaptive(
        pairs, leaf_capacity=32, manager_config=config
    )
    adapter = IntKeyIndexAdapter(tree)
    result = RunResult()
    for operations in phases:
        run_operations(adapter, operations, cost_model, 10_000, result)
    migrations = tree.manager.counters.expansions + tree.manager.counters.compactions
    return (name, round(result.modeled_ns_per_op, 1), migrations, result.final_index_bytes)


def test_ablation_history_depth(benchmark):
    rng = np.random.default_rng(0)
    keys = osm_like_keys(NUM_KEYS, rng)
    cost_model = CostModel()
    phases = [
        generate_phase(keys, w11(alpha=1.2, num_ops=OPS).phases[0], rng=1),
        generate_phase(keys[::-1].copy(), w11(alpha=1.2, num_ops=OPS).phases[0], rng=2),
    ]

    def run_all():
        return [
            run_arm("compact after 1 cold phase", 1, keys, phases, cost_model),
            run_arm("compact after 2 (paper default)", 2, keys, phases, cost_model),
            run_arm("compact after 6", 6, keys, phases, cost_model),
        ]

    rows = run_once(benchmark, run_all)
    print(banner("Ablation — cold phases required before compaction"))
    print(format_table(["arm", "modeled_ns_per_op", "migrations", "final_bytes"], rows))

    one, two, six = rows
    # Very patient compaction holds memory longer after the shift.
    assert six[3] >= two[3]
    # Hair-trigger compaction performs more migrations overall (thrash).
    assert one[2] >= two[2]
