"""Figure 17: AHI-BTree vs the Dual-Stage hybrid index baseline."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_fig17
from repro.harness.report import format_table


def test_fig17_vs_dualstage(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_fig17(num_keys=50_000, num_ops=40_000, interval_ops=8_000),
    )
    print(banner("Figure 17 — AHI-BTree vs Dual-Stage (W2 and W4)"))
    print(format_table(result["headers"], result["rows"]))

    by_key = {(row[0], row[1]): row for row in result["rows"]}

    def latency(workload, name):
        return by_key[(workload, name)][2]

    def size(workload, name):
        return by_key[(workload, name)][3]

    # W4 (skewed YCSB reads+scans): the adaptive tree leverages skew that
    # the dual-stage design cannot (its fast stage holds *recent* keys,
    # not *hot* keys).
    assert latency("W4", "ahi") < latency("W4", "dualstage-succinct")
    assert latency("W4", "ahi") < latency("W4", "dualstage-packed")
    assert size("W4", "ahi") < size("W4", "dualstage-packed")
    # Dual-stage packed buys no latency over dual-stage succinct here but
    # costs far more space.
    assert size("W4", "dualstage-packed") > 2 * size("W4", "dualstage-succinct")
    # W2 (uniform reads): nobody can leverage skew; the adaptive tree still
    # lands between gapped and succinct on both axes.
    assert latency("W2", "gapped") < latency("W2", "ahi") < latency("W2", "succinct") * 1.1
    assert size("W2", "succinct") < size("W2", "ahi") < size("W2", "gapped")
