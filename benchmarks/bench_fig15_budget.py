"""Figure 15: the memory-budget sweep on consecutive keys."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_fig15
from repro.harness.report import format_table


def test_fig15_memory_budget(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_fig15(
            num_keys=30_000,
            num_ops=60_000,
            budget_fractions=(0.35, 0.45, 0.55, 0.70, 0.85, 1.0),
        ),
    )
    print(banner("Figure 15 — AHI-BTree under increasing memory budgets"))
    print(format_table(result["headers"], result["rows"]))
    print(f"bounds: succinct {result['succinct_bytes']:,}B, gapped {result['gapped_bytes']:,}B")

    rows = result["rows"]
    latencies = [row[1] for row in rows]
    sizes = [row[2] for row in rows]
    shares = [row[3] for row in rows]
    # More budget -> more expanded leaves, never smaller.
    assert shares == sorted(shares)
    assert sizes == sorted(sizes)
    # More budget -> latency improves (monotone within noise).
    assert latencies[-1] <= latencies[0]
    # Diminishing returns: the first budget step buys more than the last.
    first_gain = latencies[0] - latencies[1]
    last_gain = latencies[-2] - latencies[-1]
    assert first_gain >= last_gain
    # Budgets are respected.
    for row in rows:
        assert row[2] <= row[0] * 1.05
