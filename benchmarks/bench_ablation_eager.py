"""Ablation: eager expand-on-insert of Succinct leaves (Section 5.2).

AHI-BTree migrates a Succinct leaf to Gapped the moment an insert hits it
and defers re-compaction until it is cold.  Without eager expansion every
insert into a compact leaf pays the full re-encode.  A write-heavy skewed
workload makes the difference stark.
"""

import numpy as np
from conftest import banner, run_once

from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.harness.experiments import scaled_manager_config
from repro.harness.report import format_table
from repro.harness.runner import IntKeyIndexAdapter, RunResult, run_operations
from repro.sim.costmodel import CostModel
from repro.workloads.datasets import osm_like_keys
from repro.workloads.spec import w51
from repro.workloads.stream import generate_phase

NUM_KEYS = 20_000
OPS = 30_000


def run_arm(name, eager, keys, operations, cost_model):
    pairs = [(int(key), index) for index, key in enumerate(keys)]
    tree = AdaptiveBPlusTree.bulk_load_adaptive(
        pairs,
        leaf_capacity=32,
        manager_config=scaled_manager_config(),
        eager_insert_expansion=eager,
    )
    result = RunResult()
    run_operations(IntKeyIndexAdapter(tree), operations, cost_model, 10_000, result)
    return (
        name,
        round(result.modeled_ns_per_op, 1),
        tree.counters.get("eager_expansion:succinct"),
        tree.counters.get("leaf_write:succinct"),
        result.final_index_bytes,
    )


def test_ablation_eager_insert_expansion(benchmark):
    rng = np.random.default_rng(0)
    keys = osm_like_keys(NUM_KEYS, rng)
    cost_model = CostModel()
    operations = generate_phase(keys, w51(alpha=1.0, num_ops=OPS).phases[0], rng=1)

    def run_all():
        return [
            run_arm("eager expansion (paper)", True, keys, operations, cost_model),
            run_arm("no eager expansion", False, keys, operations, cost_model),
        ]

    rows = run_once(benchmark, run_all)
    print(banner("Ablation — eager expand-on-insert"))
    print(format_table(
        ["arm", "modeled_ns_per_op", "eager_expansions", "succinct_writes", "final_bytes"],
        rows,
    ))

    eager_row, lazy_row = rows
    # Without eager expansion, writes keep hammering succinct leaves.
    assert lazy_row[3] > 5 * max(1, eager_row[3])
    # The paper's design is faster on the write-heavy workload.
    assert eager_row[1] < lazy_row[1]
    # The price: eager expansion allocates more memory (paper: +46% under
    # low skew).
    assert eager_row[4] >= lazy_row[4]
