"""Figure 16: write-dominated then scan-dominated phases (W5.1 -> W5.2)."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_fig16
from repro.harness.report import format_series


def test_fig16_write_scan_phases(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_fig16(
            num_keys=30_000, ops_per_phase=40_000, interval_ops=4_000
        ),
    )
    boundary = result["intervals_per_phase"]
    print(banner("Figure 16 — W5.1 writes then W5.2 scans"))
    for name, series in result["series"].items():
        print("  " + format_series(name.ljust(9), series, unit="ns"))
    print("  expansions (cum):", result["expansions"])
    print("  compactions (cum):", result["compactions"])
    events = result["adaptation_events"]
    print(f"  adaptation events: {len(events)} phases, "
          f"{sum(event['migration_failures'] for event in events)} failures")

    expansions = result["expansions"]
    compactions = result["compactions"]
    # The write phase eagerly expands succinct leaves.
    assert expansions[boundary - 1] > 0
    # The scan phase compacts the no-longer-written leaves again.
    assert compactions[-1] > compactions[boundary - 1] or compactions[-1] > 0
    # Index size shrinks again during the scan phase.
    size_series = result["size_series"]["ahi"]
    assert size_series[-1] <= max(size_series[boundary - 2 : boundary + 1])
    # Succinct pays heavily for writes: during W5.1 the succinct tree is
    # far slower than the adaptive one.
    succinct_w51 = result["series"]["succinct"][: boundary]
    ahi_w51 = result["series"]["ahi"][: boundary]
    assert sum(ahi_w51) < sum(succinct_w51)
    # Event-log compactions agree with the adapter's cumulative series
    # (eager insert-time expansions are counted only by the latter, so
    # only the compaction column matches exactly).
    assert sum(event["compactions"] for event in events) == compactions[-1]
