"""Shared helpers for the paper-reproduction benchmarks.

Every ``bench_*`` module regenerates one table or figure of the paper at
a laptop scale: it runs the corresponding harness experiment, prints the
paper-shaped rows/series (so the output is directly comparable with the
paper; EXPERIMENTS.md records the side-by-side), asserts the qualitative
shape, and reports the run through pytest-benchmark.
"""

from __future__ import annotations

import pytest


def banner(title: str) -> str:
    line = "=" * max(60, len(title) + 4)
    return f"\n{line}\n  {title}\n{line}"


@pytest.fixture
def show():
    """Print that survives pytest capture (-s not required thanks to -rA?);
    benchmarks print directly — run pytest with -s to see the tables."""

    def _show(*parts: object) -> None:
        print(*parts)

    return _show


def run_once(benchmark, func):
    """Time ``func`` exactly once through pytest-benchmark.

    These experiment drivers take seconds; statistical repetition would
    make the suite unusably slow while adding nothing (the modeled
    numbers inside the experiments are deterministic).
    """
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
