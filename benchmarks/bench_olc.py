"""Optimistic Lock Coupling vs coarse locking (Section 4.1.5 substrate).

The paper synchronizes the Hybrid B+-tree with OLC because it "scales
significantly better on multi-core systems [than lock coupling], because
it minimizes the number of acquired locks".  Under Python's GIL no real
scaling is possible, so this benchmark verifies the *protocol* property
instead: OLC acquires zero locks on the read path (restarts replace
locks), while a coarse-locked tree takes one lock per operation.
"""

import random
import threading

from conftest import banner, run_once

from repro.bptree.leaves import LeafEncoding
from repro.bptree.olc import OlcBPlusTree
from repro.bptree.tree import BPlusTree
from repro.harness.report import format_table

NUM_KEYS = 20_000
OPS_PER_THREAD = 4_000
THREADS = 4


class CoarseLockedTree:
    """The baseline: every operation under one mutex."""

    def __init__(self, pairs):
        self._tree = BPlusTree.bulk_load(pairs, LeafEncoding.GAPPED, leaf_capacity=32)
        self._lock = threading.Lock()
        self.lock_acquisitions = 0

    def lookup(self, key):
        with self._lock:
            self.lock_acquisitions += 1
            return self._tree.lookup(key)

    def insert(self, key, value):
        with self._lock:
            self.lock_acquisitions += 1
            return self._tree.insert(key, value)


def run_mixed_workload(tree, keys, threads=THREADS, write_share=0.2):
    errors = []

    def worker(thread_index):
        rng = random.Random(thread_index)
        try:
            for step in range(OPS_PER_THREAD):
                key = keys[rng.randrange(len(keys))]
                if rng.random() < write_share:
                    tree.insert(key + rng.randrange(1, 4096), step)
                else:
                    tree.lookup(key)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    workers = [threading.Thread(target=worker, args=(t,)) for t in range(threads)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    assert not errors


def test_olc_vs_coarse_locking(benchmark):
    rng = random.Random(0)
    keys = sorted(rng.sample(range(2**40), NUM_KEYS))
    pairs = [(key, key) for key in keys]

    def run_both():
        olc = OlcBPlusTree(LeafEncoding.GAPPED, leaf_capacity=32)
        olc._bulk_load_into(pairs, 0.7)
        run_mixed_workload(olc, keys)
        coarse = CoarseLockedTree(pairs)
        run_mixed_workload(coarse, keys)
        return olc, coarse

    olc, coarse = run_once(benchmark, run_both)
    total_ops = THREADS * OPS_PER_THREAD

    rows = [
        ("OLC", 0, olc.restarts, len(olc)),
        ("coarse lock", coarse.lock_acquisitions, 0, len(coarse._tree)),
    ]
    print(banner("OLC vs coarse locking (4 threads, 20% writes)"))
    print(format_table(["tree", "read-path locks", "restarts", "final keys"], rows))

    # The OLC read path acquires no locks at all; the coarse tree takes
    # one per operation.
    assert coarse.lock_acquisitions == total_ops
    # Restarts stay rare relative to the operation count.
    assert olc.restarts < total_ops * 0.05
    # Both trees remain structurally sound.
    olc.check_invariants()
    coarse._tree.check_invariants()
