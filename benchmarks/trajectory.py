"""Cross-PR performance trajectory report.

Every perf-bearing PR commits a machine-readable ``BENCH_PR<N>.json`` at
the repo root (batched ops, observability overhead, sharding speedup,
durability retention, tail latency, distributed-tracing overhead).  This
tool reads them all and renders the repo's performance story in one
table — each suite's headline metrics next to the bound that suite
promises — so a reviewer can see at a glance whether the claims still
hold together::

    PYTHONPATH=src python benchmarks/trajectory.py
    PYTHONPATH=src python benchmarks/trajectory.py --format json
    PYTHONPATH=src python benchmarks/trajectory.py --check

``--check`` exits non-zero when any committed result violates its own
embedded requirement (e.g. ``BENCH_PR4.json``'s modeled speedup below
its ``required``), or when a ``BENCH_PR*.json`` is not a JSON object
with a ``suite`` key.  CI's bench-smoke job runs it so a PR cannot
commit a result file that contradicts the claim it documents.

Unknown result files (future PRs) are not an error: they are listed with
their suite name and checked only for well-formedness, so this tool
never needs a lockstep update to land a new bench.
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _row(suite, metric, value, op=None, required=None):
    """One report row; ``ok`` is None for purely informational rows."""
    ok = None
    if op == ">=":
        ok = value >= required
    elif op == "<=":
        ok = value <= required
    elif op == "==":
        ok = value == required
    return {
        "suite": suite,
        "metric": metric,
        "value": value,
        "op": op,
        "required": required,
        "ok": ok,
    }


def _extract_pr2(payload):
    suite = payload["suite"]
    rows = []
    for section in ("lookups", "inserts"):
        for family, stats in payload.get(section, {}).items():
            rows.append(_row(suite, f"{section}.{family}.speedup", stats["speedup"]))
    return rows


def _extract_pr3(payload):
    suite = payload["suite"]
    bound = payload.get("overhead_bound", 0.05)
    return [
        _row(suite, f"{family}.gate_share", stats["gate_share"], "<=", bound)
        for family, stats in payload.get("families", {}).items()
    ]


def _extract_pr4(payload):
    headline = payload["headline"]
    return [
        _row(
            payload["suite"],
            f"modeled_speedup@{headline['shards']}shards",
            headline["modeled_speedup"],
            ">=",
            headline["required"],
        )
    ]


def _extract_pr6(payload):
    suite = payload["suite"]
    headline = payload["headline"]
    rows = [
        _row(
            suite,
            "group_commit_retention",
            headline["group_commit_retention"],
            ">=",
            headline["required"],
        )
    ]
    campaign = payload.get("crash_campaign")
    if campaign is not None:
        rows.append(_row(suite, "crash_campaign.crashes", campaign["crashes"]))
        rows.append(_row(suite, "crash_campaign.lost_writes", campaign["lost_writes"], "==", 0))
        rows.append(
            _row(suite, "crash_campaign.phantom_writes", campaign["phantom_writes"], "==", 0)
        )
    return rows


def _extract_pr7(payload):
    suite = payload["suite"]
    headline = payload["headline"]
    return [
        _row(
            suite,
            "coalescing_p99_ratio",
            headline["coalescing_p99_ratio"],
            ">=",
            headline["coalescing_required"],
        ),
        _row(
            suite,
            "admission_p999_ratio",
            headline["admission_p999_ratio"],
            ">=",
            headline["admission_ratio_required"],
        ),
        _row(
            suite,
            "admission_p999_s",
            headline["admission_p999_s"],
            "<=",
            headline["admission_p999_bound_s"],
        ),
    ]


def _extract_pr8(payload):
    suite = payload["suite"]
    bound = payload.get("overhead_bound", 0.05)
    headline = payload["headline"]
    return [
        _row(suite, "tracing.disabled_share", headline["disabled_share"], "<=", bound),
        _row(
            suite, "tracing.sampled_1pct_share", headline["sampled_1pct_share"], "<=", bound
        ),
        _row(suite, "tracing.sampled_100pct_share", headline["sampled_100pct_share"]),
    ]


def _extract_pr9(payload):
    suite = payload["suite"]
    headline = payload["headline"]
    rows = [
        _row(
            suite,
            "replication.divergent_speedup",
            headline["divergent_speedup"],
            ">=",
            headline.get("required", 1.3),
        ),
    ]
    fault = payload.get("fault_leg")
    if fault is not None:
        rows.append(
            _row(
                suite,
                "replication.lost_acked_writes",
                fault["lost_acked_writes"],
                "<=",
                0,
            )
        )
    return rows


def _extract_pr10(payload):
    suite = payload["suite"]
    headline = payload["headline"]
    return [
        _row(suite, "analysis.cold_s", headline["cold_s"]),
        _row(suite, "analysis.warm_s", headline["warm_s"]),
        _row(
            suite,
            "analysis.warm_speedup",
            headline["warm_speedup"],
            ">=",
            headline["required"],
        ),
        _row(suite, "analysis.findings", payload["findings"], "==", 0),
    ]


#: File stem -> headline extractor.  Files not listed here are checked
#: for well-formedness only and reported by suite name.
EXTRACTORS = {
    "BENCH_PR2": _extract_pr2,
    "BENCH_PR3": _extract_pr3,
    "BENCH_PR4": _extract_pr4,
    "BENCH_PR6": _extract_pr6,
    "BENCH_PR7": _extract_pr7,
    "BENCH_PR8": _extract_pr8,
    "BENCH_PR9": _extract_pr9,
    "BENCH_PR10": _extract_pr10,
}


def _pr_number(path):
    digits = "".join(ch for ch in path.stem if ch.isdigit())
    return int(digits) if digits else 0


def collect(root=REPO_ROOT):
    """Read every BENCH_PR*.json under ``root``; returns (rows, errors)."""
    rows = []
    errors = []
    for path in sorted(root.glob("BENCH_PR*.json"), key=_pr_number):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            errors.append(f"{path.name}: unreadable: {error}")
            continue
        if not isinstance(payload, dict) or "suite" not in payload:
            errors.append(f"{path.name}: not a JSON object with a 'suite' key")
            continue
        extractor = EXTRACTORS.get(path.stem)
        if extractor is None:
            row = _row(str(payload["suite"]), "(no headline extractor)", None)
            row["file"] = path.name
            rows.append(row)
            continue
        try:
            extracted = extractor(payload)
        except (KeyError, TypeError) as error:
            errors.append(f"{path.name}: malformed for {path.stem} extractor: {error}")
            continue
        for row in extracted:
            row["file"] = path.name
        rows.extend(extracted)
    return rows, errors


def format_text(rows, errors):
    lines = ["performance trajectory (committed BENCH_PR*.json headlines)", ""]
    current = None
    for row in rows:
        if row["file"] != current:
            current = row["file"]
            lines.append(f"{current}  [{row['suite']}]")
        value = "-" if row["value"] is None else f"{row['value']:g}"
        if row["ok"] is None:
            verdict = ""
        else:
            verdict = (
                f"  {'ok' if row['ok'] else 'FAIL'} "
                f"(requires {row['op']} {row['required']:g})"
            )
        lines.append(f"  {row['metric']:<36} {value:>12}{verdict}")
    for error in errors:
        lines.append(f"  ERROR: {error}")
    checked = [row for row in rows if row["ok"] is not None]
    failed = [row for row in checked if not row["ok"]]
    lines.append("")
    lines.append(
        f"{len(rows)} metric(s) from {len({row['file'] for row in rows})} file(s); "
        f"{len(checked)} bound(s) checked, {len(failed)} failed, "
        f"{len(errors)} file error(s)"
    )
    return "\n".join(lines)


def format_json(rows, errors):
    return json.dumps({"rows": rows, "errors": errors}, indent=2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Aggregate committed BENCH_PR*.json headline metrics."
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="directory holding BENCH_PR*.json (default: repo root)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any embedded requirement fails or a file is malformed",
    )
    args = parser.parse_args(argv)
    rows, errors = collect(args.root)
    print(format_text(rows, errors) if args.format == "text" else format_json(rows, errors))
    if args.check:
        failed = [row for row in rows if row["ok"] is False]
        for row in failed:
            print(
                f"TRAJECTORY FAILURE: {row['file']} {row['metric']} = "
                f"{row['value']:g}, requires {row['op']} {row['required']:g}",
                file=sys.stderr,
            )
        if failed or errors:
            return 1
        checked = sum(1 for row in rows if row["ok"] is not None)
        print(f"trajectory ok: {checked} bound(s) hold across {len(rows)} metric(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
