"""Network front-end tail-latency bench (PR 7).

Drives the :mod:`repro.net` server with the open-loop Zipf load
generator and writes the machine-readable ``BENCH_PR7.json`` at the
repo root.  Two headline claims, both measured with latency-scaled
histograms and ``Histogram.quantile``:

* **coalescing** — at the same offered load (~1.35x the machine's
  per-request capacity), merging in-flight requests into the shard
  routers' batch paths cuts p99 by at least 2x versus per-request
  dispatch;
* **admission** — at 2x overload, per-tenant token buckets and bounded
  inflight queues shed the excess as backpressure responses and keep
  the accepted work's p999 bounded, instead of the unbounded queueing
  collapse the no-admission leg shows.

Regression checking compares the two *ratios* (collapse vs controlled),
which are machine-independent in direction; because a queueing collapse
grows with drain budget, baseline ratios are clamped to 2x the required
floor before the tolerance is applied — a faster machine must still
beat the acceptance bar, not the raw collapse of the baseline machine.

Run directly::

    PYTHONPATH=src python benchmarks/bench_net.py
    PYTHONPATH=src python benchmarks/bench_net.py \
        --duration 0.8 --check BENCH_PR7.json --tolerance 0.30

or through pytest (reduced scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_net.py -q
"""

import argparse
import json
from pathlib import Path

import pytest

from repro.harness.experiments_net import experiment_net_bench

COALESCE_P99_REQUIRED = 2.0
ADMISSION_P999_RATIO_REQUIRED = 2.0
#: Absolute ceiling on the admitted work's p999 under 2x overload; the
#: inflight bound keeps the real figure near 1s even on slow machines.
ADMISSION_P999_BOUND_S = 4.0
REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_PR7.json"


def run_net_bench(
    keys_per_tenant=5_000,
    num_tenants=4,
    duration=1.5,
    drain_timeout=8.0,
    probe_duration=0.8,
    seed=7,
):
    """Run both phases; returns the BENCH_PR7.json payload."""
    result = experiment_net_bench(
        keys_per_tenant=keys_per_tenant,
        num_tenants=num_tenants,
        duration=duration,
        drain_timeout=drain_timeout,
        probe_duration=probe_duration,
        seed=seed,
    )
    legs = result["legs"]

    def leg(name):
        entry = legs[name]
        return {
            "offered": entry["offered"],
            "ok": entry["ok"],
            "shed_throttled": entry["shed_throttled"],
            "shed_overloaded": entry["shed_overloaded"],
            "unanswered": entry["unanswered"],
            "errors": entry["errors"],
            "p50_s": round(entry["p50_s"], 5),
            "p99_s": round(entry["p99_s"], 5),
            "p999_s": round(entry["p999_s"], 5),
            "mean_batch": entry["mean_batch"],
        }

    return {
        "suite": "PR7 network front-end tail-latency bench",
        "tenants": num_tenants,
        "keys_per_tenant": keys_per_tenant,
        "duration_s": duration,
        "capacity_rps": result["capacity_rps"],
        "offered_rps": result["offered_rps"],
        "coalescing": {
            "off": leg("coalesce_off"),
            "on": leg("coalesce_on"),
            "p99_ratio": result["coalescing_p99_ratio"],
        },
        "admission": {
            "off": leg("overload_no_admission"),
            "on": leg("overload_admission"),
            "p999_ratio": result["admission_p999_ratio"],
            "sheds": result["admission_sheds"],
        },
        "headline": {
            "coalescing_p99_ratio": result["coalescing_p99_ratio"],
            "coalescing_required": COALESCE_P99_REQUIRED,
            "admission_p999_ratio": result["admission_p999_ratio"],
            "admission_ratio_required": ADMISSION_P999_RATIO_REQUIRED,
            "admission_p999_s": result["admission_p999_s"],
            "admission_p999_bound_s": ADMISSION_P999_BOUND_S,
            "admission_sheds": result["admission_sheds"],
        },
    }


def format_report(payload):
    coalescing = payload["coalescing"]
    admission = payload["admission"]
    lines = [
        f"net bench @ {payload['tenants']} tenants x "
        f"{payload['keys_per_tenant']} keys, capacity {payload['capacity_rps']:.0f} req/s",
        f"coalesce @ {payload['offered_rps']['coalesce']:.0f}/s offered:",
    ]
    for mode in ("off", "on"):
        entry = coalescing[mode]
        lines.append(
            f"  {mode:>3s}  p50 {entry['p50_s'] * 1e3:8.2f}ms  "
            f"p99 {entry['p99_s'] * 1e3:8.2f}ms  p999 {entry['p999_s'] * 1e3:8.2f}ms  "
            f"mean batch {entry['mean_batch']:.1f}"
        )
    lines.append(f"  -> p99 ratio {coalescing['p99_ratio']:.2f}x (require >= {COALESCE_P99_REQUIRED}x)")
    lines.append(f"overload @ {payload['offered_rps']['overload']:.0f}/s offered:")
    for mode, label in (("off", "no-admission"), ("on", "admission")):
        entry = admission[mode]
        lines.append(
            f"  {label:>12s}  p999 {entry['p999_s'] * 1e3:8.2f}ms  ok {entry['ok']:>6d}  "
            f"shed {entry['shed_throttled'] + entry['shed_overloaded']:>6d}  "
            f"unanswered {entry['unanswered']}"
        )
    lines.append(
        f"  -> p999 ratio {admission['p999_ratio']:.2f}x "
        f"(require >= {ADMISSION_P999_RATIO_REQUIRED}x, "
        f"admitted p999 <= {ADMISSION_P999_BOUND_S}s)"
    )
    return "\n".join(lines)


def check_headline(payload):
    """The acceptance claims from ISSUE.md, gated on quantile figures."""
    headline = payload["headline"]
    assert headline["coalescing_p99_ratio"] >= COALESCE_P99_REQUIRED, (
        f"coalescing cut p99 by only {headline['coalescing_p99_ratio']:.2f}x at the "
        f"same offered load; the claim requires >= {COALESCE_P99_REQUIRED}x"
    )
    assert headline["admission_sheds"] > 0, (
        "admission control shed nothing under 2x overload — backpressure "
        "responses never fired"
    )
    assert headline["admission_p999_s"] <= ADMISSION_P999_BOUND_S, (
        f"admitted p999 of {headline['admission_p999_s']:.2f}s under 2x overload "
        f"exceeds the {ADMISSION_P999_BOUND_S}s bound — admission is not "
        "keeping the tail bounded"
    )
    assert headline["admission_p999_ratio"] >= ADMISSION_P999_RATIO_REQUIRED, (
        f"admission improved p999 by only {headline['admission_p999_ratio']:.2f}x "
        f"over unbounded queueing; the claim requires >= {ADMISSION_P999_RATIO_REQUIRED}x"
    )
    return headline


def _ratio_floor(baseline_ratio, required, tolerance):
    """Tolerance floor for a collapse ratio.

    Collapse magnitude scales with drain budget, run duration, and
    machine speed, so a baseline of 40x must not force future runs to
    hit 28x: the baseline is clamped to 1.5x the acceptance bar before
    tolerance applies, and the floor never drops below the bar itself.
    """
    effective = min(baseline_ratio, 1.5 * required)
    return max(required, effective * (1.0 - tolerance))


def check_against_baseline(payload, baseline, tolerance):
    """Fail on ratio regressions beyond ``tolerance`` (clamped, see above)."""
    failures = []
    checks = [
        (
            "coalescing p99 ratio",
            payload["coalescing"]["p99_ratio"],
            baseline.get("coalescing", {}).get("p99_ratio"),
            COALESCE_P99_REQUIRED,
        ),
        (
            "admission p999 ratio",
            payload["admission"]["p999_ratio"],
            baseline.get("admission", {}).get("p999_ratio"),
            ADMISSION_P999_RATIO_REQUIRED,
        ),
    ]
    for name, current, past, required in checks:
        if past is None:
            failures.append(f"{name}: missing from baseline")
            continue
        floor = _ratio_floor(past, required, tolerance)
        if current < floor:
            failures.append(
                f"{name}: {current:.2f}x fell below {floor:.2f}x "
                f"(baseline {past:.2f}x clamped to {1.5 * required:.1f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    baseline_sheds = baseline.get("admission", {}).get("sheds", 0)
    if baseline_sheds > 0 and payload["admission"]["sheds"] == 0:
        failures.append("admission sheds: baseline shed requests, current run shed none")
    return failures


@pytest.mark.perf
def test_net_bench_headline():
    payload = run_net_bench(
        keys_per_tenant=2_000, duration=0.8, drain_timeout=6.0, probe_duration=0.5
    )
    print(format_report(payload))
    check_headline(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Network front-end bench (PR 7).")
    parser.add_argument("--keys", type=int, default=5_000, help="keys per tenant")
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--duration", type=float, default=1.5, help="seconds of offered arrivals per leg")
    parser.add_argument("--drain-timeout", type=float, default=8.0)
    parser.add_argument("--probe-duration", type=float, default=0.8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out",
        type=Path,
        default=RESULT_FILE,
        help=f"result JSON path (default {RESULT_FILE})",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing the result JSON"
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="baseline JSON to compare latency ratios against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed relative ratio regression vs the baseline (default 0.30)",
    )
    args = parser.parse_args(argv)
    payload = run_net_bench(
        keys_per_tenant=args.keys,
        num_tenants=args.tenants,
        duration=args.duration,
        drain_timeout=args.drain_timeout,
        probe_duration=args.probe_duration,
        seed=args.seed,
    )
    print(format_report(payload))
    check_headline(payload)
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = check_against_baseline(payload, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print(
            f"no tail-latency regressions vs {args.check} "
            f"(tolerance {args.tolerance:.0%})"
        )
    if not args.no_write:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
