"""Divergent-replica bench and kill-one-replica fault leg (PR 9).

Two claims, one machine-readable ``BENCH_PR9.json`` at the repo root:

* **Divergence pays.**  On a mixed point/scan workload served through
  the routed read path, a replica set of divergently tuned copies
  (point-tuned, scan-tuned, memory-squeezed) beats the same number of
  identically tuned copies by at least 1.3x in modeled ns/read.  The
  figure prices each leg's structural counter deltas through the
  calibrated cost model — the same modeled-cost idiom every other bench
  here gates on; wall clock is reported but not gated.

* **Losing a replica loses no acked write.**  A durable replicated
  group takes writes while a fault is injected into one replica's WAL
  append (the replica is poisoned and fenced mid-stream), keeps
  accepting acked writes on the survivors, then crashes and recovers.
  Every acknowledged write must be readable afterwards, the divergence
  profiles must survive recovery, and the fenced replica must have been
  rebuilt from the authoritative copy.

Regression checking compares the modeled speedup ratio (identical /
divergent), which is machine-independent.

Run directly::

    PYTHONPATH=src python benchmarks/bench_replication.py --keys 16000
    PYTHONPATH=src python benchmarks/bench_replication.py \
        --keys 8000 --check BENCH_PR9.json --tolerance 0.30

or through pytest (reduced scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_replication.py -q
"""

import argparse
import json
import random
import tempfile
from pathlib import Path

import pytest

from repro.durability.manager import DurabilityManager
from repro.faults.injector import FaultInjector
from repro.harness.experiments_replication import run_replication_comparison
from repro.service.router import ShardRouter

DEFAULT_KEYS = 16_000
REPLICATION_FACTOR = 3
HEADLINE_SPEEDUP_REQUIRED = 1.3
REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_PR9.json"


def _workload_scale(num_keys):
    """Workload knobs proportional to the key count.

    Scan length tracks the key space so scans keep visiting the same
    *fraction* of the scan region at every bench scale.
    """
    return {
        "num_batches": 300,
        "batch_size": 64,
        "num_scans": 600,
        "scan_length": max(200, num_keys * 3 // 32),
    }


def run_replication_bench(num_keys=DEFAULT_KEYS, factor=REPLICATION_FACTOR, seed=0):
    """Run both routing legs; returns the BENCH_PR9.json payload."""
    scale = _workload_scale(num_keys)
    comparison = run_replication_comparison(
        num_keys=num_keys, factor=factor, seed=seed, **scale
    )
    return {
        "suite": "PR9 divergent replica bench",
        "keys": num_keys,
        "replication_factor": factor,
        "workload": comparison["config"],
        "legs": {
            "divergent": comparison["divergent"],
            "identical": comparison["identical"],
        },
        "headline": {
            "divergent_speedup": comparison["divergent_speedup"],
            "required": HEADLINE_SPEEDUP_REQUIRED,
        },
    }


def run_fault_leg(
    num_keys=4_000,
    num_batches=30,
    batch_size=40,
    factor=REPLICATION_FACTOR,
    num_shards=2,
    seed=0xBEEF,
    root=None,
):
    """Kill one replica mid-stream; prove no acked write is ever lost.

    The injector arms the real ``durability.wal.append`` fault point for
    exactly one append of one batch's fan-out: that replica's WAL is
    poisoned and the replica fenced, while the survivors acknowledge the
    write.  The group then keeps taking writes, crashes (handles closed,
    no final checkpoint), and recovers.  Returns a summary whose
    ``lost_acked_writes`` must be zero.
    """
    rng = random.Random(seed)
    pairs = [(key, key + 1) for key in range(0, num_keys * 2, 2)]
    with tempfile.TemporaryDirectory() as tmp:
        durability = DurabilityManager(Path(root) if root is not None else Path(tmp))
        router = ShardRouter.build(
            pairs,
            family="adaptive",
            num_shards=num_shards,
            replication_factor=factor,
            durability=durability,
        )
        acked = dict(pairs)
        expected_profiles = [
            replica.profile.name for replica in router.table.shards[0].replicas
        ]
        faults_injected = 0
        kill_at = num_batches // 3
        for index in range(num_batches):
            batch = [
                (rng.randrange(num_keys * 4) * 2 + index % 2, rng.randrange(1 << 30))
                for _ in range(batch_size)
            ]
            if index == kill_at:
                # Fan-out appends run in replica order under the shard op
                # lock; failing the second matching append poisons exactly
                # one replica's WAL while the others acknowledge.
                with FaultInjector(
                    site="durability.wal.append", fail_at=2, max_failures=1
                ) as injector:
                    router.put_many(batch)
                faults_injected = injector.failures_injected
            else:
                router.put_many(batch)
            acked.update(batch)
        downed = [
            (shard.shard_id, replica.replica_id)
            for shard in router.table.shards
            for replica in shard.replicas
            if replica.down
        ]
        router.close()  # the crash: no final checkpoint, WAL tails replay

        recovered = ShardRouter.recover(durability)
        try:
            items = sorted(acked.items())
            found = recovered.get_many([key for key, _ in items])
            lost = sum(
                1 for (_, value), got in zip(items, found) if got != value
            )
            recovered.verify()
            recovered_profiles = [
                replica.profile.name
                for replica in recovered.table.shards[0].replicas
            ]
            info = dict(recovered.last_recovery or {})
        finally:
            recovered.close()
    return {
        "acked_writes": len(acked),
        "faults_injected": faults_injected,
        "replicas_downed": len(downed),
        "replicas_rebuilt": info.get("replicas_rebuilt", 0),
        "profiles_preserved": recovered_profiles == expected_profiles,
        "lost_acked_writes": lost,
    }


def format_report(payload):
    lines = [
        f"replication bench @ {payload['keys']} keys "
        f"(factor {payload['replication_factor']})"
    ]
    for leg_name, leg in payload["legs"].items():
        lines.append(
            f"{leg_name:>9s}  routing {leg['routing']:<11s} "
            f"modeled {leg['modeled_ns_per_read']:>6.2f} ns/read  "
            f"size {leg['size_bytes'] / (1024 * 1024):.2f} MiB"
        )
    headline = payload["headline"]
    lines.append(
        f"divergent speedup {headline['divergent_speedup']:.2f}x "
        f"(required >= {headline['required']}x)"
    )
    if "fault_leg" in payload:
        fault = payload["fault_leg"]
        lines.append(
            f"fault leg: {fault['acked_writes']} acked writes, "
            f"{fault['replicas_downed']} replica(s) killed, "
            f"{fault['replicas_rebuilt']} rebuilt, "
            f"{fault['lost_acked_writes']} lost"
        )
    return "\n".join(lines)


def check_headline(payload):
    """The acceptance claim: divergent replicas >= 1.3x identical ones."""
    headline = payload["headline"]
    assert headline["divergent_speedup"] >= HEADLINE_SPEEDUP_REQUIRED, (
        f"divergent replicas are only {headline['divergent_speedup']:.2f}x "
        f"over identical ones; the replication claim requires "
        f">= {HEADLINE_SPEEDUP_REQUIRED}x"
    )
    return headline["divergent_speedup"]


def check_fault_leg(summary):
    """The durability claim: the kill lost nothing and healed."""
    failures = []
    if summary["faults_injected"] < 1:
        failures.append("fault leg injected no WAL append fault")
    if summary["replicas_downed"] < 1:
        failures.append("fault leg fenced no replica")
    if summary["replicas_rebuilt"] < 1:
        failures.append("recovery rebuilt no replica")
    if not summary["profiles_preserved"]:
        failures.append("divergence profiles did not survive recovery")
    if summary["lost_acked_writes"]:
        failures.append(
            f"{summary['lost_acked_writes']} acked writes lost after the kill"
        )
    return failures


def check_against_baseline(payload, baseline, tolerance):
    """Fail on headline-speedup regressions beyond ``tolerance``."""
    failures = []
    base = baseline.get("headline", {}).get("divergent_speedup")
    if base is None:
        failures.append("baseline has no headline.divergent_speedup")
        return failures
    floor = base * (1.0 - tolerance)
    current = payload["headline"]["divergent_speedup"]
    if current < floor:
        failures.append(
            f"divergent speedup {current:.2f}x fell below {floor:.2f}x "
            f"(baseline {base:.2f}x - {tolerance:.0%} tolerance)"
        )
    return failures


@pytest.mark.perf
def test_replication_bench_headline():
    payload = run_replication_bench(num_keys=8_000)
    print(format_report(payload))
    assert check_headline(payload) >= HEADLINE_SPEEDUP_REQUIRED


@pytest.mark.faults
def test_replication_fault_leg_loses_nothing():
    summary = run_fault_leg(num_keys=2_000, num_batches=18)
    assert summary["faults_injected"] == 1
    assert summary["replicas_downed"] == 1
    assert summary["replicas_rebuilt"] >= 1
    assert summary["profiles_preserved"]
    assert summary["lost_acked_writes"] == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Divergent replica bench (PR 9).")
    parser.add_argument("--keys", type=int, default=DEFAULT_KEYS)
    parser.add_argument("--factor", type=int, default=REPLICATION_FACTOR)
    parser.add_argument(
        "--out",
        type=Path,
        default=RESULT_FILE,
        help=f"result JSON path (default {RESULT_FILE})",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing the result JSON"
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="baseline JSON to compare the headline speedup against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed relative speedup regression vs the baseline (default 0.30)",
    )
    parser.add_argument(
        "--skip-fault-leg",
        action="store_true",
        help="skip the kill-one-replica durability leg",
    )
    args = parser.parse_args(argv)
    payload = run_replication_bench(num_keys=args.keys, factor=args.factor)
    if not args.skip_fault_leg:
        payload["fault_leg"] = run_fault_leg(num_keys=max(1000, args.keys // 4))
    print(format_report(payload))
    check_headline(payload)
    if not args.skip_fault_leg:
        fault_failures = check_fault_leg(payload["fault_leg"])
        if fault_failures:
            for failure in fault_failures:
                print(f"REGRESSION: {failure}")
            return 1
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = check_against_baseline(payload, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print(
            f"no headline regressions vs {args.check} "
            f"(tolerance {args.tolerance:.0%})"
        )
    if not args.no_write:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
