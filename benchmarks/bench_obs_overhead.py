"""Observability overhead suite (PR 3, extended with the PR 8 net leg).

Proves the telemetry layer's zero-cost-when-disabled claim on the PR 2
perf-suite hot paths (single-key lookups on every index family) and
writes the machine-readable ``BENCH_PR3.json`` at the repo root.

``--net`` runs the PR 8 distributed-tracing leg instead and writes
``BENCH_PR8.json``: closed-loop GETs through the full network path
(client -> server -> coalescer -> router -> shard) at 0%, 1%, and 100%
head-based trace sampling.  Like the PR 3 headline, the enforced bound
is deterministic: the per-request price of tracing is modeled from
directly-timed components — the disabled gate (``active_tracer()``
read, times the number of instrumented gates a request crosses) and the
full span choreography of one traced request — divided by the measured
untraced request time.  Both the disabled share and the 1%-sampled
share must stay <= 5%; the measured ops/sec of the three legs are
reported as evidence, not gated (loopback wall clock is too noisy for a
5% claim)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --net
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --net --check BENCH_PR8.json --tolerance 0.5

With no :class:`~repro.obs.runtime.Telemetry` installed, each
instrumented lookup pays exactly one module-global read plus an
``is None`` branch (the ``active_tracer()`` gate).  Wall-clock A/B runs
of the same code path are dominated by machine noise at the <5% level,
so the headline bound is established deterministically instead: the
gate cost is timed directly in a tight loop (loop overhead subtracted)
and divided by each family's measured per-lookup time.  That
*gate share* must stay at or below 5% for every family.

The suite also reports measured throughput with telemetry off, with a
metrics registry installed, and with full tracing (sampled op spans
into an in-memory sink) — the honest price of turning telemetry *on*.

Run directly::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --check BENCH_PR3.json --tolerance 0.25

Two gates are enforced, and they are different claims:

* the **absolute** headline bound — gate share <= 5% on every family —
  always runs (:func:`check_headline`); it is the documented contract.
* the **relative** regression gate — gate share within ``--tolerance``
  (default 25%) of the committed baseline — runs only with ``--check``
  and catches creep long before the absolute bound is at risk.

Gate share depends on tree depth (shallower trees -> faster lookups ->
larger share), so baseline comparisons require the same ``--keys`` as
the committed baseline; :func:`check_against_baseline` enforces it.

or through pytest (reduced scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -q
"""

import argparse
import asyncio
import json
import random
import time
from pathlib import Path

import pytest

from repro.art.tree import ART, terminated
from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.dualstage.index import DualStageIndex, StaticEncoding
from repro.fst.trie import FST
from repro.hybridtrie.tree import HybridTrie
from repro.net.client import NetClient
from repro.net.server import NetServer
from repro.net.tenancy import demo_directory
from repro.obs import MetricsRegistry, Telemetry, active, active_tracer

DEFAULT_KEYS = 4_000
OVERHEAD_BOUND = 0.05          # disabled-telemetry gate share per lookup
TRACE_SAMPLE_EVERY = 64        # op-span sampling in the traced mode
REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_PR3.json"
NET_RESULT_FILE = REPO_ROOT / "BENCH_PR8.json"

#: (leg key, client trace_sample_every) — 0 disables trace origination.
NET_SAMPLING_LEGS = (
    ("untraced", 0),
    ("sampled_1pct", 100),
    ("sampled_100pct", 1),
)

#: Disabled-telemetry probes one GET crosses end to end: the client's
#: origination gate, the server span gate, the coalescer's enqueue and
#: flush gates, the router's route-span and pool-adoption gates, the
#: shard op gate, and the WAL append gate.
NET_GATE_READS = 8


def _best_of(runs, func):
    """Fastest wall-clock of ``runs`` executions (noise floor, not mean)."""
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def measure_gate_ns(iterations=200_000, runs=5):
    """Cost of one disabled-telemetry probe: ``active_tracer()`` + branch.

    Timed in a tight loop with the bare-loop overhead subtracted, so the
    result is the marginal per-lookup price every instrumented hot path
    pays when no telemetry is installed.
    """
    indices = range(iterations)

    def probed():
        for _ in indices:
            if active_tracer() is not None:  # pragma: no cover - off here
                raise AssertionError("telemetry unexpectedly installed")

    def bare():
        for _ in indices:
            pass

    probed_time = _best_of(runs, probed)
    bare_time = _best_of(runs, bare)
    return max(0.0, (probed_time - bare_time) / iterations * 1e9)


def _int_data(num_keys, seed=0x5EED):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(num_keys * 4), num_keys))
    pairs = [(key, key * 3 + 1) for key in keys]
    probes = [
        rng.choice(keys) if rng.random() < 0.8 else rng.randrange(num_keys * 4)
        for _ in range(num_keys)
    ]
    return pairs, probes


def _byte_data(num_keys, seed=0xBEEF):
    rng = random.Random(seed)
    words = set()
    while len(words) < num_keys:
        words.add(bytes(rng.randrange(97, 123) for _ in range(rng.randrange(4, 14))))
    keys = sorted(terminated(word) for word in words)
    pairs = [(key, index) for index, key in enumerate(keys)]
    probes = [
        rng.choice(keys)
        if rng.random() < 0.8
        else terminated(bytes(rng.randrange(97, 123) for _ in range(6)))
        for _ in range(num_keys)
    ]
    return pairs, probes


def _build_lookup_loops(num_keys):
    """One ``() -> None`` lookup loop per family, plus its probe count."""
    pairs, probes = _int_data(num_keys)
    byte_pairs, byte_probes = _byte_data(max(1000, num_keys // 4))

    tree = BPlusTree.bulk_load(pairs, LeafEncoding.SUCCINCT)
    adaptive = AdaptiveBPlusTree.bulk_load_adaptive(pairs)
    dual = DualStageIndex.bulk_load(pairs, StaticEncoding.SUCCINCT)
    art = ART.from_sorted(byte_pairs)
    fst = FST(byte_pairs)
    trie = HybridTrie(byte_pairs)

    return {
        "bptree_succinct": (
            lambda: [tree.lookup(key) for key in probes], len(probes)),
        "bptree_adaptive": (
            lambda: [adaptive.lookup(key) for key in probes], len(probes)),
        "dualstage": (
            lambda: [dual.lookup(key) for key in probes], len(probes)),
        "art": (
            lambda: [art.lookup(key) for key in byte_probes], len(byte_probes)),
        "fst": (
            lambda: [fst.lookup(key) for key in byte_probes], len(byte_probes)),
        "hybridtrie": (
            lambda: [trie.lookup(key) for key in byte_probes], len(byte_probes)),
    }


def run_suite(num_keys=DEFAULT_KEYS, runs=3):
    """Run every family in every mode; returns the BENCH_PR3.json payload."""
    assert active() is None, "telemetry must not be installed for the baseline"
    loops = _build_lookup_loops(num_keys)
    gate_ns = measure_gate_ns()
    families = {}

    for family, (loop, total_ops) in loops.items():
        off_time = _best_of(runs, loop)

        with Telemetry(registry=MetricsRegistry(), tracer=None):
            metrics_time = _best_of(runs, loop)

        with Telemetry.with_memory_trace(op_sample_every=TRACE_SAMPLE_EVERY):
            traced_time = _best_of(runs, loop)

        off_ns_per_op = off_time / total_ops * 1e9
        families[family] = {
            "off_ops_per_sec": round(total_ops / off_time, 1),
            "metrics_ops_per_sec": round(total_ops / metrics_time, 1),
            "traced_ops_per_sec": round(total_ops / traced_time, 1),
            "off_ns_per_op": round(off_ns_per_op, 1),
            "gate_share": round(gate_ns / off_ns_per_op, 4),
            "metrics_overhead": round(metrics_time / off_time - 1.0, 4),
            "traced_overhead": round(traced_time / off_time - 1.0, 4),
        }

    return {
        "suite": "PR3 observability overhead suite",
        "keys": num_keys,
        "gate_ns": round(gate_ns, 2),
        "overhead_bound": OVERHEAD_BOUND,
        "trace_sample_every": TRACE_SAMPLE_EVERY,
        "families": families,
    }


def format_report(payload):
    lines = [
        f"obs overhead suite @ {payload['keys']} keys  "
        f"(disabled-telemetry gate: {payload['gate_ns']:.1f} ns/lookup)"
    ]
    for family, stats in payload["families"].items():
        lines.append(
            f"{family:18s} off {stats['off_ops_per_sec']:>12,.0f} ops/s  "
            f"gate {stats['gate_share']:>6.2%}  "
            f"metrics {stats['metrics_overhead']:>+7.1%}  "
            f"traced {stats['traced_overhead']:>+7.1%}"
        )
    return "\n".join(lines)


def check_headline(payload):
    """The acceptance claim: gate share <= 5% on every family.

    Failures name each offending family with the numbers behind the
    share, so a CI log line is enough to see what regressed.
    """
    bound = payload.get("overhead_bound", OVERHEAD_BOUND)
    failures = [
        f"family '{family}': disabled-telemetry gate share "
        f"{stats['gate_share']:.2%} exceeds the {bound:.0%} absolute bound "
        f"(gate {payload['gate_ns']:.1f} ns / lookup "
        f"{stats['off_ns_per_op']:.1f} ns)"
        for family, stats in payload["families"].items()
        if stats["gate_share"] > bound
    ]
    assert not failures, "\n".join(failures)


def check_against_baseline(payload, baseline, tolerance):
    """Fail on gate-share regressions beyond ``tolerance``.

    Gate share (gate ns / per-lookup ns) is a ratio of two measurements
    on the same machine, so it is far more portable than raw ops/sec.
    Families present in the baseline but missing now count as
    regressions; the absolute <= 5% bound is enforced separately by
    :func:`check_headline`.
    """
    failures = []
    if baseline.get("keys") != payload["keys"]:
        return [
            f"baseline measured at {baseline.get('keys')} keys but this run "
            f"used {payload['keys']}; gate share is depth-dependent — rerun "
            f"with matching --keys"
        ]
    for family, stats in baseline.get("families", {}).items():
        current = payload["families"].get(family)
        if current is None:
            failures.append(f"{family}: missing from current run")
            continue
        ceiling = stats["gate_share"] * (1.0 + tolerance)
        if current["gate_share"] > ceiling:
            failures.append(
                f"{family}: gate share {current['gate_share']:.2%} rose above "
                f"{ceiling:.2%} (baseline {stats['gate_share']:.2%} "
                f"+ {tolerance:.0%} tolerance)"
            )
    return failures


# ----------------------------------------------------------------------
# PR 8: distributed tracing over the net path
# ----------------------------------------------------------------------
def measure_span_choreography_ns(iterations=4_000, runs=3):
    """Full span cost of ONE traced request, timed directly.

    Replays the exact per-request span choreography the net path
    performs when a request is sampled — client root, server span with
    admission event, coalescer batch span, adopted route/shard/WAL stack
    spans, and the index op span with its descent/probe events — into an
    in-memory sink.  This deliberately over-counts (the batch span is
    amortized across a real batch), so the modeled shares are upper
    bounds.
    """
    with Telemetry.with_memory_trace(op_sample_every=1):
        tracer = active_tracer()
        assert tracer is not None

        def choreograph():
            for index in range(iterations):
                root = tracer.start_remote("net.client.request", trace_id=index + 1)
                server = tracer.start_remote(
                    "net.server.request",
                    trace_id=index + 1,
                    remote_parent_id=root.span_id,
                    op="GET",
                )
                tracer.child_event("net.admission", server, decision="admit")
                batch = tracer.start_child("net.coalesce.batch", server, size=1)
                with tracer.adopt(batch):
                    route = tracer.start("service.route", op="get", fanout=1)
                    shard = tracer.start("service.shard_op", op="get")
                    op = tracer.op_start("lookup", family="bench")
                    tracer.event("descent", height=3)
                    tracer.event("leaf_probe:plain", count=1)
                    if op is not None:
                        tracer.end(op)
                    wal = tracer.start("durability.wal.append", records=1)
                    tracer.end(wal)
                    tracer.end(shard)
                    tracer.end(route)
                tracer.finish(batch)
                tracer.finish(server, status=0)
                tracer.finish(root, status=0)

        best = _best_of(runs, choreograph)
    return best / iterations * 1e9


async def _measure_net_ops_per_sec(trace_sample_every, num_keys, duration, concurrency):
    """Closed-loop GET throughput through a real in-process NetServer."""
    directory = demo_directory(["bench"], num_keys, num_shards=2, family="olc")
    server = NetServer(directory, port=0)
    await server.start()
    counts = [0] * concurrency
    try:
        clients = [
            await NetClient.connect(
                "127.0.0.1", server.port, trace_sample_every=trace_sample_every
            )
            for _ in range(concurrency)
        ]
        try:
            deadline = time.perf_counter() + duration
            key_space = num_keys * 2

            async def worker(slot, client):
                rng = random.Random(0xD15C0 + slot)
                while time.perf_counter() < deadline:
                    await client.get("bench", rng.randrange(key_space))
                    counts[slot] += 1

            begin = time.perf_counter()
            await asyncio.gather(
                *(worker(slot, client) for slot, client in enumerate(clients))
            )
            elapsed = time.perf_counter() - begin
        finally:
            for client in clients:
                await client.close()
    finally:
        await server.stop()
        directory.close()
    return sum(counts) / elapsed


def run_net_suite(num_keys=DEFAULT_KEYS, duration=1.0, concurrency=8):
    """The PR 8 sampled-distributed-tracing leg; BENCH_PR8.json payload.

    The enforced shares are modeled from deterministic component costs
    (see the module docstring); the three measured legs document the
    real end-to-end throughput at each sampling rate.
    """
    assert active() is None, "telemetry must not be installed for the baseline"
    gate_ns = measure_gate_ns()
    span_ns = measure_span_choreography_ns()

    legs = {}
    for leg_key, sample_every in NET_SAMPLING_LEGS:
        if sample_every == 0:
            ops = asyncio.run(
                _measure_net_ops_per_sec(0, num_keys, duration, concurrency)
            )
        else:
            with Telemetry.with_memory_trace(op_sample_every=1):
                ops = asyncio.run(
                    _measure_net_ops_per_sec(
                        sample_every, num_keys, duration, concurrency
                    )
                )
        legs[leg_key] = {
            "trace_sample_every": sample_every,
            "ops_per_sec": round(ops, 1),
        }

    request_ns = 1e9 / legs["untraced"]["ops_per_sec"]
    gates_ns = NET_GATE_READS * gate_ns
    shares = {
        "disabled_share": round(gates_ns / request_ns, 6),
        "sampled_1pct_share": round((gates_ns + span_ns / 100.0) / request_ns, 6),
        "sampled_100pct_share": round((gates_ns + span_ns) / request_ns, 6),
    }
    return {
        "suite": "PR8 distributed tracing overhead",
        "keys": num_keys,
        "duration": duration,
        "concurrency": concurrency,
        "gate_ns": round(gate_ns, 2),
        "num_gate_reads": NET_GATE_READS,
        "span_choreography_ns": round(span_ns, 1),
        "request_ns": round(request_ns, 1),
        "overhead_bound": OVERHEAD_BOUND,
        "legs": legs,
        "headline": shares,
    }


def format_net_report(payload):
    lines = [
        f"net tracing overhead @ {payload['keys']} keys, "
        f"{payload['concurrency']} clients  "
        f"(request {payload['request_ns']:,.0f} ns, "
        f"gate {payload['gate_ns']:.1f} ns x{payload['num_gate_reads']}, "
        f"traced-span choreography {payload['span_choreography_ns']:,.0f} ns)"
    ]
    for leg_key, stats in payload["legs"].items():
        lines.append(
            f"{leg_key:16s} sample_every={stats['trace_sample_every']:>3d}  "
            f"{stats['ops_per_sec']:>10,.0f} req/s"
        )
    headline = payload["headline"]
    lines.append(
        f"modeled shares: disabled {headline['disabled_share']:.3%}, "
        f"1% sampled {headline['sampled_1pct_share']:.3%}, "
        f"100% sampled {headline['sampled_100pct_share']:.3%}"
    )
    return "\n".join(lines)


def check_net_headline(payload):
    """The PR 8 acceptance gate: disabled and 1%-sampled shares <= 5%.

    The 100% leg is reported but not gated — full tracing is a debug
    mode, and its cost is the documented span choreography, not a
    regression.
    """
    bound = payload.get("overhead_bound", OVERHEAD_BOUND)
    headline = payload["headline"]
    failures = [
        f"{key}: modeled tracing share {headline[key]:.3%} exceeds the "
        f"{bound:.0%} bound (gates {payload['num_gate_reads']}x"
        f"{payload['gate_ns']:.1f} ns + sampled span work vs request "
        f"{payload['request_ns']:,.0f} ns)"
        for key in ("disabled_share", "sampled_1pct_share")
        if headline[key] > bound
    ]
    assert not failures, "\n".join(failures)


def check_net_against_baseline(payload, baseline, tolerance):
    """Fail on modeled-share regressions beyond ``tolerance``.

    Shares are ratios of same-machine measurements, so they travel
    better than raw req/s; the absolute <= 5% bound is enforced
    separately by :func:`check_net_headline`.
    """
    failures = []
    for key, share in baseline.get("headline", {}).items():
        current = payload["headline"].get(key)
        if current is None:
            failures.append(f"{key}: missing from current run")
            continue
        ceiling = share * (1.0 + tolerance)
        if current > ceiling:
            failures.append(
                f"{key}: modeled share {current:.3%} rose above {ceiling:.3%} "
                f"(baseline {share:.3%} + {tolerance:.0%} tolerance)"
            )
    return failures


@pytest.mark.perf
def test_obs_overhead_headline():
    payload = run_suite(num_keys=4_000)
    print(format_report(payload))
    check_headline(payload)


@pytest.mark.perf
def test_net_tracing_overhead_headline():
    payload = run_net_suite(num_keys=1_000, duration=0.3, concurrency=4)
    print(format_net_report(payload))
    check_net_headline(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Observability overhead suite (PR 3 families, PR 8 net leg)."
    )
    parser.add_argument("--keys", type=int, default=DEFAULT_KEYS)
    parser.add_argument(
        "--net",
        action="store_true",
        help="run the PR 8 distributed-tracing net leg (writes BENCH_PR8.json)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=1.0,
        help="seconds per net sampling leg (--net only; default 1.0)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="closed-loop net clients (--net only; default 8)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=f"result JSON path (default {RESULT_FILE}, or {NET_RESULT_FILE} with --net)",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing the result JSON"
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="baseline JSON to compare gate/modeled shares against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative share regression vs the baseline (default 0.25)",
    )
    args = parser.parse_args(argv)
    out = args.out if args.out is not None else (
        NET_RESULT_FILE if args.net else RESULT_FILE
    )
    if args.net:
        payload = run_net_suite(
            num_keys=args.keys, duration=args.duration, concurrency=args.concurrency
        )
        print(format_net_report(payload))
        headline_check = check_net_headline
        baseline_check = check_net_against_baseline
    else:
        payload = run_suite(num_keys=args.keys)
        print(format_report(payload))
        headline_check = check_headline
        baseline_check = check_against_baseline
    try:
        headline_check(payload)
    except AssertionError as exc:
        for line in str(exc).splitlines():
            print(f"HEADLINE FAILURE: {line}")
        return 1
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = baseline_check(payload, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print(f"no share regressions vs {args.check} (tolerance {args.tolerance:.0%})")
    if not args.no_write:
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
