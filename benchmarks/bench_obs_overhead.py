"""Observability overhead suite (PR 3).

Proves the telemetry layer's zero-cost-when-disabled claim on the PR 2
perf-suite hot paths (single-key lookups on every index family) and
writes the machine-readable ``BENCH_PR3.json`` at the repo root.

With no :class:`~repro.obs.runtime.Telemetry` installed, each
instrumented lookup pays exactly one module-global read plus an
``is None`` branch (the ``active_tracer()`` gate).  Wall-clock A/B runs
of the same code path are dominated by machine noise at the <5% level,
so the headline bound is established deterministically instead: the
gate cost is timed directly in a tight loop (loop overhead subtracted)
and divided by each family's measured per-lookup time.  That
*gate share* must stay at or below 5% for every family.

The suite also reports measured throughput with telemetry off, with a
metrics registry installed, and with full tracing (sampled op spans
into an in-memory sink) — the honest price of turning telemetry *on*.

Run directly::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --check BENCH_PR3.json --tolerance 0.25

Two gates are enforced, and they are different claims:

* the **absolute** headline bound — gate share <= 5% on every family —
  always runs (:func:`check_headline`); it is the documented contract.
* the **relative** regression gate — gate share within ``--tolerance``
  (default 25%) of the committed baseline — runs only with ``--check``
  and catches creep long before the absolute bound is at risk.

Gate share depends on tree depth (shallower trees -> faster lookups ->
larger share), so baseline comparisons require the same ``--keys`` as
the committed baseline; :func:`check_against_baseline` enforces it.

or through pytest (reduced scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -q
"""

import argparse
import json
import random
import time
from pathlib import Path

import pytest

from repro.art.tree import ART, terminated
from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.dualstage.index import DualStageIndex, StaticEncoding
from repro.fst.trie import FST
from repro.hybridtrie.tree import HybridTrie
from repro.obs import MetricsRegistry, Telemetry, active, active_tracer

DEFAULT_KEYS = 4_000
OVERHEAD_BOUND = 0.05          # disabled-telemetry gate share per lookup
TRACE_SAMPLE_EVERY = 64        # op-span sampling in the traced mode
REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_PR3.json"


def _best_of(runs, func):
    """Fastest wall-clock of ``runs`` executions (noise floor, not mean)."""
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def measure_gate_ns(iterations=200_000, runs=5):
    """Cost of one disabled-telemetry probe: ``active_tracer()`` + branch.

    Timed in a tight loop with the bare-loop overhead subtracted, so the
    result is the marginal per-lookup price every instrumented hot path
    pays when no telemetry is installed.
    """
    indices = range(iterations)

    def probed():
        for _ in indices:
            if active_tracer() is not None:  # pragma: no cover - off here
                raise AssertionError("telemetry unexpectedly installed")

    def bare():
        for _ in indices:
            pass

    probed_time = _best_of(runs, probed)
    bare_time = _best_of(runs, bare)
    return max(0.0, (probed_time - bare_time) / iterations * 1e9)


def _int_data(num_keys, seed=0x5EED):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(num_keys * 4), num_keys))
    pairs = [(key, key * 3 + 1) for key in keys]
    probes = [
        rng.choice(keys) if rng.random() < 0.8 else rng.randrange(num_keys * 4)
        for _ in range(num_keys)
    ]
    return pairs, probes


def _byte_data(num_keys, seed=0xBEEF):
    rng = random.Random(seed)
    words = set()
    while len(words) < num_keys:
        words.add(bytes(rng.randrange(97, 123) for _ in range(rng.randrange(4, 14))))
    keys = sorted(terminated(word) for word in words)
    pairs = [(key, index) for index, key in enumerate(keys)]
    probes = [
        rng.choice(keys)
        if rng.random() < 0.8
        else terminated(bytes(rng.randrange(97, 123) for _ in range(6)))
        for _ in range(num_keys)
    ]
    return pairs, probes


def _build_lookup_loops(num_keys):
    """One ``() -> None`` lookup loop per family, plus its probe count."""
    pairs, probes = _int_data(num_keys)
    byte_pairs, byte_probes = _byte_data(max(1000, num_keys // 4))

    tree = BPlusTree.bulk_load(pairs, LeafEncoding.SUCCINCT)
    adaptive = AdaptiveBPlusTree.bulk_load_adaptive(pairs)
    dual = DualStageIndex.bulk_load(pairs, StaticEncoding.SUCCINCT)
    art = ART.from_sorted(byte_pairs)
    fst = FST(byte_pairs)
    trie = HybridTrie(byte_pairs)

    return {
        "bptree_succinct": (
            lambda: [tree.lookup(key) for key in probes], len(probes)),
        "bptree_adaptive": (
            lambda: [adaptive.lookup(key) for key in probes], len(probes)),
        "dualstage": (
            lambda: [dual.lookup(key) for key in probes], len(probes)),
        "art": (
            lambda: [art.lookup(key) for key in byte_probes], len(byte_probes)),
        "fst": (
            lambda: [fst.lookup(key) for key in byte_probes], len(byte_probes)),
        "hybridtrie": (
            lambda: [trie.lookup(key) for key in byte_probes], len(byte_probes)),
    }


def run_suite(num_keys=DEFAULT_KEYS, runs=3):
    """Run every family in every mode; returns the BENCH_PR3.json payload."""
    assert active() is None, "telemetry must not be installed for the baseline"
    loops = _build_lookup_loops(num_keys)
    gate_ns = measure_gate_ns()
    families = {}

    for family, (loop, total_ops) in loops.items():
        off_time = _best_of(runs, loop)

        with Telemetry(registry=MetricsRegistry(), tracer=None):
            metrics_time = _best_of(runs, loop)

        with Telemetry.with_memory_trace(op_sample_every=TRACE_SAMPLE_EVERY):
            traced_time = _best_of(runs, loop)

        off_ns_per_op = off_time / total_ops * 1e9
        families[family] = {
            "off_ops_per_sec": round(total_ops / off_time, 1),
            "metrics_ops_per_sec": round(total_ops / metrics_time, 1),
            "traced_ops_per_sec": round(total_ops / traced_time, 1),
            "off_ns_per_op": round(off_ns_per_op, 1),
            "gate_share": round(gate_ns / off_ns_per_op, 4),
            "metrics_overhead": round(metrics_time / off_time - 1.0, 4),
            "traced_overhead": round(traced_time / off_time - 1.0, 4),
        }

    return {
        "suite": "PR3 observability overhead suite",
        "keys": num_keys,
        "gate_ns": round(gate_ns, 2),
        "overhead_bound": OVERHEAD_BOUND,
        "trace_sample_every": TRACE_SAMPLE_EVERY,
        "families": families,
    }


def format_report(payload):
    lines = [
        f"obs overhead suite @ {payload['keys']} keys  "
        f"(disabled-telemetry gate: {payload['gate_ns']:.1f} ns/lookup)"
    ]
    for family, stats in payload["families"].items():
        lines.append(
            f"{family:18s} off {stats['off_ops_per_sec']:>12,.0f} ops/s  "
            f"gate {stats['gate_share']:>6.2%}  "
            f"metrics {stats['metrics_overhead']:>+7.1%}  "
            f"traced {stats['traced_overhead']:>+7.1%}"
        )
    return "\n".join(lines)


def check_headline(payload):
    """The acceptance claim: gate share <= 5% on every family.

    Failures name each offending family with the numbers behind the
    share, so a CI log line is enough to see what regressed.
    """
    bound = payload.get("overhead_bound", OVERHEAD_BOUND)
    failures = [
        f"family '{family}': disabled-telemetry gate share "
        f"{stats['gate_share']:.2%} exceeds the {bound:.0%} absolute bound "
        f"(gate {payload['gate_ns']:.1f} ns / lookup "
        f"{stats['off_ns_per_op']:.1f} ns)"
        for family, stats in payload["families"].items()
        if stats["gate_share"] > bound
    ]
    assert not failures, "\n".join(failures)


def check_against_baseline(payload, baseline, tolerance):
    """Fail on gate-share regressions beyond ``tolerance``.

    Gate share (gate ns / per-lookup ns) is a ratio of two measurements
    on the same machine, so it is far more portable than raw ops/sec.
    Families present in the baseline but missing now count as
    regressions; the absolute <= 5% bound is enforced separately by
    :func:`check_headline`.
    """
    failures = []
    if baseline.get("keys") != payload["keys"]:
        return [
            f"baseline measured at {baseline.get('keys')} keys but this run "
            f"used {payload['keys']}; gate share is depth-dependent — rerun "
            f"with matching --keys"
        ]
    for family, stats in baseline.get("families", {}).items():
        current = payload["families"].get(family)
        if current is None:
            failures.append(f"{family}: missing from current run")
            continue
        ceiling = stats["gate_share"] * (1.0 + tolerance)
        if current["gate_share"] > ceiling:
            failures.append(
                f"{family}: gate share {current['gate_share']:.2%} rose above "
                f"{ceiling:.2%} (baseline {stats['gate_share']:.2%} "
                f"+ {tolerance:.0%} tolerance)"
            )
    return failures


@pytest.mark.perf
def test_obs_overhead_headline():
    payload = run_suite(num_keys=4_000)
    print(format_report(payload))
    check_headline(payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Observability overhead suite (PR 3).")
    parser.add_argument("--keys", type=int, default=DEFAULT_KEYS)
    parser.add_argument(
        "--out",
        type=Path,
        default=RESULT_FILE,
        help=f"result JSON path (default {RESULT_FILE})",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing the result JSON"
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="baseline JSON to compare gate shares against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative gate-share regression vs the baseline (default 0.25)",
    )
    args = parser.parse_args(argv)
    payload = run_suite(num_keys=args.keys)
    print(format_report(payload))
    try:
        check_headline(payload)
    except AssertionError as exc:
        for line in str(exc).splitlines():
            print(f"HEADLINE FAILURE: {line}")
        return 1
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = check_against_baseline(payload, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print(f"no gate-share regressions vs {args.check} (tolerance {args.tolerance:.0%})")
    if not args.no_write:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
