"""Raw operation throughput of every index (honest wall-clock).

Unlike the figure benchmarks (which report modeled latencies through the
calibrated cost model), these measure real Python wall time per operation
via pytest-benchmark's statistics — the numbers a user of this library
would actually see.
"""

import random

import pytest

from repro.art.tree import ART
from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.dualstage.index import DualStageIndex
from repro.fst.trie import FST
from repro.hybridtrie.tree import HybridTrie

NUM_KEYS = 20_000


@pytest.fixture(scope="module")
def int_pairs():
    rng = random.Random(0)
    keys = sorted(rng.sample(range(2**48), NUM_KEYS))
    return [(key, key ^ 0xDEAD) for key in keys]


@pytest.fixture(scope="module")
def byte_pairs(int_pairs):
    return [(key.to_bytes(8, "big"), value) for key, value in int_pairs]


@pytest.fixture(scope="module")
def lookup_keys(int_pairs):
    rng = random.Random(1)
    return [int_pairs[rng.randrange(NUM_KEYS)][0] for _ in range(512)]


def _lookup_loop(index, keys):
    def run():
        for key in keys:
            index.lookup(key)

    return run


@pytest.mark.parametrize("encoding", list(LeafEncoding), ids=lambda e: e.value)
def test_btree_lookup(benchmark, int_pairs, lookup_keys, encoding):
    tree = BPlusTree.bulk_load(int_pairs, encoding)
    benchmark(_lookup_loop(tree, lookup_keys))


def test_adaptive_btree_lookup(benchmark, int_pairs, lookup_keys):
    tree = AdaptiveBPlusTree.bulk_load_adaptive(int_pairs)
    benchmark(_lookup_loop(tree, lookup_keys))


def test_btree_insert(benchmark, int_pairs):
    tree = BPlusTree.bulk_load(int_pairs, LeafEncoding.GAPPED)
    counter = iter(range(10**9))

    def run():
        base = 2**50 + next(counter) * 4096
        for offset in range(64):
            tree.insert(base + offset, offset)

    benchmark(run)


def test_btree_scan(benchmark, int_pairs, lookup_keys):
    tree = BPlusTree.bulk_load(int_pairs, LeafEncoding.GAPPED)

    def run():
        for key in lookup_keys[:64]:
            tree.scan(key, 25)

    benchmark(run)


def test_dualstage_lookup(benchmark, int_pairs, lookup_keys):
    index = DualStageIndex.bulk_load(int_pairs)
    benchmark(_lookup_loop(index, lookup_keys))


def test_art_lookup(benchmark, byte_pairs, lookup_keys):
    art = ART.from_sorted(byte_pairs)
    byte_keys = [key.to_bytes(8, "big") for key in lookup_keys]
    benchmark(_lookup_loop(art, byte_keys))


def test_fst_lookup(benchmark, byte_pairs, lookup_keys):
    fst = FST(byte_pairs)
    byte_keys = [key.to_bytes(8, "big") for key in lookup_keys]
    benchmark(_lookup_loop(fst, byte_keys))


def test_hybrid_trie_lookup(benchmark, byte_pairs, lookup_keys):
    trie = HybridTrie(byte_pairs, art_levels=2)
    byte_keys = [key.to_bytes(8, "big") for key in lookup_keys]
    benchmark(_lookup_loop(trie, byte_keys))
