"""Perf suite for the batched operation layer (PR 2).

Measures single-call vs batched throughput (ops/sec) for every index
family and writes the machine-readable ``BENCH_PR2.json`` at the repo
root.  The headline claim: sorted-batch lookups are at least 2x faster
than per-key loops on at least two families, because the batch API
amortizes tree descent (shared-prefix resumption), sampling-gate
drains, and counter updates.

Regression checking compares *speedup ratios* (batched / single), not
absolute ops/sec — ratios are stable across machines while raw
throughput is not.

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf_suite.py --keys 20000
    PYTHONPATH=src python benchmarks/bench_perf_suite.py \
        --keys 4000 --check BENCH_PR2.json --tolerance 0.30

or through pytest (reduced scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_suite.py -q
"""

import argparse
import json
import random
import time
from pathlib import Path

import pytest

from repro.art.tree import ART, terminated
from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.dualstage.index import DualStageIndex, StaticEncoding
from repro.fst.trie import FST
from repro.hybridtrie.tree import HybridTrie

DEFAULT_KEYS = 20_000
SPEEDUP_FAMILIES_REQUIRED = 2
SPEEDUP_REQUIRED = 2.0
REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_PR2.json"


def _best_of(runs, func):
    """Fastest wall-clock of ``runs`` executions (noise floor, not mean)."""
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(single, batched, total_ops, runs=3):
    single_time = _best_of(runs, single)
    batched_time = _best_of(runs, batched)
    return {
        "single_ops_per_sec": round(total_ops / single_time, 1),
        "batched_ops_per_sec": round(total_ops / batched_time, 1),
        "speedup": round(single_time / batched_time, 3),
    }


def _int_data(num_keys, seed=0x5EED):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(num_keys * 4), num_keys))
    pairs = [(key, key * 3 + 1) for key in keys]
    probes = sorted(
        rng.choice(keys) if rng.random() < 0.8 else rng.randrange(num_keys * 4)
        for _ in range(num_keys)
    )
    return pairs, probes


def _byte_data(num_keys, seed=0xBEEF):
    rng = random.Random(seed)
    words = set()
    while len(words) < num_keys:
        words.add(bytes(rng.randrange(97, 123) for _ in range(rng.randrange(4, 14))))
    keys = sorted(terminated(word) for word in words)
    pairs = [(key, index) for index, key in enumerate(keys)]
    probes = sorted(
        rng.choice(keys)
        if rng.random() < 0.8
        else terminated(bytes(rng.randrange(97, 123) for _ in range(6)))
        for _ in range(num_keys)
    )
    return pairs, probes


def run_suite(num_keys=DEFAULT_KEYS):
    """Run every family; returns the BENCH_PR2.json payload."""
    families = {}

    pairs, probes = _int_data(num_keys)

    tree = BPlusTree.bulk_load(pairs, LeafEncoding.SUCCINCT)
    families["bptree_succinct"] = _measure(
        lambda: [tree.lookup(key) for key in probes],
        lambda: tree.lookup_many(probes),
        len(probes),
    )

    adaptive = AdaptiveBPlusTree.bulk_load_adaptive(pairs)
    families["bptree_adaptive"] = _measure(
        lambda: [adaptive.lookup(key) for key in probes],
        lambda: adaptive.lookup_many(probes),
        len(probes),
    )

    dual = DualStageIndex.bulk_load(pairs, StaticEncoding.SUCCINCT)
    families["dualstage"] = _measure(
        lambda: [dual.lookup(key) for key in probes],
        lambda: dual.lookup_many(probes),
        len(probes),
    )

    byte_pairs, byte_probes = _byte_data(max(1000, num_keys // 4))

    art = ART.from_sorted(byte_pairs)
    families["art"] = _measure(
        lambda: [art.lookup(key) for key in byte_probes],
        lambda: art.lookup_many(byte_probes),
        len(byte_probes),
    )

    fst = FST(byte_pairs)
    families["fst"] = _measure(
        lambda: [fst.lookup(key) for key in byte_probes],
        lambda: fst.lookup_many(byte_probes),
        len(byte_probes),
    )

    trie = HybridTrie(byte_pairs)
    families["hybridtrie"] = _measure(
        lambda: [trie.lookup(key) for key in byte_probes],
        lambda: trie.lookup_many(byte_probes),
        len(byte_probes),
    )

    inserts = {}
    fresh_pairs = [(key * 2 + 1, key) for key in range(num_keys // 2)]

    def single_insert_tree():
        target = BPlusTree(LeafEncoding.GAPPED)
        for key, value in fresh_pairs:
            target.insert(key, value)

    def batched_insert_tree():
        target = BPlusTree(LeafEncoding.GAPPED)
        target.insert_many(fresh_pairs)

    inserts["bptree_gapped"] = _measure(
        single_insert_tree, batched_insert_tree, len(fresh_pairs)
    )

    def single_insert_dual():
        target = DualStageIndex(StaticEncoding.SUCCINCT)
        for key, value in fresh_pairs:
            target.insert(key, value)

    def batched_insert_dual():
        target = DualStageIndex(StaticEncoding.SUCCINCT)
        target.insert_many(fresh_pairs)

    inserts["dualstage"] = _measure(
        single_insert_dual, batched_insert_dual, len(fresh_pairs)
    )

    return {
        "suite": "PR2 batched-operation perf suite",
        "keys": num_keys,
        "lookups": families,
        "inserts": inserts,
    }


def format_report(payload):
    lines = [f"perf suite @ {payload['keys']} keys"]
    for section in ("lookups", "inserts"):
        lines.append(f"-- {section} (sorted batches) --")
        for family, stats in payload[section].items():
            lines.append(
                f"{family:18s} single {stats['single_ops_per_sec']:>12,.0f} ops/s  "
                f"batched {stats['batched_ops_per_sec']:>12,.0f} ops/s  "
                f"speedup {stats['speedup']:.2f}x"
            )
    return "\n".join(lines)


def check_headline(payload):
    """The acceptance claim: >= 2x batched lookups on >= 2 families."""
    fast = [
        family
        for family, stats in payload["lookups"].items()
        if stats["speedup"] >= SPEEDUP_REQUIRED
    ]
    assert len(fast) >= SPEEDUP_FAMILIES_REQUIRED, (
        f"only {fast} reached a {SPEEDUP_REQUIRED}x batched-lookup speedup; "
        f"need {SPEEDUP_FAMILIES_REQUIRED} families"
    )
    return fast


def check_against_baseline(payload, baseline, tolerance):
    """Fail on speedup-ratio regressions beyond ``tolerance``.

    Only ratios are compared (machine-independent); families present in
    the baseline but missing from the current run count as regressions.
    """
    failures = []
    for section in ("lookups", "inserts"):
        for family, stats in baseline.get(section, {}).items():
            current = payload.get(section, {}).get(family)
            if current is None:
                failures.append(f"{section}/{family}: missing from current run")
                continue
            floor = stats["speedup"] * (1.0 - tolerance)
            if current["speedup"] < floor:
                failures.append(
                    f"{section}/{family}: speedup {current['speedup']:.2f}x fell "
                    f"below {floor:.2f}x (baseline {stats['speedup']:.2f}x "
                    f"- {tolerance:.0%} tolerance)"
                )
    return failures


@pytest.mark.perf
def test_perf_suite_headline():
    payload = run_suite(num_keys=4_000)
    print(format_report(payload))
    fast = check_headline(payload)
    assert fast  # at least the headline families exist


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Batched-ops perf suite (PR 2).")
    parser.add_argument("--keys", type=int, default=DEFAULT_KEYS)
    parser.add_argument(
        "--out",
        type=Path,
        default=RESULT_FILE,
        help=f"result JSON path (default {RESULT_FILE})",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="skip writing the result JSON"
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="baseline JSON to compare speedup ratios against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed relative speedup regression vs the baseline (default 0.30)",
    )
    args = parser.parse_args(argv)
    payload = run_suite(num_keys=args.keys)
    print(format_report(payload))
    check_headline(payload)
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = check_against_baseline(payload, baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print(f"no speedup regressions vs {args.check} (tolerance {args.tolerance:.0%})")
    if not args.no_write:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
