"""Figure 18: concurrent sampling — global (GS) vs thread-local (TLS)."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_fig18
from repro.harness.report import format_table


def test_fig18_gs_vs_tls(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_fig18(
            num_keys=20_000, ops_per_thread=4_000, thread_counts=(1, 2, 4, 8)
        ),
    )
    print(banner("Figure 18 — GS vs TLS concurrent workload adaptation"))
    print(format_table(result["headers"], result["rows"]))
    print("note: wall Mops is GIL-bound; modeled Mops prices the real lock events")

    by_key = {(row[0], row[1], row[2]): row for row in result["rows"]}
    for workload in ("W5.1 writes", "W5.2 reads"):
        for threads in (2, 4, 8):
            gs = by_key[(workload, threads, "GS")]
            tls = by_key[(workload, threads, "TLS")]
            # TLS avoids the per-record lock: modeled throughput >= GS.
            assert tls[4] >= gs[4] * 0.95
        # Modeled TLS throughput scales with threads; GS saturates earlier.
        tls_scaling = by_key[(workload, 8, "TLS")][4] / by_key[(workload, 1, "TLS")][4]
        assert tls_scaling > 3.0
    # Adaptations actually ran in both arms.
    assert any(row[6] > 0 for row in result["rows"])
