"""Ablation: adaptive skip length vs fixed skip lengths.

The adaptation manager shrinks the skip when migrations are frequent
(fast reaction to shifts) and grows it when the workload is stable (low
overhead).  This ablation pits the adaptive controller against fixed
skips at both extremes across a workload shift.
"""

import numpy as np
from conftest import banner, run_once

from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.harness.experiments import scaled_manager_config
from repro.harness.report import format_table
from repro.harness.runner import IntKeyIndexAdapter, run_operations
from repro.sim.costmodel import CostModel
from repro.workloads.datasets import osm_like_keys
from repro.workloads.spec import w11
from repro.workloads.stream import generate_phase

NUM_KEYS = 20_000
OPS = 40_000


def build_config(adaptive, skip):
    config = scaled_manager_config(skip_min=skip if not adaptive else 2,
                                   skip_max=skip if not adaptive else 50)
    config.adaptive_skip = adaptive
    if not adaptive:
        config.initial_skip_length = skip
    return config


def run_arm(name, config, keys, phases, cost_model):
    pairs = [(int(key), index) for index, key in enumerate(keys)]
    tree = AdaptiveBPlusTree.bulk_load_adaptive(
        pairs, leaf_capacity=32, manager_config=config
    )
    adapter = IntKeyIndexAdapter(tree)
    from repro.harness.runner import RunResult

    result = RunResult()
    for operations in phases:
        run_operations(adapter, operations, cost_model, 10_000, result)
    return (
        name,
        round(result.modeled_ns_per_op, 1),
        tree.manager.counters.sampled,
        tree.manager.counters.expansions + tree.manager.counters.compactions,
        tree.manager.skip_length,
    )


def test_ablation_adaptive_skip(benchmark):
    rng = np.random.default_rng(0)
    keys = osm_like_keys(NUM_KEYS, rng)
    cost_model = CostModel()
    # Two phases with different skew centers force re-adaptation.
    phases = [
        generate_phase(keys, w11(alpha=1.2, num_ops=OPS).phases[0], rng=1),
        generate_phase(keys[::-1].copy(), w11(alpha=1.2, num_ops=OPS).phases[0], rng=2),
    ]

    def run_all():
        return [
            run_arm("adaptive [2,50]", build_config(True, 0), keys, phases, cost_model),
            run_arm("fixed skip=2", build_config(False, 2), keys, phases, cost_model),
            run_arm("fixed skip=50", build_config(False, 50), keys, phases, cost_model),
        ]

    rows = run_once(benchmark, run_all)
    print(banner("Ablation — adaptive vs fixed skip length"))
    print(format_table(
        ["arm", "modeled_ns_per_op", "samples_taken", "migrations", "final_skip"],
        rows,
    ))

    adaptive_row, fast_row, slow_row = rows
    # The fixed-fast arm samples far more than the adaptive arm.
    assert fast_row[2] > 1.5 * adaptive_row[2]
    # The adaptive arm's latency is competitive with the best fixed arm.
    best_fixed = min(fast_row[1], slow_row[1])
    assert adaptive_row[1] <= best_fixed * 1.15
    # And its skip actually moved away from the minimum.
    assert adaptive_row[4] > 2
