"""Figure 2: error-bounded top-k sample sizes and precision vs epsilon."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_fig2
from repro.harness.report import format_table


def test_fig02_sample_size(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_fig2(
            num_items=500_000,
            workload_size=300_000,
            ks=(250, 1000),
            epsilons=(0.02, 0.04, 0.05, 0.06, 0.08, 0.10),
        ),
    )
    print(banner("Figure 2 — sample sizes for error-bounded top-k (Equation 1)"))
    print(format_table(result["headers"], result["rows"]))

    rows = result["rows"]
    by_key = {(row[0], row[1]): row for row in rows}
    # Sample size grows as epsilon shrinks (quadratically).
    assert by_key[("2%", 1000)][2] > 15 * by_key[("10%", 1000)][2]
    # Sampled top-k mass approaches the true mass as epsilon shrinks.
    for k in (250, 1000):
        tight_gap = by_key[("2%", k)][3] - by_key[("2%", k)][4]
        loose_gap = by_key[("10%", k)][3] - by_key[("10%", k)][4]
        assert tight_gap <= loose_gap
        # The paper's operating point (5%) loses only a small mass share.
        mid = by_key[("5%", k)]
        assert mid[4] > 0.75 * mid[3]
