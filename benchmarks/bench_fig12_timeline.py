"""Figure 12: the headline timeline — W1.1 -> W1.2 -> W1.3 on OSM keys."""

import json

import numpy as np
from conftest import banner, run_once

from repro.harness.experiments import experiment_fig12
from repro.harness.report import format_series, human_bytes


def test_fig12_workload_timeline(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_fig12(
            num_keys=60_000, ops_per_phase=60_000, interval_ops=6_000,
            training_ops=15_000,
        ),
    )
    boundary = result["intervals_per_phase"]
    print(banner("Figure 12 — latency over time, three workload phases"))
    print(f"(phase boundaries at intervals {boundary} and {2 * boundary})")
    for name, series in result["series"].items():
        print("  " + format_series(name.ljust(10), series, unit="ns"))
    print("\nfinal sizes:")
    for name, (index_bytes, aux_bytes) in result["sizes"].items():
        print(f"  {name:<11} {human_bytes(index_bytes):>10} (+{human_bytes(aux_bytes)})")
    events = result["adaptation_events"]
    print(f"\nadaptation events ({len(events)} phases):")
    for event in events:
        print(
            f"  epoch {event['epoch']:>3}: +{event['expansions']} expand "
            f"-{event['compactions']} compact, skip {event['skip_length_before']}"
            f"->{event['skip_length_after']}, {human_bytes(event['index_bytes'])}"
        )

    series = result["series"]
    sizes = result["sizes"]
    gapped_mean = np.mean(series["gapped"])
    succinct_mean = np.mean(series["succinct"])
    ahi = series["ahi"]

    # Within each phase the adaptive tree's latency falls over time.
    for phase in range(3):
        phase_slice = ahi[phase * boundary : (phase + 1) * boundary]
        assert min(phase_slice[2:]) < phase_slice[0]
    # Overall: adaptive sits between gapped and succinct, far below succinct.
    assert gapped_mean < np.mean(ahi) < succinct_mean
    assert np.mean(ahi[boundary - 3 : boundary]) < 0.7 * succinct_mean
    # Space: adaptive far below gapped (paper: -72%), sampling overhead tiny.
    assert sizes["ahi"][0] < 0.7 * sizes["gapped"][0]
    assert sizes["ahi"][1] < 0.05 * sizes["ahi"][0]  # paper: 0.1%
    # The event log is the canonical timeline: phases ran, epochs ascend,
    # and every event dict is JSON-safe as produced (the single
    # serialization path shared with --trace and EventLog.to_jsonl).
    assert events and json.loads(json.dumps(events)) == events
    epochs = [event["epoch"] for event in events]
    assert epochs == sorted(epochs)
    assert sum(event["expansions"] for event in events) > 0
