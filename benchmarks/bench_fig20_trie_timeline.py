"""Figure 20: Hybrid Trie adaptation timeline on prefix-random W3."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_fig20
from repro.harness.report import format_series


def test_fig20_trie_timeline(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_fig20(
            num_keys=40_000, ops_per_phase=40_000, interval_ops=4_000
        ),
    )
    boundary = result["intervals_per_phase"]
    print(banner("Figure 20 — prefix-random W3 timeline (two hot-range phases)"))
    for name, series in result["series"].items():
        print("  " + format_series(name.ljust(10), series, unit="ns"))
    print("  expansions (cum):", result["expansions"])
    print("  compactions (cum):", result["compactions"])
    print("  skip lengths:", result["skip_lengths"])
    events = result["adaptation_events"]
    print(f"  adaptation events: {len(events)} phases")

    series = result["series"]
    expansions = result["expansions"]

    # Phase 1: expansions only (everything below c_art starts in FST).
    assert expansions[boundary - 1] > 0
    assert result["compactions"][boundary - 1] == 0
    # Phase 2 expands the *new* hot ranges too.
    assert expansions[-1] > expansions[boundary - 1]
    # The adaptive trie ends each phase faster than it started it, and
    # faster than plain FST.
    ahi = series["ahi-trie"]
    fst = series["fst"]
    assert ahi[boundary - 1] < ahi[0]
    assert ahi[-1] < fst[-1]
    # The pre-trained trie (trained on phase 1) goes stale in phase 2.
    pretrained = series["pretrained"]
    assert pretrained[boundary + 1] > pretrained[boundary - 1]
    # The skip length adapts over the run.
    skips = [skip for skip in result["skip_lengths"] if skip is not None]
    assert len(set(skips)) > 1
    # The event log carries the same timeline: the manager-side migration
    # totals match the adapter's cumulative counters exactly (the trie
    # has no eager insert-time expansions — it is read-only here).
    assert sum(event["expansions"] for event in events) == expansions[-1]
    assert len({event["skip_length_after"] for event in events}) > 1
