"""Ablation: the Bloom filter in front of the sample map.

Figure 5 isolates the filter's effect on pure tracking overhead; this
ablation measures it inside the full adaptation loop instead: with a
cold-heavy workload, the filter keeps one-off units out of the sample
map, shrinking both the map and the classification pass.
"""

import numpy as np
from conftest import banner, run_once

from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.harness.experiments import scaled_manager_config
from repro.harness.report import format_table
from repro.harness.runner import IntKeyIndexAdapter, RunResult, run_operations
from repro.sim.costmodel import CostModel
from repro.workloads.datasets import osm_like_keys
from repro.workloads.distributions import zipf_indices, uniform_indices
from repro.workloads.spec import OpKind
from repro.workloads.stream import Operation

NUM_KEYS = 30_000
OPS = 50_000


def run_arm(name, use_bloom, keys, operations, cost_model):
    pairs = [(int(key), index) for index, key in enumerate(keys)]
    config = scaled_manager_config()
    config.use_bloom_filter = use_bloom
    tree = AdaptiveBPlusTree.bulk_load_adaptive(
        pairs, leaf_capacity=16, manager_config=config
    )
    result = RunResult()
    run_operations(IntKeyIndexAdapter(tree), operations, cost_model, 10_000, result)
    manager = tree.manager
    return (
        name,
        round(result.modeled_ns_per_op, 1),
        manager.counters.map_updates,
        manager.counters.bloom_rejections,
        manager.tracked_units,
        manager.size_bytes(),
    )


def test_ablation_bloom_filter(benchmark):
    rng = np.random.default_rng(0)
    keys = osm_like_keys(NUM_KEYS, rng)
    # Half hot zipf reads, half uniform cold reads: the cold tail creates
    # the one-off accesses the filter exists to reject.
    hot = zipf_indices(NUM_KEYS, OPS // 2, alpha=1.2, rng=rng)
    cold = uniform_indices(NUM_KEYS, OPS // 2, rng=rng)
    indices = np.concatenate((hot, cold))
    rng.shuffle(indices)
    operations = [Operation(OpKind.READ, int(keys[index])) for index in indices]
    cost_model = CostModel()

    def run_all():
        return [
            run_arm("with bloom filter", True, keys, operations, cost_model),
            run_arm("without bloom filter", False, keys, operations, cost_model),
        ]

    rows = run_once(benchmark, run_all)
    print(banner("Ablation — Bloom filter in front of the sample map"))
    print(format_table(
        ["arm", "modeled_ns_per_op", "map_updates", "bloom_rejections",
         "tracked_units", "sampler_bytes"],
        rows,
    ))

    with_filter, without_filter = rows
    # The filter rejected a meaningful share of one-off accesses ...
    assert with_filter[3] > 0
    # ... which keeps the sample map strictly smaller.
    assert with_filter[2] < without_filter[2]
    assert with_filter[4] <= without_filter[4]
