"""Table 1: leaf-encoding sizes and lookup latencies."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_table1
from repro.harness.report import format_table


def test_tab1_leaf_encodings(benchmark):
    result = run_once(
        benchmark,
        lambda: experiment_table1(num_keys=60_000, num_lookups=30_000),
    )
    print(banner("Table 1 — leaf encodings on OSM keys at 70% occupancy"))
    print(format_table(result["headers"], result["rows"]))
    print("paper: gapped 4096B/56ns, packed 2872B/57ns, succinct 1076B/125ns")

    rows = {row[0]: row for row in result["rows"]}
    # Size ordering and magnitudes.
    assert rows["gapped"][1] == 4096
    assert 2600 < rows["packed"][1] < 3000
    assert rows["succinct"][1] < 0.45 * rows["gapped"][1]  # paper: -73%
    # Modeled latency: gapped ~= packed << succinct.
    assert abs(rows["gapped"][2] - rows["packed"][2]) < 5
    assert rows["succinct"][2] > 1.8 * rows["gapped"][2]
    # Honest wall-clock numbers come along for the ride.
    assert all(row[3] > 0 for row in result["rows"])
