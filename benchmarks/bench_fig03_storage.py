"""Figure 3: (un)compressed leaf-page access latencies per storage tier."""

from conftest import banner, run_once

from repro.harness.experiments import experiment_fig3
from repro.harness.report import format_table


def test_fig03_storage_latencies(benchmark):
    result = run_once(benchmark, experiment_fig3)
    print(banner("Figure 3 — leaf-page access latency by device"))
    print(format_table(result["headers"], result["rows"]))
    print(
        f"page: {result['page_bytes']}B, LZ-compressed: {result['compressed_bytes']}B "
        f"(saves {result['compression_ratio']:.0%}; paper: up to 47%)"
    )

    reads = {row[0]: row[1] for row in result["rows"]}
    writes = {row[0]: row[2] for row in result["rows"]}
    # The figure's ordering: SSD >> NVMe >> PMEM > DRAM-compressed >> DRAM.
    assert reads["Samsung 870 SSD"] > 4 * reads["Samsung 970 NVMe"]
    assert reads["Samsung 970 NVMe"] > 4 * reads["PMEM"]
    assert reads["PMEM"] > reads["DRAM compressed"] > reads["DRAM uncompressed"]
    assert writes["DRAM compressed"] > writes["DRAM uncompressed"]
    # On-the-fly decompression beats every I/O tier by orders of magnitude.
    assert reads["DRAM compressed"] < reads["Samsung 970 NVMe"] / 5
    # Real compressor really saved space on the 70%-occupancy page.
    assert 0.25 < result["compression_ratio"] < 0.75
