"""Wall-clock comparison of the sample-store hash maps.

The paper's C++ implementation uses a hopscotch map (single-threaded)
and a concurrent cuckoo map; in CPython the built-in dict is the
pragmatic default.  This benchmark quantifies that choice honestly and
verifies that all three behave identically.
"""

import random

import pytest

from repro.hashmap.cuckoo import CuckooMap
from repro.hashmap.hopscotch import HopscotchMap

NUM_KEYS = 5_000
rng = random.Random(0)
KEYS = [rng.randrange(2**40) for _ in range(NUM_KEYS)]
PROBES = [rng.choice(KEYS) for _ in range(1_000)] + [
    rng.randrange(2**40) for _ in range(1_000)
]

FACTORIES = {
    "dict": dict,
    "hopscotch": lambda: HopscotchMap(initial_capacity=1024),
    "cuckoo": lambda: CuckooMap(initial_buckets=256),
}


def build(factory):
    table = factory()
    for key in KEYS:
        table[key] = key
    return table


@pytest.mark.parametrize("name", list(FACTORIES), ids=list(FACTORIES))
def test_hashmap_insert(benchmark, name):
    benchmark(lambda: build(FACTORIES[name]))


@pytest.mark.parametrize("name", list(FACTORIES), ids=list(FACTORIES))
def test_hashmap_probe(benchmark, name):
    table = build(FACTORIES[name])

    def probe():
        hits = 0
        for key in PROBES:
            if table.get(key) is not None:
                hits += 1
        return hits

    hits = benchmark(probe)
    assert hits >= 1_000  # every known key must be found


def test_all_maps_agree():
    tables = {name: build(factory) for name, factory in FACTORIES.items()}
    for key in PROBES:
        expected = tables["dict"].get(key)
        assert tables["hopscotch"].get(key) == expected
        assert tables["cuckoo"].get(key) == expected
